//! Distributed custody of an archive master key: a trustee board with
//! verifiable proactive refresh and board turnover (the HasDPSS pattern
//! the paper's §4 recommends studying).
//!
//! ```sh
//! cargo run --example trustee_board
//! ```

use aeon::core::trustees::TrusteeKeyring;
use aeon::crypto::ChaChaDrbg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaChaDrbg::from_u64_seed(2026);

    // 2026: three founding trustees, any two can act.
    let mut keyring = TrusteeKeyring::establish(&mut rng, b"founding ceremony entropy", 2, 3)?;
    println!(
        "established: {} trustees, threshold {}, ledger entries {}",
        keyring.trustees(),
        keyring.threshold(),
        keyring.ledger().len()
    );
    let original = keyring.with_master_key(|k| *k)?;
    println!("master key digest derived under quorum (never stored whole)");

    // Annual verifiable refresh: shares re-randomized, commitments
    // updated homomorphically, everything auditable.
    for year in 1..=5 {
        let rejected = keyring.refresh(&mut rng)?;
        assert!(rejected.is_empty());
        println!(
            "year {year}: refresh ok, audit clean = {}",
            keyring.audit().is_empty()
        );
    }
    assert_eq!(keyring.with_master_key(|k| *k)?, original);

    // 2031: board turnover — five trustees, threshold three — without
    // the key ever being reconstructed outside a quorum operation.
    keyring.reshare(&mut rng, 3, 5)?;
    println!(
        "reshared to {} trustees / threshold {} (epoch {})",
        keyring.trustees(),
        keyring.threshold(),
        keyring.epoch()
    );
    assert_eq!(keyring.with_master_key(|k| *k)?, original);
    println!("key unchanged across refreshes and resharing");

    // A trustee goes rogue and corrupts its share: the audit and the
    // quorum operation both name it.
    keyring.corrupt_trustee_for_simulation(2);
    println!(
        "audit after corruption: bad trustees = {:?}",
        keyring.audit()
    );
    match keyring.with_master_key(|k| *k) {
        Err(e) => println!("quorum operation refused: {e}"),
        Ok(_) => unreachable!("corrupt share must be detected"),
    }

    println!(
        "\nledger: {} entries, chain valid = {}",
        keyring.ledger().len(),
        keyring.ledger().verify().is_ok()
    );
    Ok(())
}

//! A harvest-now-decrypt-later timeline: watch a 2026 data theft play
//! out over fifty years of cryptanalysis.
//!
//! ```sh
//! cargo run --example hndl_timeline
//! ```

use aeon::adversary::{CryptanalyticTimeline, Harvester};
use aeon::core::keys::KeyStore;
use aeon::core::{PolicyKind, Recovery};
use aeon::crypto::{ChaChaDrbg, CryptoRng, SuiteId};

fn main() {
    // Three departments chose three policies in 2026.
    let mut rng = ChaChaDrbg::from_u64_seed(2026);
    let keys = KeyStore::new([7u8; 32]);
    let mut secret = vec![0u8; 4096];
    rng.fill_bytes(&mut secret);

    let depts: Vec<(&str, PolicyKind)> = vec![
        (
            "treasury (AES+EC)",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "intelligence (cascade x2)",
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
        ),
        (
            "state secrets (Shamir 3-of-5)",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
    ];

    // 2026: a contractor exfiltrates TWO storage sites from every
    // department (a sub-threshold haul for the Shamir design).
    let mut harvester = Harvester::new();
    let mut encodings = Vec::new();
    for (name, policy) in &depts {
        let enc = policy
            .encode(&mut rng, &keys, name, &secret)
            .expect("encode");
        let stolen_blobs = vec![enc.shards[0].clone(), enc.shards[1].clone()];
        harvester.record(*name, 2026, stolen_blobs, "two-site breach");
        encodings.push((name, policy, enc));
    }
    println!(
        "2026: breach recorded — adversary stores {} KiB and waits\n",
        harvester.stored_bytes() / 1024
    );

    // The future unfolds.
    let timeline = CryptanalyticTimeline::pessimistic_2045();
    for year in [2030u32, 2045, 2046, 2060, 2061, 2076] {
        println!("--- year {year} ---");
        for (name, policy, enc) in &encodings {
            let n = policy.shard_count();
            let mut stolen: Vec<Option<Vec<u8>>> = vec![None; n];
            stolen[0] = Some(enc.shards[0].clone());
            stolen[1] = Some(enc.shards[1].clone());
            let outcome = policy.hndl_recover(&keys, name, &stolen, &enc.meta, &timeline, year);
            let verdict = match outcome {
                Recovery::Full(_) => "PLAINTEXT RECOVERED".to_string(),
                Recovery::Partial(f) => format!("{:.0}% of plaintext exposed", f * 100.0),
                Recovery::Nothing => "still confidential".to_string(),
            };
            println!("  {name:<30} {verdict}");
        }
    }

    println!("\nthe paper's point, reproduced: for any computational design the");
    println!("2026 theft is a time bomb with a cryptanalytic fuse; only the");
    println!("sub-threshold secret-shared haul stays dark forever.");
}

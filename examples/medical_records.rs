//! A hospital archive under attack: proactive secret sharing vs the
//! mobile adversary, across decades.
//!
//! Medical records must stay confidential for the patient's lifetime —
//! the paper's canonical long-term workload. This example ingests
//! records into a secret-shared archive, lets a mobile adversary corrupt
//! one storage site per year, and shows that the archive survives
//! exactly when the refresh cadence outpaces the adversary.
//!
//! ```sh
//! cargo run --example medical_records
//! ```

use aeon::adversary::mobile::{run_attack, MobileAdversary};
use aeon::core::{Archive, ArchiveConfig, PolicyKind};
use aeon::crypto::ChaChaDrbg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = PolicyKind::Shamir {
        threshold: 3,
        shares: 5,
    };
    let mut archive = Archive::in_memory(ArchiveConfig::new(policy).with_year(2026))?;

    // Ingest a cohort of records.
    let mut ids = Vec::new();
    for i in 0..10 {
        let record = format!("patient-{i:03}: chart, imaging index, genomics consent");
        ids.push(archive.ingest(record.as_bytes(), &format!("patient-{i:03}"))?);
    }
    println!("ingested {} records in 2026", ids.len());

    // Decades pass. Each year: the adversary corrupts one site; the
    // archive refreshes annually.
    for year in 2027..=2066 {
        archive.advance_year(year);
        for id in &ids {
            archive.refresh_object(id)?;
        }
    }
    println!("2066: 40 annual refresh epochs completed");
    for id in &ids {
        assert!(archive.retrieve(id).is_ok());
    }
    println!("all records intact and retrievable after 40 years");

    // The security argument, quantified: a mobile adversary corrupting one
    // shareholder per epoch against the same (3, 5) sharing.
    println!("\nmobile adversary (1 corruption/epoch, 40 epochs):");
    for (label, refresh_every) in [
        ("no refresh", 0u64),
        ("every 5 epochs", 5),
        ("every epoch", 1),
    ] {
        let mut rng = ChaChaDrbg::from_u64_seed(2026);
        let out = run_attack(
            &mut rng,
            b"patient-000 master record",
            3,
            5,
            MobileAdversary {
                corrupt_per_epoch: 1,
                epochs: 40,
                refresh_every,
            },
        );
        println!(
            "  {label:<16} compromised={}, at-epoch={:?}",
            out.compromised, out.compromise_epoch
        );
    }
    println!("\nconclusion: the refresh period — not the cipher — is the security");
    println!("parameter of a secret-shared archive (paper §3.2, mobile adversary).");
    Ok(())
}

//! Quickstart: ingest, retrieve, verify, refresh.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aeon::core::{Archive, ArchiveConfig, CodecRegistry, PolicyKind};
use aeon::integrity::timestamp::SigBreakSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every at-rest encoding is a codec behind a registry; policies are
    // just parameter values for one of these families.
    println!(
        "codec families: {}",
        CodecRegistry::global().families().join(", ")
    );

    // A 3-of-5 secret-shared archive: information-theoretic
    // confidentiality at rest, tolerant of 2 lost sites.
    let policy = PolicyKind::Shamir {
        threshold: 3,
        shares: 5,
    };
    let codec = policy.codec();
    println!(
        "policy family {:?}: {} shards, read threshold {}, analytic expansion {}x",
        codec.family(),
        codec.shard_count(),
        codec.read_threshold(),
        codec.expansion()
    );
    let mut archive = Archive::in_memory(ArchiveConfig::new(policy))?;

    let id = archive.ingest(b"the 1921 land registry, digitized", "registry-1921")?;
    println!("ingested object {id}");

    let data = archive.retrieve(&id)?;
    println!(
        "retrieved {} bytes: {:?}",
        data.len(),
        String::from_utf8_lossy(&data)
    );

    let health = archive.verify(&id, &SigBreakSchedule::new())?;
    println!(
        "health: {}/{} shards, intact={}, timestamp-chain-valid={:?}",
        health.shards_available, health.shards_required, health.intact, health.chain_valid
    );

    // One proactive-refresh epoch: every share is re-randomized, stolen
    // old shares are now useless, the object is unchanged.
    let cost = archive.refresh_object(&id)?;
    println!(
        "refreshed: {} messages, {} bytes of protocol traffic",
        cost.messages, cost.bytes
    );
    assert_eq!(archive.retrieve(&id)?, b"the 1921 land registry, digitized");

    let stats = archive.stats();
    println!(
        "archive: {} object(s), {}x storage expansion",
        stats.objects, stats.expansion
    );
    Ok(())
}

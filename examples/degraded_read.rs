//! Degraded read: one batched fetch per node, with a node offline and a
//! shard silently bit-rotted.
//!
//! ```sh
//! cargo run --example degraded_read
//! ```
//!
//! A 3+2 erasure-coded object survives the loss of any two shards. Here
//! one source node is offline (typed I/O failure, retried up to the
//! budget) and one shard has rotted in place (returned bytes fail the
//! manifest digest and are discarded). The batched read path coalesces
//! the remaining fetches into one framed request per node and the
//! per-shard attempt accounting in the [`TransferReport`] shows exactly
//! what each slot cost.

use std::sync::Arc;

use aeon::core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind, RetryPolicy};
use aeon::store::node::{MemoryNode, ShardKey, StorageNode};
use aeon::store::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five single-shard sites behind a shared cluster.
    let handles: Vec<MemoryNode> = (0..5)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(RetryPolicy::default().with_attempts(3));
    let mut archive = Archive::with_cluster(config, cluster)?;

    let payload = b"county deed book, volume 12, 1897-1903".to_vec();
    let id = archive.ingest(&payload, "deed-book-12")?;
    let placement = archive.manifest(&id).expect("manifest").placement.clone();
    println!("ingested {id}; placement {placement:?}");

    // Shard 1's node goes dark: every read attempt fails with a typed
    // I/O error until the retry budget is exhausted.
    let dark = placement[1];
    handles
        .iter()
        .find(|h| h.id() == dark)
        .unwrap()
        .set_offline(true);
    println!("node {dark} (shard 1) is offline");

    // Shard 3 rots in place: the node happily serves garbage, which the
    // digest filter must catch and discard.
    let rotted = placement[3];
    handles
        .iter()
        .find(|h| h.id() == rotted)
        .unwrap()
        .corrupt(&ShardKey::new(id.as_str(), 3), vec![0xBA; 64]);
    println!("shard 3 on node {rotted} is bit-rotted");

    // One framed fetch per node; offline slots burn their retry budget,
    // the rotted slot is fetched once and rejected by its digest.
    let (bytes, report) = archive.retrieve_with_report_batched(&id)?;
    assert_eq!(bytes, payload);
    println!("\nrecovered {} bytes despite both faults\n", bytes.len());

    println!("per-shard attempt accounting (one batched fetch per node):");
    for a in &report.attempts {
        println!(
            "  shard {} @ node {}: {} attempt(s), {}",
            a.shard,
            a.node,
            a.attempts,
            match &a.error {
                Some(e) => format!("failed: {e}"),
                None => "ok".to_string(),
            }
        );
    }
    println!(
        "total attempts {}, failed shards {:?} (shard 3 returned bytes but \
         failed its digest check)",
        report.total_attempts(),
        report.failed_shards()
    );
    Ok(())
}

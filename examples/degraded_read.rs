//! Degraded read: one batched fetch per node, with a node offline and a
//! shard silently bit-rotted.
//!
//! ```sh
//! cargo run --example degraded_read
//! ```
//!
//! A 3+2 erasure-coded object survives the loss of any two shards. Here
//! one source node is offline (typed I/O failure, retried up to the
//! budget) and one shard has rotted in place (returned bytes fail the
//! manifest digest and are discarded). The batched read path coalesces
//! the remaining fetches into one framed request per node and the
//! per-shard attempt accounting in the [`TransferReport`] shows exactly
//! what each slot cost.
//!
//! The second half re-runs the same batched read over seek-charged
//! nodes under both dispatch policies: sequential dispatch pays the
//! sum of the per-node transfers in virtual time, parallel lanes pay
//! only the critical path — same bytes, same report, one seek instead
//! of five.

use std::sync::Arc;

use aeon::core::{Archive, ArchiveConfig, DispatchPolicy, IntegrityMode, PolicyKind, RetryPolicy};
use aeon::store::clock::SimDuration;
use aeon::store::node::{MemoryNode, ShardKey, StorageNode};
use aeon::store::throughput::{throughput_in_memory_cluster, ThroughputProfile};
use aeon::store::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five single-shard sites behind a shared cluster.
    let handles: Vec<MemoryNode> = (0..5)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(RetryPolicy::default().with_attempts(3));
    let mut archive = Archive::with_cluster(config, cluster)?;

    let payload = b"county deed book, volume 12, 1897-1903".to_vec();
    let id = archive.ingest(&payload, "deed-book-12")?;
    let placement = archive.manifest(&id).expect("manifest").placement.clone();
    println!("ingested {id}; placement {placement:?}");

    // Shard 1's node goes dark: every read attempt fails with a typed
    // I/O error until the retry budget is exhausted.
    let dark = placement[1];
    handles
        .iter()
        .find(|h| h.id() == dark)
        .unwrap()
        .set_offline(true);
    println!("node {dark} (shard 1) is offline");

    // Shard 3 rots in place: the node happily serves garbage, which the
    // digest filter must catch and discard.
    let rotted = placement[3];
    handles
        .iter()
        .find(|h| h.id() == rotted)
        .unwrap()
        .corrupt(&ShardKey::new(id.as_str(), 3), vec![0xBA; 64]);
    println!("shard 3 on node {rotted} is bit-rotted");

    // One framed fetch per node; offline slots burn their retry budget,
    // the rotted slot is fetched once and rejected by its digest.
    let (bytes, report) = archive.retrieve_with_report_batched(&id)?;
    assert_eq!(bytes, payload);
    println!("\nrecovered {} bytes despite both faults\n", bytes.len());

    println!("per-shard attempt accounting (one batched fetch per node):");
    for a in &report.attempts {
        println!(
            "  shard {} @ node {}: {} attempt(s), {}",
            a.shard,
            a.node,
            a.attempts,
            match &a.error {
                Some(e) => format!("failed: {e}"),
                None => "ok".to_string(),
            }
        );
    }
    println!(
        "total attempts {}, failed shards {:?} (shard 3 returned bytes but \
         failed its digest check)",
        report.total_attempts(),
        report.failed_shards()
    );

    // Part two: the same batched read priced on the virtual clock,
    // under both dispatch policies. Five cold-HDD sites, 40 ms
    // positioning each; the healthy read touches all five.
    println!("\ndispatch comparison (cold-HDD sites, 40 ms positioning):");
    let mut elapsed = Vec::new();
    for (name, dispatch) in [
        ("sequential", DispatchPolicy::Sequential),
        ("parallel", DispatchPolicy::Parallel { workers: 4 }),
    ] {
        let profile = ThroughputProfile::new(SimDuration::from_millis(40), 20e6, 20e6);
        let (cluster, clock) =
            throughput_in_memory_cluster(&["s0", "s1", "s2", "s3", "s4"], 1, &profile);
        let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
            .with_integrity(IntegrityMode::DigestOnly)
            .with_dispatch(dispatch);
        let mut archive = Archive::with_cluster(config, cluster)?;
        let id = archive.ingest(&payload, "deed-book-12")?;
        let t0 = clock.now();
        let (bytes, _) = archive.retrieve_with_report_batched(&id)?;
        assert_eq!(bytes, payload);
        let dt = clock.now().since(t0);
        println!(
            "  {name:10} dispatch: {:.1} ms virtual",
            dt.as_secs_f64() * 1e3
        );
        elapsed.push(dt);
    }
    assert!(
        elapsed[1] < elapsed[0],
        "parallel lanes must beat sequential dispatch on a multi-node read"
    );
    println!(
        "  parallel lanes pay the critical path: {:.1}x faster on this read",
        elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64()
    );
    Ok(())
}

//! Planning a national archive: policy choice, media economics, and the
//! cost of surviving a cipher break — the paper's §3.2 story as a
//! planning tool.
//!
//! ```sh
//! cargo run --example national_archive
//! ```

use aeon::core::PolicyKind;
use aeon::crypto::SuiteId;
use aeon::store::campaign::ReencryptionModel;
use aeon::store::media::{ArchiveSite, MediaProfile, DAYS_PER_MONTH};

fn main() {
    // The mandate: 500 PB of records, century horizon.
    let logical_tb = 500_000.0;
    println!("National archive: {logical_tb:.0} TB logical, 100-year horizon\n");

    // Candidate policies and their storage bills on tape vs glass.
    let policies: [(&str, PolicyKind); 4] = [
        (
            "AES + erasure coding (cloud default)",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 10,
                parity: 4,
            },
        ),
        (
            "Cascade x2 + erasure coding (ArchiveSafeLT)",
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 10,
                parity: 4,
            },
        ),
        (
            "AONT-RS (Cleversafe)",
            PolicyKind::AontRs {
                data: 10,
                parity: 4,
            },
        ),
        (
            "Shamir 4-of-7 (POTSHARDS)",
            PolicyKind::Shamir {
                threshold: 4,
                shares: 7,
            },
        ),
    ];
    let tape = MediaProfile::tape();
    let glass = MediaProfile::glass();
    println!(
        "{:<44} {:>6} {:>14} {:>14}",
        "policy", "exp(x)", "tape($M/100y)", "glass($M/100y)"
    );
    for (name, policy) in &policies {
        let exp = policy.expansion();
        println!(
            "{:<44} {:>6.2} {:>14.1} {:>14.1}",
            name,
            exp,
            tape.cost_usd(logical_tb * exp, 100.0) / 1e6,
            glass.cost_usd(logical_tb * exp, 100.0) / 1e6,
        );
    }

    // The break scenario: AES falls. How long to migrate each design?
    println!("\nscenario: AES broken — emergency migration at 2 PB/day aggregate read:");
    let site = ArchiveSite {
        name: "national".into(),
        capacity_tb: logical_tb * 1.4, // physical bytes under 10+4 EC
        read_tb_per_day: 2_000.0,
        write_tb_per_day: 1_000.0,
        media: aeon::store::media::MediaType::Tape,
    };
    let est = ReencryptionModel::paper_assumptions(site.clone()).estimate();
    println!(
        "  read-only lower bound : {:>6.1} months",
        est.read_only_months
    );
    println!(
        "  + write-back          : {:>6.1} months",
        est.with_write_months
    );
    println!(
        "  + reserved capacity   : {:>6.1} months  ({:.1} years of exposure)",
        est.realistic_months,
        est.realistic_months / 12.0
    );

    // What the exposure window means: data read per month of campaign.
    let exposed_pb_per_month =
        site.capacity_tb / 1000.0 / (site.capacity_tb / site.read_tb_per_day / DAYS_PER_MONTH);
    println!("  migration pace        : {exposed_pb_per_month:>6.1} PB/month — everything not yet");
    println!("                          migrated remains harvestable\n");

    println!("the paper's takeaway, reproduced: for computational designs the");
    println!("emergency response takes YEARS at national scale, and does nothing");
    println!("for ciphertext already harvested; ITS designs (Shamir) never need");
    println!(
        "the campaign but pay {:.0}% more storage up front.",
        (policies[3].1.expansion() / policies[0].1.expansion() - 1.0) * 100.0
    );
}

//! Acceptance: the §3.2 re-encryption headline numbers, closed-form
//! AND measured on the virtual clock.
//!
//! The paper prices a full re-encryption campaign at 6.75 / 10.35 /
//! 8.3 / 0.76 months for HPSS / MARS / EOS / Pergamum from size and
//! aggregate bandwidth alone. The closed-form model reproduces those
//! figures directly; the measured path re-encodes a scaled-down live
//! archive over a throughput-charged cluster under the shared
//! [`SimClock`] and extrapolates. Both must land within tolerance of
//! the paper — and the two write-back/reserved-capacity ×2 factors
//! must compose, not merely be asserted.

use aeon::core::{Archive, ArchiveConfig, IntegrityMode, MeasuredCampaign, PolicyKind};
use aeon::crypto::SuiteId;
use aeon::store::campaign::ReencryptionModel;
use aeon::store::media::ArchiveSite;
use aeon::store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

/// Paper §3.2 read-only campaign durations, months.
const PAPER_MONTHS: [f64; 4] = [6.75, 10.35, 8.3, 0.76];

/// Tolerance vs the paper's (rounded, assumption-laden) figures.
const PAPER_TOLERANCE: f64 = 0.05;

/// Tolerance between measured-and-extrapolated and closed-form months:
/// both derive from the same site bandwidth, but the measured figure
/// crosses the whole codec/plan/executor/throughput stack.
const AGREEMENT_BOUND: f64 = 0.02;

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b
}

/// Ingests a small archive over a site-profiled cluster and runs the
/// measured campaign at the given foreground reservation.
fn measured_campaign(site: &ArchiveSite, reserved_fraction: f64) -> MeasuredCampaign {
    let profile = ThroughputProfile::from_site_aggregate(site);
    let (cluster, _clock) =
        throughput_in_memory_cluster(&["s0", "s1", "s2", "s3", "s4", "s5"], 1, &profile);
    let config = ArchiveConfig::new(PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 4,
        parity: 2,
    })
    .with_integrity(IntegrityMode::DigestOnly);
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    for i in 0..4u64 {
        let payload: Vec<u8> = (0..16 * 1024u32)
            .map(|j| (j as u8).wrapping_mul(31).wrapping_add(i as u8))
            .collect();
        archive
            .ingest(&payload, &format!("obj-{i}"))
            .expect("ingest");
    }
    archive
        .reencode_all_measured(
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
            reserved_fraction,
        )
        .expect("measured campaign")
}

#[test]
fn closed_form_reproduces_the_paper_months() {
    for (site, paper) in ArchiveSite::paper_examples().into_iter().zip(PAPER_MONTHS) {
        let est = ReencryptionModel::paper_assumptions(site.clone()).estimate();
        assert!(
            rel_err(est.read_only_months, paper) < PAPER_TOLERANCE,
            "{}: closed-form {:.2} months vs paper {paper}",
            site.name,
            est.read_only_months
        );
    }
}

#[test]
fn measured_campaign_reproduces_the_paper_months() {
    for (site, paper) in ArchiveSite::paper_examples().into_iter().zip(PAPER_MONTHS) {
        let closed = ReencryptionModel::paper_assumptions(site.clone()).estimate();
        let est = measured_campaign(&site, 0.5).extrapolate(site.capacity_tb * 1e12);
        assert!(
            rel_err(est.read_only_months, paper) < PAPER_TOLERANCE,
            "{}: measured {:.2} months vs paper {paper}",
            site.name,
            est.read_only_months
        );
        assert!(
            rel_err(est.read_only_months, closed.read_only_months) < AGREEMENT_BOUND,
            "{}: measured {:.4} vs closed-form {:.4} months",
            site.name,
            est.read_only_months,
            closed.read_only_months
        );
    }
}

#[test]
fn write_back_and_reserved_capacity_factors_compose() {
    let site = ArchiveSite::hpss();

    // With no reservation the campaign is exactly read + write-back:
    // the ×2 write-back factor measured, not assumed.
    let free = measured_campaign(&site, 0.0);
    assert_eq!(free.foreground_time.as_nanos(), 0);
    assert_eq!(free.elapsed, free.read_time + free.write_time);
    let write_back =
        (free.read_time + free.write_time).as_secs_f64() / free.read_time.as_secs_f64();
    assert!(
        (write_back - 2.0).abs() < 0.05,
        "write-back factor should be ~2 (writes ≈ reads in bytes at equal \
         bandwidth), got {write_back:.3}"
    );

    // Reserving half the bandwidth doubles the whole campaign on top:
    // realistic ≈ 4 × read-only once both factors stack.
    let reserved = measured_campaign(&site, 0.5);
    let stretch = reserved.elapsed.as_secs_f64() / free.elapsed.as_secs_f64();
    assert!(
        (stretch - 2.0).abs() < 1e-6,
        "r = 0.5 must exactly double elapsed time, got ×{stretch:.6}"
    );
    let est = reserved.extrapolate(site.capacity_tb * 1e12);
    assert!(
        (est.realistic_months / est.read_only_months - 4.0).abs() < 0.1,
        "stacked factors should give realistic ≈ 4 × read-only, got ×{:.3}",
        est.realistic_months / est.read_only_months
    );
}

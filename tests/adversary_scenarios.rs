//! Integration: adversary models against a real archive — node
//! exfiltration, harvest-now-decrypt-later, channel taps, ledger
//! tampering.

use aeon::adversary::{CryptanalyticTimeline, Harvester};
use aeon::channel::dh;
use aeon::channel::transport::{Link, Tap};
use aeon::core::{Archive, ArchiveConfig, PolicyKind, Recovery};
use aeon::crypto::{ChaChaDrbg, CryptoRng, SuiteId};
use aeon::num::ModpGroup;
use aeon::store::node::{MemoryNode, StorageNode};
use aeon::store::Cluster;
use std::sync::Arc;

fn archive_with_handles(policy: PolicyKind, n: usize) -> (Archive, Vec<MemoryNode>) {
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let archive = Archive::with_cluster(ArchiveConfig::new(policy), cluster).unwrap();
    (archive, handles)
}

#[test]
fn node_exfiltration_below_threshold_is_useless() {
    let (mut archive, handles) = archive_with_handles(
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        5,
    );
    let id = archive.ingest(b"the state secret", "s").unwrap();

    // The adversary fully compromises two nodes.
    let mut harvester = Harvester::new();
    for h in handles.iter().take(2) {
        let blobs: Vec<Vec<u8>> = h.exfiltrate_all().into_iter().map(|(_, b)| b).collect();
        harvester.record(id.as_str(), 2026, blobs, "node-compromise");
    }
    assert_eq!(harvester.records().len(), 2);

    // Reconstructing the stolen haul as policy shards: positions 0 and 1.
    let manifest = archive.manifest(&id).unwrap();
    let mut stolen: Vec<Option<Vec<u8>>> = vec![None; 5];
    for (i, h) in handles.iter().enumerate().take(2) {
        let blob = h.exfiltrate_all().into_iter().next().map(|(_, b)| b);
        stolen[i] = blob;
    }
    let timeline = CryptanalyticTimeline::pessimistic_2045();
    let outcome = manifest.policy.hndl_recover(
        archive.keys(),
        id.as_str(),
        &stolen,
        &manifest.meta,
        &timeline,
        3000,
    );
    assert_eq!(outcome, Recovery::Nothing);
}

#[test]
fn node_exfiltration_at_threshold_wins_without_any_break() {
    let (mut archive, handles) = archive_with_handles(
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        5,
    );
    let id = archive.ingest(b"the state secret", "s").unwrap();
    let manifest = archive.manifest(&id).unwrap();
    // Placement maps shard index -> node; exfiltrate the right three.
    let mut stolen: Vec<Option<Vec<u8>>> = vec![None; 5];
    for (shard_idx, node_id) in manifest.placement.iter().enumerate().take(3) {
        let h = handles.iter().find(|h| h.id() == *node_id).unwrap();
        let blob = h
            .exfiltrate_all()
            .into_iter()
            .find(|(k, _)| k.shard == shard_idx as u32)
            .map(|(_, b)| b);
        stolen[shard_idx] = blob;
    }
    let timeline = CryptanalyticTimeline::optimistic(); // nothing broken!
    let outcome = manifest.policy.hndl_recover(
        archive.keys(),
        id.as_str(),
        &stolen,
        &manifest.meta,
        &timeline,
        2026,
    );
    assert_eq!(outcome, Recovery::Full(b"the state secret".to_vec()));
}

#[test]
fn refresh_between_thefts_defeats_accumulation() {
    let (mut archive, handles) = archive_with_handles(
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        5,
    );
    let id = archive.ingest(b"rotating target", "s").unwrap();
    let manifest_placement = archive.manifest(&id).unwrap().placement.clone();

    let steal = |shard_idx: usize| -> Vec<u8> {
        let node_id = manifest_placement[shard_idx];
        handles
            .iter()
            .find(|h| h.id() == node_id)
            .unwrap()
            .exfiltrate_all()
            .into_iter()
            .find(|(k, _)| k.shard == shard_idx as u32)
            .map(|(_, b)| b)
            .unwrap()
    };

    // Epoch 1: steal shards 0, 1. Refresh. Epoch 2: steal shard 2.
    let s0 = steal(0);
    let s1 = steal(1);
    archive.refresh_object(&id).unwrap();
    let s2 = steal(2);

    let stolen = vec![Some(s0), Some(s1), Some(s2), None, None];
    let manifest = archive.manifest(&id).unwrap();
    let outcome = manifest.policy.hndl_recover(
        archive.keys(),
        id.as_str(),
        &stolen,
        &manifest.meta,
        &CryptanalyticTimeline::optimistic(),
        2026,
    );
    // Three shards, but from different epochs: reconstruction yields
    // garbage, not the secret.
    match outcome {
        Recovery::Full(pt) => assert_ne!(pt, b"rotating target"),
        Recovery::Nothing | Recovery::Partial(_) => {}
    }
    // The archive itself still reads fine.
    assert_eq!(archive.retrieve(&id).unwrap(), b"rotating target");
}

#[test]
fn channel_tap_plus_future_break_recovers_transit_data() {
    // An ITS datastore does not help if shares cross a computational
    // channel: tap the DH channel now, break it later (paper §3.2).
    let group = ModpGroup::rfc3526_2048();
    let mut link = Link::wan();
    let tap = Tap::new();
    link.attach_tap(tap.clone());

    // Mirror RNG to learn the exponent the future cryptanalyst computes.
    let mut shadow = ChaChaDrbg::from_u64_seed(777);
    let a_exp = shadow.gen_array::<32>();

    let mut rng = ChaChaDrbg::from_u64_seed(777);
    let (mut alice, mut bob) = dh::handshake(&mut rng, &group, &mut link).unwrap();
    alice.send(&mut link, b"share #3 of the master key");
    bob.recv(&mut link).unwrap();

    let recovered = dh::simulate_retro_break(&group, &tap, &a_exp);
    assert_eq!(recovered, vec![b"share #3 of the master key".to_vec()]);
}

#[test]
fn ledger_tamper_detected() {
    let mut archive =
        Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication { copies: 2 })).unwrap();
    for i in 0..5 {
        archive.ingest(b"entry", &format!("obj-{i}")).unwrap();
    }
    assert!(archive.ledger().verify().is_ok());
    assert_eq!(archive.ledger().len(), 5);
}

#[test]
fn hndl_harvester_full_pipeline_against_archive() {
    let (mut archive, handles) = archive_with_handles(
        PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 2,
            parity: 1,
        },
        3,
    );
    let id = archive.ingest(b"treasury ledger 2026", "t").unwrap();

    // Total theft: all three nodes.
    let manifest = archive.manifest(&id).unwrap().clone();
    let mut harvester = Harvester::new();
    let mut stolen: Vec<Option<Vec<u8>>> = vec![None; 3];
    for (shard_idx, node_id) in manifest.placement.iter().enumerate() {
        let h = handles.iter().find(|h| h.id() == *node_id).unwrap();
        let blob = h
            .exfiltrate_all()
            .into_iter()
            .find(|(k, _)| k.shard == shard_idx as u32)
            .map(|(_, b)| b)
            .unwrap();
        stolen[shard_idx] = Some(blob.clone());
        harvester.record(id.as_str(), 2026, vec![blob], "full-theft");
    }

    let timeline = CryptanalyticTimeline::pessimistic_2045();
    let keys = archive.keys().clone();
    let policy = manifest.policy.clone();
    let meta = manifest.meta.clone();
    let object = id.as_str().to_string();
    let recover = |_r: &aeon::adversary::HarvestRecord,
                   t: &CryptanalyticTimeline,
                   y: u32|
     -> Option<Vec<u8>> {
        match policy.hndl_recover(&keys, &object, &stolen, &meta, t, y) {
            Recovery::Full(pt) => Some(pt),
            _ => None,
        }
    };
    // 2040: AES stands; nothing recovered.
    assert_eq!(
        harvester.replay(&timeline, 2040, recover).recovered.len(),
        0
    );
    // 2050: AES fell; everything recovered. Re-encrypting the archive in
    // 2046 would NOT have helped — the adversary replays the 2026 bytes.
    let after = harvester.replay(&timeline, 2050, recover);
    assert_eq!(after.recovered.len(), harvester.records().len());
    assert!(after
        .recovered
        .iter()
        .all(|(_, pt)| pt == b"treasury ledger 2026"));
}

//! Cross-crate property tests: every policy, arbitrary payloads,
//! arbitrary loss patterns.

use aeon::core::keys::KeyStore;
use aeon::core::pipeline::{self, PipelineConfig};
use aeon::core::PolicyKind;
use aeon::crypto::{ChaChaDrbg, SuiteId};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        (1usize..5).prop_map(|copies| PolicyKind::Replication { copies }),
        (1usize..6, 1usize..4).prop_map(|(data, parity)| PolicyKind::ErasureCoded { data, parity }),
        (1usize..6, 1usize..4).prop_map(|(data, parity)| PolicyKind::Encrypted {
            suite: SuiteId::ChaCha20Poly1305,
            data,
            parity
        }),
        (1usize..5, 1usize..3, 1usize..3).prop_map(|(data, parity, depth)| {
            let suites = [SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305];
            PolicyKind::Cascade {
                suites: suites[..depth].to_vec(),
                data,
                parity,
            }
        }),
        (1usize..5, 1usize..3).prop_map(|(data, parity)| PolicyKind::AontRs { data, parity }),
        (1usize..5, 0usize..4).prop_map(|(t, extra)| PolicyKind::Shamir {
            threshold: t,
            shares: t + extra
        }),
        (1usize..4, 1usize..4, 0usize..4).prop_map(|(privacy, pack, extra)| {
            PolicyKind::PackedShamir {
                privacy,
                pack,
                shares: privacy + pack + extra,
            }
        }),
        (1usize..4, 0usize..3, 8usize..64).prop_map(|(t, extra, source_len)| {
            PolicyKind::LeakageResilientShamir {
                threshold: t,
                shares: t + extra,
                source_len,
            }
        }),
        (1usize..5, 1usize..3).prop_map(|(data, parity)| PolicyKind::Entropic { data, parity }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid policy round-trips any payload through encode/decode.
    #[test]
    fn policy_roundtrip(policy in arb_policy(),
                        payload in prop::collection::vec(any::<u8>(), 0..2048),
                        seed in any::<u64>()) {
        let keys = KeyStore::new([9u8; 32]);
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let enc = policy.encode(&mut rng, &keys, "prop-object", &payload).unwrap();
        prop_assert_eq!(enc.shards.len(), policy.shard_count());
        let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        let dec = policy.decode(&keys, "prop-object", &shards, &enc.meta).unwrap();
        prop_assert_eq!(dec, payload);
    }

    /// Decoding succeeds with any loss pattern that keeps >= threshold
    /// shards, chosen pseudo-randomly.
    #[test]
    fn policy_survives_random_loss(policy in arb_policy(),
                                   payload in prop::collection::vec(any::<u8>(), 1..512),
                                   seed in any::<u64>()) {
        let keys = KeyStore::new([9u8; 32]);
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let enc = policy.encode(&mut rng, &keys, "loss-object", &payload).unwrap();
        let n = policy.shard_count();
        let t = policy.read_threshold();
        // Drop a pseudo-random set of n - t shards.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        for &idx in order.iter().take(n - t) {
            shards[idx] = None;
        }
        let dec = policy.decode(&keys, "loss-object", &shards, &enc.meta).unwrap();
        prop_assert_eq!(dec, payload);
    }

    /// Encode never panics on pathological payload sizes.
    #[test]
    fn policy_handles_tiny_and_empty(policy in arb_policy(), len in 0usize..4) {
        let keys = KeyStore::new([9u8; 32]);
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let payload = vec![0xA5u8; len];
        let enc = policy.encode(&mut rng, &keys, "tiny", &payload).unwrap();
        let shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        let dec = policy.decode(&keys, "tiny", &shards, &enc.meta).unwrap();
        prop_assert_eq!(dec, payload);
    }

    /// The parallel chunked pipeline and the serial path produce
    /// byte-identical archives and round-trip identically, for every
    /// policy: (a) multi-chunk encodes are invariant under worker count,
    /// and (b) single-chunk payloads match the legacy whole-buffer
    /// `PolicyKind::encode` bit for bit.
    #[test]
    fn chunked_parallel_matches_serial(policy in arb_policy(),
                                       payload in prop::collection::vec(any::<u8>(), 0..3072),
                                       seed in any::<u64>()) {
        let keys = KeyStore::new([9u8; 32]);

        // (a) Same RNG state, same chunking, different worker counts.
        let chunked = PipelineConfig::serial().with_chunk_size(257);
        let mut rng_serial = ChaChaDrbg::from_u64_seed(seed);
        let mut rng_parallel = ChaChaDrbg::from_u64_seed(seed);
        let serial = pipeline::encode_object(
            &policy, &keys, &mut rng_serial, "eq-object", &payload,
            &chunked.clone().with_workers(1)).unwrap();
        let parallel = pipeline::encode_object(
            &policy, &keys, &mut rng_parallel, "eq-object", &payload,
            &chunked.with_workers(4)).unwrap();
        prop_assert_eq!(&serial.shards, &parallel.shards);
        prop_assert_eq!(&serial.meta, &parallel.meta);
        let shards: Vec<Option<Vec<u8>>> =
            parallel.shards.iter().cloned().map(Some).collect();
        let dec = pipeline::decode_object(
            &policy, &keys, "eq-object", &shards, &parallel.meta, 4).unwrap();
        prop_assert_eq!(&dec, &payload);

        // (b) A chunk size >= the payload bypasses framing entirely and
        // matches the legacy path byte for byte.
        let whole = PipelineConfig::serial().with_chunk_size(payload.len().max(1));
        let mut rng_legacy = ChaChaDrbg::from_u64_seed(seed);
        let mut rng_piped = ChaChaDrbg::from_u64_seed(seed);
        let legacy = policy.encode(&mut rng_legacy, &keys, "eq-object", &payload).unwrap();
        let piped = pipeline::encode_object(
            &policy, &keys, &mut rng_piped, "eq-object", &payload, &whole).unwrap();
        prop_assert_eq!(&legacy.shards, &piped.shards);
        prop_assert!(piped.meta.chunked.is_none());
    }

    /// Chunked objects survive the same loss patterns the policy
    /// guarantees for whole-buffer encodes.
    #[test]
    fn chunked_survives_random_loss(policy in arb_policy(),
                                    payload in prop::collection::vec(any::<u8>(), 600..2048),
                                    seed in any::<u64>()) {
        let keys = KeyStore::new([9u8; 32]);
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let cfg = PipelineConfig::serial().with_chunk_size(199).with_workers(2);
        let enc = pipeline::encode_object(
            &policy, &keys, &mut rng, "chunk-loss", &payload, &cfg).unwrap();
        let n = policy.shard_count();
        let t = policy.read_threshold();
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut shards: Vec<Option<Vec<u8>>> = enc.shards.iter().cloned().map(Some).collect();
        for &idx in order.iter().take(n - t) {
            shards[idx] = None;
        }
        let dec = pipeline::decode_object(
            &policy, &keys, "chunk-loss", &shards, &enc.meta, 2).unwrap();
        prop_assert_eq!(dec, payload);
    }

    /// Stored bytes match the policy's analytic expansion (within framing
    /// overhead) for large payloads.
    #[test]
    fn measured_expansion_tracks_analytic(policy in arb_policy(), seed in any::<u64>()) {
        let keys = KeyStore::new([9u8; 32]);
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let payload = vec![0x5Au8; 64 * 1024];
        let enc = policy.encode(&mut rng, &keys, "sized", &payload).unwrap();
        let stored: usize = enc.shards.iter().map(|s| s.len()).sum();
        let measured = stored as f64 / payload.len() as f64;
        let analytic = policy.expansion();
        // LRSS's analytic figure is the large-object limit; give all
        // policies 15% headroom for headers, padding, and AEAD tags.
        prop_assert!(
            (measured - analytic).abs() / analytic < 0.15,
            "policy {:?}: measured {measured:.3} vs analytic {analytic:.3}",
            policy
        );
    }
}

//! Integration: the maintenance plan is executable — walk the planner's
//! schedule against a live archive and verify the outcome it promises.

use aeon::adversary::CryptanalyticTimeline;
use aeon::core::planner::{plan, Action, PlannerConfig};
use aeon::core::trustees::TrusteeKeyring;
use aeon::core::{Archive, ArchiveConfig, PolicyKind, Recovery};
use aeon::crypto::{ChaChaDrbg, SuiteId};
use aeon::store::media::ArchiveSite;

#[test]
fn executing_the_plan_beats_the_timeline() {
    let timeline = CryptanalyticTimeline::pessimistic_2045();
    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 4,
            parity: 2,
        })
        .with_year(2026),
    )
    .unwrap();
    let ids: Vec<_> = (0..4)
        .map(|i| archive.ingest(b"planned object", &format!("o{i}")).unwrap())
        .collect();

    let entries = plan(
        &archive,
        &timeline,
        &ArchiveSite::hpss(),
        PlannerConfig {
            refresh_every_years: 0,
            ..Default::default()
        },
    );

    // Execute each entry at its scheduled year.
    for entry in &entries {
        archive.advance_year(entry.year);
        match &entry.action {
            Action::StartReencodeCampaign { doomed, .. } => {
                assert_eq!(*doomed, SuiteId::Aes256CtrHmac);
                archive
                    .reencode_all(PolicyKind::Cascade {
                        suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                        data: 4,
                        parity: 2,
                    })
                    .unwrap();
            }
            Action::RotateSignatureScheme { .. } => {
                archive.rotate_timestamp_scheme("wots-v2");
                for id in &ids {
                    archive.renew_timestamp(id).unwrap();
                }
            }
            Action::RefreshShares => unreachable!("refresh disabled in config"),
        }
    }

    // 2045 arrives: AES falls. The plan must have left the archive safe —
    // a full at-rest harvest in 2046 recovers nothing.
    archive.advance_year(2046);
    for id in &ids {
        assert_eq!(archive.retrieve(id).unwrap(), b"planned object");
        let m = archive.manifest(id).unwrap();
        let stolen = archive.cluster().get_shards(id.as_str(), &m.placement);
        let outcome = m.policy.hndl_recover(
            archive.keys(),
            id.as_str(),
            &stolen,
            &m.meta,
            &timeline,
            2046,
        );
        assert_eq!(outcome, Recovery::Nothing, "plan failed to protect {id}");
    }
}

#[test]
fn unexecuted_plan_is_the_counterfactual_disaster() {
    // Same archive, same timeline, nobody executes the plan.
    let timeline = CryptanalyticTimeline::pessimistic_2045();
    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 4,
            parity: 2,
        })
        .with_year(2026),
    )
    .unwrap();
    let id = archive.ingest(b"unprotected object", "o").unwrap();
    archive.advance_year(2046);
    let m = archive.manifest(&id).unwrap();
    let stolen = archive.cluster().get_shards(id.as_str(), &m.placement);
    let outcome = m.policy.hndl_recover(
        archive.keys(),
        id.as_str(),
        &stolen,
        &m.meta,
        &timeline,
        2046,
    );
    assert_eq!(outcome, Recovery::Full(b"unprotected object".to_vec()));
}

#[test]
fn trustee_keyring_feeds_archive_master_key() {
    // Distributed custody end to end: the archive's master key exists
    // only under trustee quorum; the archive is constructed inside the
    // quorum operation and never sees the shares.
    let mut rng = ChaChaDrbg::from_u64_seed(42);
    let mut keyring = TrusteeKeyring::establish(&mut rng, b"board ceremony", 2, 3).unwrap();
    keyring.refresh(&mut rng).unwrap();

    let id = keyring
        .with_master_key(|master| {
            let mut config = ArchiveConfig::new(PolicyKind::Encrypted {
                suite: SuiteId::ChaCha20Poly1305,
                data: 2,
                parity: 1,
            });
            config.master_key = *master;
            let mut archive = Archive::in_memory(config).unwrap();
            let id = archive.ingest(b"quorum-keyed object", "q").unwrap();
            assert_eq!(archive.retrieve(&id).unwrap(), b"quorum-keyed object");
            id
        })
        .unwrap();

    // Later quorum: the same key re-derives, so a rebuilt archive (same
    // seed and cluster state simulated by a fresh ingest) uses the same
    // object-key derivations. Here we assert key stability across refresh.
    let k1 = keyring.with_master_key(|k| *k).unwrap();
    keyring.refresh(&mut rng).unwrap();
    let k2 = keyring.with_master_key(|k| *k).unwrap();
    assert_eq!(k1, k2);
    let _ = id;
}

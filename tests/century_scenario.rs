//! Integration: a one-hundred-year archive timeline — the paper's whole
//! argument as one executable scenario.
//!
//! 2026: ingest under AES. 2040: cryptanalysis looms; migrate to a
//! cascade and rotate the timestamp scheme. 2045: AES falls. 2060:
//! ChaCha falls; migrate the remainder to secret sharing. 2126: verify
//! everything — availability, confidentiality classification, and an
//! unbroken chain of custody back to 2026.

use aeon::adversary::CryptanalyticTimeline;
use aeon::core::{Archive, ArchiveConfig, PolicyKind, Recovery};
use aeon::crypto::{SecurityLevel, SuiteId};
use aeon::integrity::timestamp::SigBreakSchedule;

#[test]
fn century_of_custody() {
    let timeline = CryptanalyticTimeline::pessimistic_2045();
    let mut sig_schedule = SigBreakSchedule::new();
    sig_schedule.set_break("wots-v1", 2045);

    // --- 2026: birth of the archive ---
    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 4,
            parity: 2,
        })
        .with_year(2026),
    )
    .unwrap();
    let documents: Vec<(String, Vec<u8>)> = (0..6)
        .map(|i| {
            (
                format!("founding-doc-{i}"),
                format!("founding document {i}, signed 2026").into_bytes(),
            )
        })
        .collect();
    let ids: Vec<_> = documents
        .iter()
        .map(|(name, payload)| archive.ingest(payload, name).unwrap())
        .collect();

    // --- 2040: the writing is on the wall for AES ---
    archive.advance_year(2040);
    // Rotate the signature scheme BEFORE its 2045 break and renew chains.
    archive.rotate_timestamp_scheme("wots-v2");
    for id in &ids {
        archive.renew_timestamp(id).unwrap();
    }
    // Migrate at-rest encryption to a two-cipher cascade.
    let (migrated, _, _) = archive
        .reencode_all(PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 4,
            parity: 2,
        })
        .unwrap();
    assert_eq!(migrated, 6);

    // --- 2045: AES falls. The cascade still stands. ---
    archive.advance_year(2045);
    for (id, (_, payload)) in ids.iter().zip(&documents) {
        assert_eq!(&archive.retrieve(id).unwrap(), payload);
        let m = archive.manifest(id).unwrap();
        // At-rest data harvested NOW still resists: ChaCha layer stands.
        let stolen: Vec<Option<Vec<u8>>> = archive.cluster().get_shards(id.as_str(), &m.placement);
        let outcome = m.policy.hndl_recover(
            archive.keys(),
            id.as_str(),
            &stolen,
            &m.meta,
            &timeline,
            2045,
        );
        assert_eq!(outcome, Recovery::Nothing, "cascade must hold in 2045");
    }

    // --- 2059: ChaCha's break (2060) approaches; go information-theoretic ---
    archive.advance_year(2059);
    let (migrated, _, _) = archive
        .reencode_all(PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        })
        .unwrap();
    assert_eq!(migrated, 6);

    // --- 2126: the centennial audit ---
    archive.advance_year(2126);
    for (id, (_, payload)) in ids.iter().zip(&documents) {
        // Availability and integrity.
        assert_eq!(&archive.retrieve(id).unwrap(), payload);
        let health = archive.verify(id, &sig_schedule).unwrap();
        assert!(health.intact);
        // The renewed chain still proves 2026 despite the 2045 sig break.
        assert_eq!(health.chain_valid, Some(true));
        // Confidentiality is now unconditional.
        let m = archive.manifest(id).unwrap();
        assert_eq!(
            m.policy.at_rest_level(),
            SecurityLevel::InformationTheoretic
        );
        // Sub-threshold theft in 2126 learns nothing, breaks or no breaks.
        let mut stolen = archive.cluster().get_shards(id.as_str(), &m.placement);
        stolen[2] = None;
        stolen[3] = None;
        stolen[4] = None;
        let outcome = m.policy.hndl_recover(
            archive.keys(),
            id.as_str(),
            &stolen,
            &m.meta,
            &timeline,
            2126,
        );
        assert_eq!(outcome, Recovery::Nothing);
    }

    // The cautionary coda the paper insists on: ciphertext harvested in
    // 2026 (before any migration) is recovered the day AES falls — no
    // later campaign could have prevented it.
    let mut archive_2026 = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 4,
            parity: 2,
        })
        .with_year(2026),
    )
    .unwrap();
    let id = archive_2026
        .ingest(b"harvested before migration", "h")
        .unwrap();
    let m = archive_2026.manifest(&id).unwrap();
    let harvested_2026: Vec<Option<Vec<u8>>> =
        archive_2026.cluster().get_shards(id.as_str(), &m.placement);
    let outcome = m.policy.hndl_recover(
        archive_2026.keys(),
        id.as_str(),
        &harvested_2026,
        &m.meta,
        &timeline,
        2045,
    );
    assert_eq!(
        outcome,
        Recovery::Full(b"harvested before migration".to_vec()),
        "HNDL: the 2026 harvest falls with AES regardless of later migrations"
    );
}

#[test]
fn late_signature_rotation_breaks_custody() {
    // Control scenario: an archive that forgets to renew its chains
    // before the signature break cannot prove custody afterwards.
    let mut sig_schedule = SigBreakSchedule::new();
    sig_schedule.set_break("wots-v1", 2045);

    let mut archive = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Replication { copies: 2 }).with_year(2026),
    )
    .unwrap();
    let id = archive.ingest(b"orphaned document", "o").unwrap();

    archive.advance_year(2050); // sleepwalk past the break
    let health = archive.verify(&id, &sig_schedule).unwrap();
    assert_eq!(
        health.chain_valid,
        Some(false),
        "un-renewed chain must be invalid after its scheme breaks"
    );
    // Data is still there — integrity-of-origin is what's lost.
    assert!(health.intact);
}

//! Integration: full archive lifecycle across crates (core + store +
//! secretshare + crypto + integrity).

use aeon::core::{Archive, ArchiveConfig, ArchiveError, IntegrityMode, PolicyKind};
use aeon::crypto::SuiteId;
use aeon::integrity::timestamp::SigBreakSchedule;
use aeon::store::node::{FileNode, MemoryNode, StorageNode};
use aeon::store::Cluster;
use std::sync::Arc;

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Replication { copies: 3 },
        PolicyKind::ErasureCoded { data: 4, parity: 2 },
        PolicyKind::Encrypted {
            suite: SuiteId::ChaCha20Poly1305,
            data: 4,
            parity: 2,
        },
        PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 4,
            parity: 2,
        },
        PolicyKind::AontRs { data: 4, parity: 2 },
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        PolicyKind::PackedShamir {
            privacy: 2,
            pack: 2,
            shares: 6,
        },
        PolicyKind::LeakageResilientShamir {
            threshold: 3,
            shares: 5,
            source_len: 32,
        },
    ]
}

#[test]
fn lifecycle_under_every_policy() {
    for policy in all_policies() {
        let mut archive = Archive::in_memory(ArchiveConfig::new(policy.clone())).unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i * 37) as u8).collect();
        let id = archive.ingest(&payload, "lifecycle").unwrap();
        assert_eq!(archive.retrieve(&id).unwrap(), payload, "{policy:?}");
        let health = archive.verify(&id, &SigBreakSchedule::new()).unwrap();
        assert!(health.intact, "{policy:?}");
        archive.delete(&id).unwrap();
        assert!(matches!(
            archive.retrieve(&id),
            Err(ArchiveError::UnknownObject(_))
        ));
    }
}

#[test]
fn survives_maximum_node_failures() {
    // Build a cluster of MemoryNode handles we can fail.
    let handles: Vec<MemoryNode> = (0..5)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let mut archive = Archive::with_cluster(
        ArchiveConfig::new(PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        }),
        cluster,
    )
    .unwrap();
    let id = archive
        .ingest(b"survives two site failures", "doc")
        .unwrap();

    // Fail two arbitrary sites.
    handles[1].set_offline(true);
    handles[4].set_offline(true);
    assert_eq!(
        archive.retrieve(&id).unwrap(),
        b"survives two site failures"
    );

    // A third failure crosses the threshold.
    handles[0].set_offline(true);
    assert!(archive.retrieve(&id).is_err());

    // Recovery: bring one back.
    handles[1].set_offline(false);
    assert_eq!(
        archive.retrieve(&id).unwrap(),
        b"survives two site failures"
    );
}

#[test]
fn file_backed_archive_persists() {
    let dir = std::env::temp_dir().join(format!("aeon-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nodes: Vec<Arc<dyn StorageNode>> = (0..4)
        .map(|i| {
            Arc::new(
                FileNode::create(i, format!("site-{i}"), dir.join(format!("node-{i}"))).unwrap(),
            ) as Arc<dyn StorageNode>
        })
        .collect();
    let cluster = Cluster::new(nodes);
    let mut archive = Archive::with_cluster(
        ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 2 })
            .with_integrity(IntegrityMode::DigestOnly),
        cluster,
    )
    .unwrap();
    let id = archive.ingest(b"on disk", "persisted").unwrap();
    assert_eq!(archive.retrieve(&id).unwrap(), b"on disk");
    // The bytes really are on disk.
    let mut on_disk = 0u64;
    for i in 0..4 {
        let node_dir = dir.join(format!("node-{i}"));
        for entry in std::fs::read_dir(&node_dir).unwrap().flatten() {
            on_disk += entry.metadata().unwrap().len();
        }
    }
    assert!(on_disk > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_policies_in_one_archive() {
    let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
        threshold: 3,
        shares: 5,
    }))
    .unwrap();
    let id_default = archive.ingest(b"shared", "a").unwrap();
    let id_enc = archive
        .ingest_with_policy(
            b"encrypted",
            "b",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 3,
                parity: 2,
            },
        )
        .unwrap();
    let id_aont = archive
        .ingest_with_policy(b"dispersed", "c", PolicyKind::AontRs { data: 3, parity: 2 })
        .unwrap();
    assert_eq!(archive.retrieve(&id_default).unwrap(), b"shared");
    assert_eq!(archive.retrieve(&id_enc).unwrap(), b"encrypted");
    assert_eq!(archive.retrieve(&id_aont).unwrap(), b"dispersed");
    assert_eq!(archive.stats().objects, 3);
}

#[test]
fn reencode_campaign_preserves_everything() {
    let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 4,
        parity: 2,
    }))
    .unwrap();
    let mut originals = Vec::new();
    for i in 0..8 {
        let payload = format!("object number {i}").into_bytes();
        let id = archive.ingest(&payload, &format!("obj-{i}")).unwrap();
        originals.push((id, payload));
    }
    // AES is falling: migrate everything to a cascade.
    let (count, _, _) = archive
        .reencode_all(PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 4,
            parity: 2,
        })
        .unwrap();
    assert_eq!(count, 8);
    for (id, payload) in &originals {
        assert_eq!(&archive.retrieve(id).unwrap(), payload);
    }
}

#[test]
fn key_rotation_mid_life() {
    let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Encrypted {
        suite: SuiteId::ChaCha20Poly1305,
        data: 2,
        parity: 1,
    }))
    .unwrap();
    let id_old = archive.ingest(b"under master v0", "old").unwrap();
    archive.rotate_master_key([0x77; 32]);
    let id_new = archive.ingest(b"under master v1", "new").unwrap();
    // Both readable: manifests pin their key version.
    assert_eq!(archive.retrieve(&id_old).unwrap(), b"under master v0");
    assert_eq!(archive.retrieve(&id_new).unwrap(), b"under master v1");
}

//! Offline drop-in shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible subset of `parking_lot`
//! backed by `std::sync`. The semantic difference that matters to
//! callers — `lock()` / `read()` / `write()` returning guards directly
//! instead of `Result`s — is preserved by unwrapping poison errors
//! (parking_lot has no lock poisoning; a panic while holding a std lock
//! is already fatal to every test that would observe it).

use std::sync::{self, LockResult, PoisonError, TryLockError};

/// A mutual-exclusion primitive with the `parking_lot` (non-poisoning)
/// locking API, backed by [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed; the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// A reader-writer lock with the `parking_lot` (non-poisoning) locking
/// API, backed by [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}

//! Offline drop-in shim for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible bench harness. It measures
//! wall-clock time (median over `sample_size` samples, each sample
//! auto-calibrated to run long enough to be timeable) and prints one
//! line per benchmark with mean time and, when a [`Throughput`] is set,
//! bytes/second. It intentionally skips criterion's statistical
//! machinery (outlier analysis, HTML reports, regression detection);
//! the numbers it prints are honest medians, good enough to compare a
//! serial and a parallel code path in the same process.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How much work one iteration of a benchmark processes, for
/// rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one
/// setup per measured iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run.
    result_ns: f64,
}

/// Target wall-clock budget for one benchmark (all samples together).
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result_ns: 0.0,
        }
    }

    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample's share of
        // the budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = SAMPLE_BUDGET / self.samples as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.result_ns = samples_ns[samples_ns.len() / 2];
    }

    /// Times `routine` over values produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples_ns.push(start.elapsed().as_nanos() as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.result_ns = samples_ns[samples_ns.len() / 2];
    }

    /// Like [`Bencher::iter_batched`] but passing the input by
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut i| routine(&mut i), _size);
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(bytes: u64, ns: f64) -> String {
    let per_sec = bytes as f64 / (ns / 1e9);
    if per_sec >= 1e9 {
        format!("{:.2} GiB/s", per_sec / (1u64 << 30) as f64)
    } else if per_sec >= 1e6 {
        format!("{:.2} MiB/s", per_sec / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB/s", per_sec / (1u64 << 10) as f64)
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, ns: f64) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match throughput {
        Some(Throughput::Bytes(b)) => {
            println!(
                "{label:<48} {:>12}  {:>14}",
                human_time(ns),
                human_rate(b, ns)
            );
        }
        Some(Throughput::Elements(e)) => {
            let rate = e as f64 / (ns / 1e9);
            println!("{label:<48} {:>12}  {rate:>11.0} elem/s", human_time(ns));
        }
        None => println!("{label:<48} {:>12}", human_time(ns)),
    }
}

/// The bench harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report("", id, None, b.result_ns);
        self
    }
}

/// A group of related benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&self.name, &id.to_string(), self.throughput, b.result_ns);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&self.name, &id.to_string(), self.throughput, b.result_ns);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(4);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(4);
        b.iter_batched(
            || vec![1u8; 1024],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("f", 1), &42u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}

//! Test configuration and the deterministic RNG behind every strategy.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG (SplitMix64) seeded from the test name, so every
/// run of a given test generates the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, xored with a fixed tweak so the
        // all-empty name still has a non-trivial seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping: adequate bias bounds
        // for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn config_default_and_override() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(10).cases, 10);
    }
}

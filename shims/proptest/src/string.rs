//! String generation from a small regex subset.
//!
//! Real proptest interprets `&str` strategies as full regexes. This shim
//! supports the subset the workspace's tests actually use: literal
//! characters, character classes like `[a-z0-9_]`, and `{m}` / `{m,n}`
//! repetition applied to the preceding class or literal.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn expand_class(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "descending range in char class: {body}");
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("valid char in class range"));
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty char class: [{body}]");
    out
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern: {pattern}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                Atom::Class(expand_class(&body))
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern: {pattern}"));
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} or {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern: {pattern}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} lower bound"),
                    hi.trim().parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n} count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push((atom, min, max));
    }
    parts
}

/// Generates one string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse(pattern) {
        let reps = if min == max {
            min
        } else {
            min + rng.below((max - min + 1) as u64) as usize
        };
        for _ in 0..reps {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::for_test("string");
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_fixed_counts() {
        let mut rng = TestRng::for_test("string2");
        let s = generate_from_pattern("id-[0-9]{4}", &mut rng);
        assert!(s.starts_with("id-"));
        assert_eq!(s.len(), 7);
        assert!(s[3..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn multi_range_class() {
        let mut rng = TestRng::for_test("string3");
        let s = generate_from_pattern("[a-z0-9_]{8}", &mut rng);
        assert_eq!(s.len(), 8);
        assert!(s
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
    }
}

//! Offline drop-in shim for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal API-compatible property-testing harness:
//! the [`Strategy`](strategy::Strategy) trait, `any::<T>()`, integer/float range strategies,
//! tuple and collection combinators, `prop_oneof!`, a tiny
//! `[class]{m,n}` regex string strategy, and the `proptest!` macro
//! driving a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   visible in the assertion message rather than a minimized one.
//! * **Deterministic seeding.** The RNG seed derives from the test
//!   name, so failures reproduce exactly on re-run; set
//!   `PROPTEST_CASES` to change the case count.
//! * **Edge biasing** replaces proptest's full value-tree machinery:
//!   integer ranges return their endpoints a few percent of the time.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the `proptest!` test files expect in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body for every generated
/// case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.resolved_cases() {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a pure function from RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies can
    /// share a collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

// ----- integer / float range strategies -------------------------------

macro_rules! range_strategy_ints {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    // Bias lightly toward the endpoints, where bugs live.
                    match rng.below(16) {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => self.start + rng.below(span) as $t,
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    match rng.below(16) {
                        0 => lo,
                        1 => hi,
                        _ if span == u64::MAX => rng.next_u64() as $t,
                        _ => lo + rng.below(span + 1) as $t,
                    }
                }
            }
        )+
    };
}
range_strategy_ints!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ----- tuple strategies ----------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}
tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

// ----- string strategies ---------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (3usize..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (0u32..=100).generate(&mut r);
            assert!(w <= 100);
            let f = (1.5f64..2.5).generate(&mut r);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn endpoints_are_hit() {
        let mut r = rng();
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match (10u8..20).generate(&mut r) {
                10 => lo = true,
                19 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "edge biasing should hit both endpoints");
    }

    #[test]
    fn map_and_tuples() {
        let mut r = rng();
        let s = (1usize..5, 1usize..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..=8).contains(&v));
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let mut r = rng();
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn arbitrary_arrays() {
        let mut r = rng();
        let a: [u8; 32] = any::<[u8; 32]>().generate(&mut r);
        let b: [u8; 32] = any::<[u8; 32]>().generate(&mut r);
        assert_ne!(a, b, "consecutive arrays should differ");
    }
}

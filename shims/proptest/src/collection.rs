//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose length lies in `len` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::for_test("collection");
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vec_works() {
        let mut rng = TestRng::for_test("nested");
        let s = vec(vec(any::<u8>(), 0..4), 1..5);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
        for inner in v {
            assert!(inner.len() < 4);
        }
    }
}

//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[T; N]` with every element drawn from one inner
/// strategy.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

/// Generates `[T; 32]` arrays from `element`.
pub fn uniform32<S: Strategy>(element: S) -> UniformArrayStrategy<S, 32> {
    UniformArrayStrategy { element }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn uniform32_fills_all_slots() {
        let mut rng = TestRng::for_test("array");
        let a = uniform32(any::<u8>()).generate(&mut rng);
        assert_eq!(a.len(), 32);
        assert!(a.iter().any(|&b| b != a[0]), "array should not be constant");
    }
}

//! Verifiable secret sharing: Feldman and Pedersen schemes.
//!
//! Plain Shamir sharing trusts the dealer and the shareholders: a corrupt
//! dealer can hand out inconsistent shares, and during proactive refresh a
//! corrupt shareholder can inject deltas that silently destroy the secret.
//! VSS fixes this by publishing commitments to the sharing polynomial's
//! coefficients; every shareholder checks its own share against them.
//!
//! * **Feldman VSS** commits with `C_j = g^{a_j}`. Verification is exact,
//!   but the commitments leak `g^{secret}` — only *computationally*
//!   hiding, which is precisely the long-term weakness the paper warns
//!   about.
//! * **Pedersen VSS** commits with `C_j = g^{a_j} h^{b_j}` using a
//!   companion random polynomial `b`. The commitments are
//!   *information-theoretically hiding*, so publishing them costs no
//!   long-term confidentiality (the property LINCOS exploits); binding is
//!   computational, which only needs to hold at dealing time.
//!
//! Secrets here are group scalars (up to ~2048 bits) — in the archive
//! stack VSS protects object *keys* and key shares, while bulk data uses
//! the byte-parallel [`shamir`](crate::shamir) scheme.

use crate::ShareError;
use aeon_crypto::CryptoRng;
use aeon_num::pedersen::{Commitment, Committer};
use aeon_num::{GroupElement, ModpGroup, MontCtx, U2048};

/// A scalar share of a VSS dealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VssShare {
    /// 1-based shareholder index (evaluation point).
    pub index: u64,
    /// `f(index)` — the share of the secret polynomial.
    pub value: U2048,
    /// `b(index)` — the share of the blinding polynomial (Pedersen only;
    /// zero for Feldman shares).
    pub blind: U2048,
}

/// Which commitment flavor a dealing used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VssKind {
    /// Feldman: `C_j = g^{a_j}` (computationally hiding).
    Feldman,
    /// Pedersen: `C_j = g^{a_j} h^{b_j}` (information-theoretically hiding).
    Pedersen,
}

/// A complete VSS dealing: shares plus public commitments.
#[derive(Debug, Clone)]
pub struct VssDealing {
    /// The scheme used.
    pub kind: VssKind,
    /// Reconstruction threshold `t`.
    pub threshold: usize,
    /// Per-coefficient commitments `C_0 … C_{t-1}`.
    pub commitments: Vec<Commitment>,
    /// The issued shares (distribute one per shareholder; do not store
    /// together in production).
    pub shares: Vec<VssShare>,
}

/// Scalar-field helper bound to the subgroup order `q`.
#[derive(Debug, Clone)]
pub struct ScalarField {
    ctx: MontCtx<32>,
    q: U2048,
}

impl ScalarField {
    /// Creates the scalar field for a group.
    pub fn new(group: &ModpGroup) -> Self {
        let q = *group.subgroup_order();
        ScalarField {
            ctx: MontCtx::new(q),
            q,
        }
    }

    /// The field order `q`.
    pub fn order(&self) -> &U2048 {
        &self.q
    }

    /// Addition mod `q`.
    pub fn add(&self, a: &U2048, b: &U2048) -> U2048 {
        a.add_mod(b, &self.q)
    }

    /// Subtraction mod `q`.
    pub fn sub(&self, a: &U2048, b: &U2048) -> U2048 {
        a.sub_mod(b, &self.q)
    }

    /// Multiplication mod `q`.
    pub fn mul(&self, a: &U2048, b: &U2048) -> U2048 {
        self.ctx.mul(a, b)
    }

    /// Inversion mod `q` (Fermat; `q` is prime).
    ///
    /// # Panics
    ///
    /// Panics on zero input.
    pub fn invert(&self, a: &U2048) -> U2048 {
        assert!(!a.is_zero(), "cannot invert zero scalar");
        let q_minus_2 = self.q.wrapping_sub(&U2048::from_u64(2));
        self.ctx.pow(a, &q_minus_2)
    }

    /// Evaluates a polynomial (coefficients low-to-high) at `x` mod `q`.
    pub fn poly_eval(&self, coeffs: &[U2048], x: &U2048) -> U2048 {
        let mut acc = U2048::ZERO;
        for c in coeffs.iter().rev() {
            acc = self.add(&self.mul(&acc, x), c);
        }
        acc
    }

    /// Draws a uniform scalar below `q`.
    pub fn random<R: CryptoRng + ?Sized>(&self, rng: &mut R) -> U2048 {
        // 2048 random bits reduced mod q: bias is 2^-1024, negligible.
        let bytes = aeon_crypto::random_array::<256, _>(rng);
        U2048::from_be_bytes(&bytes).rem(&self.q)
    }
}

/// Deals a secret under Feldman or Pedersen VSS.
///
/// # Errors
///
/// Returns [`ShareError::InvalidParameters`] for `t == 0` or `t > n`.
pub fn deal<R: CryptoRng + ?Sized>(
    rng: &mut R,
    committer: &Committer,
    kind: VssKind,
    secret: &U2048,
    threshold: usize,
    shares: usize,
) -> Result<VssDealing, ShareError> {
    if threshold == 0 || threshold > shares {
        return Err(ShareError::InvalidParameters {
            threshold,
            shares,
            reason: "require 1 <= t <= n",
        });
    }
    let group = committer.group();
    let field = ScalarField::new(group);
    let secret = secret.rem(field.order());

    // Secret polynomial f with f(0) = secret.
    let mut f = Vec::with_capacity(threshold);
    f.push(secret);
    for _ in 1..threshold {
        f.push(field.random(rng));
    }
    // Blinding polynomial b (Pedersen only).
    let b: Vec<U2048> = match kind {
        VssKind::Pedersen => (0..threshold).map(|_| field.random(rng)).collect(),
        VssKind::Feldman => vec![U2048::ZERO; threshold],
    };

    // Commitments per coefficient.
    let commitments: Vec<Commitment> = (0..threshold)
        .map(|j| match kind {
            VssKind::Feldman => Commitment(group.exp_generator(&f[j].to_be_bytes())),
            VssKind::Pedersen => committer.commit_scalars(&f[j], &b[j]),
        })
        .collect();

    let issued: Vec<VssShare> = (1..=shares as u64)
        .map(|i| {
            let x = U2048::from_u64(i);
            VssShare {
                index: i,
                value: field.poly_eval(&f, &x),
                blind: field.poly_eval(&b, &x),
            }
        })
        .collect();

    Ok(VssDealing {
        kind,
        threshold,
        commitments,
        shares: issued,
    })
}

/// Verifies a single share against the dealing's public commitments.
pub fn verify_share(
    committer: &Committer,
    kind: VssKind,
    commitments: &[Commitment],
    share: &VssShare,
) -> bool {
    let group = committer.group();
    // Expected commitment: Π C_j^(i^j).
    let field = ScalarField::new(group);
    let x = U2048::from_u64(share.index);
    let mut x_pow = U2048::one();
    let mut expect: Option<GroupElement> = None;
    for c in commitments {
        let term = group.exp(&c.0, &x_pow.to_be_bytes());
        expect = Some(match expect {
            None => term,
            Some(e) => group.mul(&e, &term),
        });
        x_pow = field.mul(&x_pow, &x);
    }
    let Some(expect) = expect else { return false };
    let actual = match kind {
        VssKind::Feldman => group.exp_generator(&share.value.to_be_bytes()),
        VssKind::Pedersen => committer.commit_scalars(&share.value, &share.blind).0,
    };
    actual == expect
}

/// Reconstructs the secret scalar from at least `threshold` shares via
/// Lagrange interpolation at zero, mod `q`.
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] or
/// [`ShareError::InconsistentShares`] for duplicate indices.
pub fn reconstruct(
    group: &ModpGroup,
    shares: &[VssShare],
    threshold: usize,
) -> Result<U2048, ShareError> {
    if shares.len() < threshold {
        return Err(ShareError::TooFewShares {
            provided: shares.len(),
            required: threshold,
        });
    }
    let field = ScalarField::new(group);
    let subset = &shares[..threshold];
    let mut seen = std::collections::HashSet::new();
    for s in subset {
        if s.index == 0 || !seen.insert(s.index) {
            return Err(ShareError::InconsistentShares(
                "duplicate or reserved share index",
            ));
        }
    }
    let mut acc = U2048::ZERO;
    for (i, si) in subset.iter().enumerate() {
        // λ_i = Π_{j≠i} x_j / (x_j - x_i)
        let xi = U2048::from_u64(si.index);
        let mut num = U2048::one();
        let mut den = U2048::one();
        for (j, sj) in subset.iter().enumerate() {
            if i == j {
                continue;
            }
            let xj = U2048::from_u64(sj.index);
            num = field.mul(&num, &xj);
            den = field.mul(&den, &field.sub(&xj, &xi));
        }
        let lambda = field.mul(&num, &field.invert(&den));
        acc = field.add(&acc, &field.mul(&lambda, &si.value));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn setup() -> (Committer, ChaChaDrbg) {
        (
            Committer::new(ModpGroup::rfc3526_2048()),
            ChaChaDrbg::from_u64_seed(99),
        )
    }

    #[test]
    fn feldman_deal_verify_reconstruct() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(0xDEADBEEF);
        let dealing = deal(&mut rng, &committer, VssKind::Feldman, &secret, 2, 3).unwrap();
        for share in &dealing.shares {
            assert!(verify_share(
                &committer,
                VssKind::Feldman,
                &dealing.commitments,
                share
            ));
        }
        let rec = reconstruct(committer.group(), &dealing.shares[1..3], 2).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn pedersen_deal_verify_reconstruct() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(424242);
        let dealing = deal(&mut rng, &committer, VssKind::Pedersen, &secret, 2, 4).unwrap();
        for share in &dealing.shares {
            assert!(verify_share(
                &committer,
                VssKind::Pedersen,
                &dealing.commitments,
                share
            ));
        }
        let rec = reconstruct(committer.group(), &dealing.shares[2..4], 2).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn corrupted_share_detected() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(7);
        let mut dealing = deal(&mut rng, &committer, VssKind::Pedersen, &secret, 2, 3).unwrap();
        dealing.shares[1].value = dealing.shares[1].value.wrapping_add(&U2048::one());
        assert!(!verify_share(
            &committer,
            VssKind::Pedersen,
            &dealing.commitments,
            &dealing.shares[1]
        ));
        // The untouched shares still verify.
        assert!(verify_share(
            &committer,
            VssKind::Pedersen,
            &dealing.commitments,
            &dealing.shares[0]
        ));
    }

    #[test]
    fn feldman_commitment_leaks_g_to_secret() {
        // Demonstrates WHY Feldman is only computationally hiding: C_0 is
        // literally g^secret, so an adversary with discrete log breaks it.
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(31337);
        let dealing = deal(&mut rng, &committer, VssKind::Feldman, &secret, 2, 3).unwrap();
        let g_to_s = committer.group().exp_generator(&secret.to_be_bytes());
        assert_eq!(dealing.commitments[0].0, g_to_s);
    }

    #[test]
    fn pedersen_commitment_statistically_hides() {
        // Same secret, two dealings: C_0 differs because of blinding.
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(5);
        let d1 = deal(&mut rng, &committer, VssKind::Pedersen, &secret, 2, 3).unwrap();
        let d2 = deal(&mut rng, &committer, VssKind::Pedersen, &secret, 2, 3).unwrap();
        assert_ne!(d1.commitments[0], d2.commitments[0]);
    }

    #[test]
    fn too_few_shares() {
        let (committer, mut rng) = setup();
        let dealing = deal(
            &mut rng,
            &committer,
            VssKind::Feldman,
            &U2048::from_u64(1),
            3,
            4,
        )
        .unwrap();
        assert!(matches!(
            reconstruct(committer.group(), &dealing.shares[..2], 3),
            Err(ShareError::TooFewShares { .. })
        ));
    }

    #[test]
    fn invalid_parameters() {
        let (committer, mut rng) = setup();
        assert!(deal(&mut rng, &committer, VssKind::Feldman, &U2048::ZERO, 0, 3).is_err());
        assert!(deal(&mut rng, &committer, VssKind::Feldman, &U2048::ZERO, 4, 3).is_err());
    }

    #[test]
    fn scalar_field_ops() {
        let group = ModpGroup::rfc3526_2048();
        let f = ScalarField::new(&group);
        let a = U2048::from_u64(10);
        let b = U2048::from_u64(3);
        assert_eq!(f.add(&a, &b), U2048::from_u64(13));
        assert_eq!(f.sub(&b, &a), f.sub(&U2048::ZERO, &U2048::from_u64(7)));
        assert_eq!(f.mul(&a, &b), U2048::from_u64(30));
        let inv = f.invert(&a);
        assert_eq!(f.mul(&a, &inv), U2048::one());
    }

    #[test]
    fn duplicate_share_index_rejected() {
        let (committer, mut rng) = setup();
        let dealing = deal(
            &mut rng,
            &committer,
            VssKind::Feldman,
            &U2048::from_u64(1),
            2,
            3,
        )
        .unwrap();
        let dup = vec![dealing.shares[0].clone(), dealing.shares[0].clone()];
        assert!(matches!(
            reconstruct(committer.group(), &dup, 2),
            Err(ShareError::InconsistentShares(_))
        ));
    }
}

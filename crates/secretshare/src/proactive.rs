//! Proactive secret sharing: share refresh and verifiable redistribution.
//!
//! A mobile adversary (Ostrovsky–Yung) corrupts up to `b` shareholders per
//! epoch, moving between epochs. Given enough epochs it will eventually
//! have touched `t` shareholders — unless the shares it stole in earlier
//! epochs have been made useless. *Proactive refresh* (Herzberg et al.)
//! does exactly that: each epoch, shareholders jointly add a random
//! sharing of zero, re-randomizing every share while preserving the
//! secret. Stolen old shares no longer combine with current ones.
//!
//! *Verifiable share redistribution* (Wong–Wang–Wing) goes further and
//! moves the secret to a fresh access structure `(t', n')` — new
//! shareholders, new threshold — without ever reconstructing it. This is
//! the mechanism archives need when storage providers are added, removed,
//! or decommissioned over decades.
//!
//! Both protocols here operate on the byte-parallel GF(2^8)
//! [`shamir::Share`]s used for bulk data, and both report exact
//! communication costs so the experiments can compare refresh traffic
//! against re-encryption I/O (experiment E6).

use crate::shamir::{self, Share};
use crate::ShareError;
use aeon_crypto::CryptoRng;
use aeon_gf::poly::lagrange_coefficients;
use aeon_gf::slice;
use aeon_gf::Gf256;

/// Communication cost accounting for a refresh or redistribution round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCost {
    /// Point-to-point messages exchanged.
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
}

impl ProtocolCost {
    /// Accumulates another cost.
    pub fn add(&mut self, other: ProtocolCost) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// Refreshes a full share set in place (Herzberg round with an honest
/// dealer per shareholder).
///
/// Every shareholder `i` samples a random degree-`t-1` polynomial
/// `δ_i` with `δ_i(0) = 0` and sends `δ_i(j)` to shareholder `j`; each
/// shareholder adds all received deltas to its share. The secret is
/// unchanged (all deltas vanish at 0) but the share vector is freshly
/// re-randomized.
///
/// Returns the communication cost: `n × (n - 1)` messages of share-sized
/// payloads (self-deliveries are local).
///
/// # Errors
///
/// Returns [`ShareError::InvalidParameters`] or
/// [`ShareError::InconsistentShares`] on malformed input.
pub fn refresh<R: CryptoRng + ?Sized>(
    rng: &mut R,
    shares: &mut [Share],
    threshold: usize,
) -> Result<ProtocolCost, ShareError> {
    let n = shares.len();
    if threshold == 0 || threshold > n {
        return Err(ShareError::InvalidParameters {
            threshold,
            shares: n,
            reason: "require 1 <= t <= n",
        });
    }
    let len = shares[0].data.len();
    if shares.iter().any(|s| s.data.len() != len) {
        return Err(ShareError::InconsistentShares("ragged share lengths"));
    }

    // Each shareholder deals a zero-rooted delta polynomial. We exploit
    // byte-parallelism: coefficients c_1..c_{t-1} are byte vectors;
    // δ(x) = c_1 x + ... + c_{t-1} x^{t-1}.
    for _dealer in 0..n {
        let mut coeffs: Vec<Vec<u8>> = Vec::with_capacity(threshold.saturating_sub(1));
        for _ in 1..threshold {
            let mut c = vec![0u8; len];
            rng.fill_bytes(&mut c);
            coeffs.push(c);
        }
        for share in shares.iter_mut() {
            let x = Gf256::new(share.index);
            // δ(x) applied as one fused row pass per share.
            let mut rows: Vec<(Gf256, &[u8])> = Vec::with_capacity(coeffs.len());
            let mut x_pow = x;
            for c in &coeffs {
                rows.push((x_pow, c.as_slice()));
                x_pow *= x;
            }
            slice::mul_add_rows(&mut share.data, &rows);
        }
    }
    Ok(ProtocolCost {
        messages: (n * (n - 1)) as u64,
        bytes: (n * (n - 1) * len) as u64,
    })
}

/// Result of a redistribution: the new share set and the protocol cost.
#[derive(Debug, Clone)]
pub struct Redistribution {
    /// Shares under the new `(t', n')` access structure.
    pub shares: Vec<Share>,
    /// Communication cost of the round.
    pub cost: ProtocolCost,
}

/// Redistributes a secret from `(t, n)` shares to a fresh `(t', n')`
/// access structure without reconstructing it (Wong-style VSR, honest
/// participants).
///
/// Each of the first `t` old shareholders sub-shares its share under the
/// new parameters; new shareholder `j` combines the received sub-shares
/// with the old-structure Lagrange coefficients. Old shares become
/// useless: they are shares of a polynomial that no longer exists.
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] if fewer than `t` old shares are
/// given, and [`ShareError::InvalidParameters`] for bad new parameters.
pub fn redistribute<R: CryptoRng + ?Sized>(
    rng: &mut R,
    old_shares: &[Share],
    old_threshold: usize,
    new_threshold: usize,
    new_count: usize,
) -> Result<Redistribution, ShareError> {
    if old_shares.len() < old_threshold {
        return Err(ShareError::TooFewShares {
            provided: old_shares.len(),
            required: old_threshold,
        });
    }
    let contributors = &old_shares[..old_threshold];
    let len = contributors[0].data.len();
    if contributors.iter().any(|s| s.data.len() != len) {
        return Err(ShareError::InconsistentShares("ragged share lengths"));
    }

    // Lagrange coefficients of the old structure at x = 0.
    let xs: Vec<Gf256> = contributors.iter().map(|s| Gf256::new(s.index)).collect();
    let lambda = lagrange_coefficients(&xs, Gf256::ZERO)
        .map_err(|_| ShareError::InconsistentShares("duplicate share index"))?;

    // Each contributor sub-shares its share under (t', n').
    let mut new_shares: Vec<Share> = (1..=new_count as u8)
        .map(|j| Share {
            index: j,
            data: vec![0u8; len],
        })
        .collect();
    let mut cost = ProtocolCost::default();
    // Deal every contributor's sub-shares first (same RNG draw order as
    // the per-contributor accumulation this replaces), then combine them
    // per new share in one fused Lagrange pass.
    let mut all_subshares: Vec<Vec<Share>> = Vec::with_capacity(contributors.len());
    for contrib in contributors {
        all_subshares.push(shamir::split(rng, &contrib.data, new_threshold, new_count)?);
        cost.messages += new_count as u64;
        cost.bytes += (new_count * len) as u64;
    }
    for (j, new_share) in new_shares.iter_mut().enumerate() {
        // new_share = Σ_i λ_i · subshare_i(j)
        let rows: Vec<(Gf256, &[u8])> = lambda
            .iter()
            .zip(&all_subshares)
            .map(|(&lam, subs)| (lam, subs[j].data.as_slice()))
            .collect();
        slice::mul_add_rows(&mut new_share.data, &rows);
    }
    Ok(Redistribution {
        shares: new_shares,
        cost,
    })
}

/// A long-lived proactively-secured secret: shares plus epoch bookkeeping.
///
/// # Examples
///
/// ```
/// use aeon_secretshare::proactive::ProactiveSecret;
/// use aeon_crypto::ChaChaDrbg;
///
/// let mut rng = ChaChaDrbg::from_u64_seed(5);
/// let mut ps = ProactiveSecret::share(&mut rng, b"master key", 3, 5)?;
/// ps.refresh_epoch(&mut rng)?;
/// ps.refresh_epoch(&mut rng)?;
/// assert_eq!(ps.epoch(), 2);
/// assert_eq!(ps.reconstruct()?, b"master key");
/// # Ok::<(), aeon_secretshare::ShareError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProactiveSecret {
    shares: Vec<Share>,
    threshold: usize,
    epoch: u64,
    total_cost: ProtocolCost,
}

impl ProactiveSecret {
    /// Shares a secret `t`-of-`n` at epoch 0.
    ///
    /// # Errors
    ///
    /// Propagates [`shamir::split`] validation errors.
    pub fn share<R: CryptoRng + ?Sized>(
        rng: &mut R,
        secret: &[u8],
        threshold: usize,
        count: usize,
    ) -> Result<Self, ShareError> {
        Ok(ProactiveSecret {
            shares: shamir::split(rng, secret, threshold, count)?,
            threshold,
            epoch: 0,
            total_cost: ProtocolCost::default(),
        })
    }

    /// Current epoch number (refreshes completed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reconstruction threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Current shares (for distribution to simulated nodes).
    pub fn shares(&self) -> &[Share] {
        &self.shares
    }

    /// Accumulated protocol communication cost.
    pub fn total_cost(&self) -> ProtocolCost {
        self.total_cost
    }

    /// Runs one refresh epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`refresh`] errors.
    pub fn refresh_epoch<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<ProtocolCost, ShareError> {
        let cost = refresh(rng, &mut self.shares, self.threshold)?;
        self.epoch += 1;
        self.total_cost.add(cost);
        Ok(cost)
    }

    /// Redistributes to a new access structure, advancing the epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`redistribute`] errors.
    pub fn redistribute_epoch<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
        new_threshold: usize,
        new_count: usize,
    ) -> Result<ProtocolCost, ShareError> {
        let redist = redistribute(rng, &self.shares, self.threshold, new_threshold, new_count)?;
        self.shares = redist.shares;
        self.threshold = new_threshold;
        self.epoch += 1;
        self.total_cost.add(redist.cost);
        Ok(redist.cost)
    }

    /// Reconstructs the secret from the current shares.
    ///
    /// # Errors
    ///
    /// Propagates [`shamir::reconstruct`] errors.
    pub fn reconstruct(&self) -> Result<Vec<u8>, ShareError> {
        shamir::reconstruct(&self.shares, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(123)
    }

    #[test]
    fn refresh_preserves_secret() {
        let mut r = rng();
        let mut shares = shamir::split(&mut r, b"persistent", 3, 5).unwrap();
        let before: Vec<Vec<u8>> = shares.iter().map(|s| s.data.clone()).collect();
        let cost = refresh(&mut r, &mut shares, 3).unwrap();
        let after: Vec<Vec<u8>> = shares.iter().map(|s| s.data.clone()).collect();
        assert_ne!(before, after, "shares must change");
        assert_eq!(shamir::reconstruct(&shares, 3).unwrap(), b"persistent");
        assert_eq!(cost.messages, 20); // 5 × 4
        assert_eq!(cost.bytes, 20 * 10);
    }

    #[test]
    fn stale_shares_useless_after_refresh() {
        // A mobile adversary stole t-1 shares before refresh and steals
        // one more after: the mix must NOT reconstruct the secret.
        let mut r = rng();
        let mut shares = shamir::split(&mut r, b"mobile adversary", 3, 5).unwrap();
        let stolen_old = [shares[0].clone(), shares[1].clone()];
        refresh(&mut r, &mut shares, 3).unwrap();
        let stolen_new = shares[2].clone();
        let mix = vec![stolen_old[0].clone(), stolen_old[1].clone(), stolen_new];
        let rec = shamir::reconstruct(&mix, 3).unwrap();
        assert_ne!(rec, b"mobile adversary");
        // While the full current set still works.
        assert_eq!(
            shamir::reconstruct(&shares, 3).unwrap(),
            b"mobile adversary"
        );
    }

    #[test]
    fn multiple_refresh_rounds() {
        let mut r = rng();
        let mut shares = shamir::split(&mut r, b"many rounds", 2, 4).unwrap();
        for _ in 0..10 {
            refresh(&mut r, &mut shares, 2).unwrap();
        }
        assert_eq!(shamir::reconstruct(&shares, 2).unwrap(), b"many rounds");
    }

    #[test]
    fn refresh_with_t1_is_noop_on_data() {
        // t = 1: delta polynomials have no free coefficients, so shares
        // stay identical (each share IS the secret).
        let mut r = rng();
        let mut shares = shamir::split(&mut r, b"t=1", 1, 3).unwrap();
        let before: Vec<Vec<u8>> = shares.iter().map(|s| s.data.clone()).collect();
        refresh(&mut r, &mut shares, 1).unwrap();
        let after: Vec<Vec<u8>> = shares.iter().map(|s| s.data.clone()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn redistribute_same_structure() {
        let mut r = rng();
        let shares = shamir::split(&mut r, b"move me", 2, 4).unwrap();
        let redist = redistribute(&mut r, &shares, 2, 2, 4).unwrap();
        assert_eq!(redist.shares.len(), 4);
        assert_eq!(shamir::reconstruct(&redist.shares, 2).unwrap(), b"move me");
    }

    #[test]
    fn redistribute_grow_and_shrink() {
        let mut r = rng();
        let shares = shamir::split(&mut r, b"elastic", 2, 3).unwrap();
        // Grow to 4-of-7.
        let grown = redistribute(&mut r, &shares, 2, 4, 7).unwrap();
        assert_eq!(shamir::reconstruct(&grown.shares, 4).unwrap(), b"elastic");
        // Shrink back to 2-of-3.
        let shrunk = redistribute(&mut r, &grown.shares, 4, 2, 3).unwrap();
        assert_eq!(shamir::reconstruct(&shrunk.shares, 2).unwrap(), b"elastic");
    }

    #[test]
    fn old_shares_dead_after_redistribution() {
        let mut r = rng();
        let old = shamir::split(&mut r, b"retired", 2, 4).unwrap();
        let redist = redistribute(&mut r, &old, 2, 2, 4).unwrap();
        // Mixing one old and one new share fails to produce the secret.
        let mix = vec![old[0].clone(), redist.shares[1].clone()];
        assert_ne!(shamir::reconstruct(&mix, 2).unwrap(), b"retired");
    }

    #[test]
    fn redistribution_cost_accounting() {
        let mut r = rng();
        let shares = shamir::split(&mut r, &[0u8; 100], 3, 5).unwrap();
        let redist = redistribute(&mut r, &shares, 3, 3, 5).unwrap();
        // 3 contributors × 5 sub-shares each.
        assert_eq!(redist.cost.messages, 15);
        assert_eq!(redist.cost.bytes, 15 * 100);
    }

    #[test]
    fn proactive_secret_lifecycle() {
        let mut r = rng();
        let mut ps = ProactiveSecret::share(&mut r, b"lifecycle", 2, 4).unwrap();
        assert_eq!(ps.epoch(), 0);
        ps.refresh_epoch(&mut r).unwrap();
        ps.redistribute_epoch(&mut r, 3, 6).unwrap();
        ps.refresh_epoch(&mut r).unwrap();
        assert_eq!(ps.epoch(), 3);
        assert_eq!(ps.threshold(), 3);
        assert_eq!(ps.shares().len(), 6);
        assert_eq!(ps.reconstruct().unwrap(), b"lifecycle");
        assert!(ps.total_cost().messages > 0);
    }

    #[test]
    fn errors() {
        let mut r = rng();
        let mut shares = shamir::split(&mut r, b"x", 2, 3).unwrap();
        assert!(refresh(&mut r, &mut shares, 0).is_err());
        assert!(refresh(&mut r, &mut shares, 4).is_err());
        assert!(redistribute(&mut r, &shares[..1], 2, 2, 3).is_err());
    }
}

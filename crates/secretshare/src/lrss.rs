//! Leakage-resilient secret sharing (LRSS) compiler.
//!
//! Shamir's scheme is perfectly secret against an adversary who sees fewer
//! than `t` *complete* shares — but Benhamouda, Degwekar, Ishai and Rabin
//! showed that an adversary who leaks just a few *bits from every share*
//! (a local-leakage attack, e.g. via a side channel at each storage
//! provider) can learn information about the secret, especially over
//! small-characteristic fields like GF(2^8) where one leaked parity bit
//! per share can reveal a parity of the secret.
//!
//! The standard countermeasure compiles any base scheme into a
//! leakage-resilient one: each base share `s_i` is stored as
//! `(w_i, d_i, c_i = s_i ⊕ Ext(w_i; d_i))`, where `w_i` is a large random
//! *source*, `d_i` a public extractor seed, and `Ext` a strong randomness
//! extractor (here: Toeplitz over GF(2)). Leaking `μ` bits of a stored
//! share leaves `w_i` with high residual min-entropy, so `Ext(w_i; d_i)`
//! remains statistically close to uniform and `c_i` keeps `s_i` hidden.
//! The price is storage: each share grows by `|w| + |seed|` bytes.

use crate::shamir::Share;
use crate::ShareError;
use aeon_crypto::CryptoRng;

/// Parameters of the LRSS compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LrssParams {
    /// Source length in bytes per share (`|w|`). Leakage resilience is
    /// roughly `8·source_len − 8·share_len − 2·security_bits` leaked bits
    /// tolerated per share.
    pub source_len: usize,
}

impl Default for LrssParams {
    fn default() -> Self {
        // 64-byte source per share: tolerates ~hundreds of leaked bits for
        // typical 32-byte key shares.
        LrssParams { source_len: 64 }
    }
}

/// A leakage-resilient wrapping of one Shamir share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrssShare {
    /// The underlying share index (evaluation point).
    pub index: u8,
    /// The random source `w` (secret, stored with the share).
    pub source: Vec<u8>,
    /// The public extractor seed `d` (Toeplitz first column+row bits).
    pub seed: Vec<u8>,
    /// The masked share `c = s ⊕ Ext(w; d)`.
    pub masked: Vec<u8>,
}

impl LrssShare {
    /// Total stored size of this share in bytes.
    pub fn stored_len(&self) -> usize {
        self.source.len() + self.seed.len() + self.masked.len()
    }
}

/// Toeplitz extractor over GF(2): `out[i] = ⊕_j T[i][j] · w[j]` at the bit
/// level, with `T[i][j] = seed_bit[i + j]`. A Toeplitz matrix drawn from
/// `|w|·8 + out·8 − 1` seed bits is a universal hash family, hence (by the
/// leftover hash lemma) a strong extractor.
pub fn toeplitz_extract(source: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let w_bits = source.len() * 8;
    let out_bits = out_len * 8;
    assert!(
        seed.len() * 8 >= w_bits + out_bits - 1,
        "seed too short for Toeplitz extraction"
    );
    // Word-parallel inner product: pack both bit strings into u64 words
    // (big-endian bit order within each word) and compute each output bit
    // as parity(window_i(seed) & source) with shifted word reads.
    let pack = |bytes: &[u8]| -> Vec<u64> {
        bytes
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w[..c.len()].copy_from_slice(c);
                u64::from_be_bytes(w)
            })
            .collect()
    };
    let src_words = pack(source);
    let seed_words = pack(seed);
    let w_words = src_words.len();
    // Mask for the final partial source word.
    let tail_bits = w_bits % 64;
    let tail_mask: u64 = if tail_bits == 0 {
        u64::MAX
    } else {
        u64::MAX << (64 - tail_bits)
    };

    let seed_window = |bit_off: usize, k: usize| -> u64 {
        // 64 seed bits starting at bit_off + 64k, big-endian packing.
        let word = (bit_off / 64) + k;
        let shift = bit_off % 64;
        let hi = seed_words.get(word).copied().unwrap_or(0);
        if shift == 0 {
            hi
        } else {
            let lo = seed_words.get(word + 1).copied().unwrap_or(0);
            (hi << shift) | (lo >> (64 - shift))
        }
    };

    let mut out = vec![0u8; out_len];
    for i in 0..out_bits {
        let mut acc = 0u64;
        for (k, src) in src_words.iter().enumerate() {
            let mut s = seed_window(i, k);
            if k == w_words - 1 {
                s &= tail_mask;
            }
            acc ^= s & src;
        }
        let parity = (acc.count_ones() & 1) as u8;
        out[i / 8] |= parity << (7 - i % 8);
    }
    out
}

/// Wraps base Shamir shares into leakage-resilient form.
///
/// # Errors
///
/// Returns [`ShareError::InvalidParameters`] if the source length is
/// zero.
pub fn wrap<R: CryptoRng + ?Sized>(
    rng: &mut R,
    shares: &[Share],
    params: LrssParams,
) -> Result<Vec<LrssShare>, ShareError> {
    if params.source_len == 0 {
        return Err(ShareError::InvalidParameters {
            threshold: 0,
            shares: shares.len(),
            reason: "LRSS source length must be positive",
        });
    }
    let mut out = Vec::with_capacity(shares.len());
    for share in shares {
        let mut source = vec![0u8; params.source_len];
        rng.fill_bytes(&mut source);
        let seed_len = params.source_len + share.data.len(); // ≥ needed bits
        let mut seed = vec![0u8; seed_len];
        rng.fill_bytes(&mut seed);
        let mask = toeplitz_extract(&source, &seed, share.data.len());
        let masked: Vec<u8> = share.data.iter().zip(&mask).map(|(s, m)| s ^ m).collect();
        out.push(LrssShare {
            index: share.index,
            source,
            seed,
            masked,
        });
    }
    Ok(out)
}

/// Unwraps leakage-resilient shares back to base Shamir shares.
pub fn unwrap(shares: &[LrssShare]) -> Vec<Share> {
    shares
        .iter()
        .map(|ls| {
            let mask = toeplitz_extract(&ls.source, &ls.seed, ls.masked.len());
            Share {
                index: ls.index,
                data: ls.masked.iter().zip(&mask).map(|(c, m)| c ^ m).collect(),
            }
        })
        .collect()
}

/// Storage expansion of the compiled scheme relative to the bare share.
pub fn expansion(share_len: usize, params: LrssParams) -> f64 {
    if share_len == 0 {
        return 1.0;
    }
    let stored = params.source_len + (params.source_len + share_len) + share_len;
    stored as f64 / share_len as f64
}

/// Simulates the classic local-leakage attack on GF(2^8) Shamir shares:
/// the adversary leaks the low bit (parity) of the first byte of every
/// share and tries to predict the XOR of those parities for a *fresh*
/// sharing of the same secret. For bare Shamir over GF(2^8) with share
/// index structure, leaked parities are correlated with the secret; for
/// LRSS-wrapped shares the mask decorrelates them.
///
/// Returns the adversary's advantage estimate in `[0, 1]` over `trials`
/// random sharings: how far the parity-of-leakages distribution deviates
/// from a fair coin, conditioned on the secret byte.
pub fn local_leakage_advantage<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: u8,
    threshold: usize,
    count: usize,
    wrapped: bool,
    trials: usize,
) -> f64 {
    let mut parity_counts = [0u64; 2];
    for _ in 0..trials {
        let shares = crate::shamir::split(rng, &[secret], threshold, count).expect("valid params");
        let leak_parity: u8 = if wrapped {
            let lr = wrap(rng, &shares, LrssParams { source_len: 32 }).expect("valid params");
            // Adversary sees the stored bytes; leak low bit of first
            // stored byte of each share (the masked value).
            lr.iter().map(|s| s.masked[0] & 1).fold(0, |a, b| a ^ b)
        } else {
            shares.iter().map(|s| s.data[0] & 1).fold(0, |a, b| a ^ b)
        };
        parity_counts[leak_parity as usize] += 1;
    }
    let p0 = parity_counts[0] as f64 / trials as f64;
    (p0 - 0.5).abs() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir;
    use aeon_crypto::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(31337)
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let mut r = rng();
        let shares = shamir::split(&mut r, b"leak-resilient secret", 3, 5).unwrap();
        let wrapped = wrap(&mut r, &shares, LrssParams::default()).unwrap();
        let unwrapped = unwrap(&wrapped);
        assert_eq!(unwrapped, shares);
        let rec = shamir::reconstruct(&unwrapped[1..4], 3).unwrap();
        assert_eq!(rec, b"leak-resilient secret");
    }

    #[test]
    fn masked_differs_from_plain() {
        let mut r = rng();
        let shares = shamir::split(&mut r, b"mask me", 2, 3).unwrap();
        let wrapped = wrap(&mut r, &shares, LrssParams::default()).unwrap();
        for (w, s) in wrapped.iter().zip(&shares) {
            assert_ne!(w.masked, s.data);
        }
    }

    #[test]
    fn toeplitz_linear_in_source() {
        // Ext(w1 ^ w2) = Ext(w1) ^ Ext(w2) for fixed seed (GF(2) linearity).
        let seed = vec![0xA5u8; 24];
        let w1 = vec![0x0Fu8; 8];
        let w2 = vec![0xF0u8; 8];
        let w12: Vec<u8> = w1.iter().zip(&w2).map(|(a, b)| a ^ b).collect();
        let e1 = toeplitz_extract(&w1, &seed, 8);
        let e2 = toeplitz_extract(&w2, &seed, 8);
        let e12 = toeplitz_extract(&w12, &seed, 8);
        let xor: Vec<u8> = e1.iter().zip(&e2).map(|(a, b)| a ^ b).collect();
        assert_eq!(e12, xor);
    }

    #[test]
    fn toeplitz_deterministic_and_seed_sensitive() {
        let w = vec![0xFFu8; 16]; // all-ones source: output bit i is the
                                  // parity of a 128-bit window of the seed
        let s1 = vec![0x11u8; 48];
        let mut s2 = s1.clone();
        s2[20] ^= 0x10; // flip one seed bit inside every window
        assert_eq!(toeplitz_extract(&w, &s1, 16), toeplitz_extract(&w, &s1, 16));
        assert_ne!(toeplitz_extract(&w, &s1, 16), toeplitz_extract(&w, &s2, 16));
    }

    #[test]
    #[should_panic(expected = "seed too short")]
    fn short_seed_panics() {
        let _ = toeplitz_extract(&[0u8; 16], &[0u8; 4], 16);
    }

    #[test]
    fn stored_len_and_expansion() {
        let mut r = rng();
        let shares = shamir::split(&mut r, &[0u8; 32], 2, 3).unwrap();
        let params = LrssParams { source_len: 64 };
        let wrapped = wrap(&mut r, &shares, params).unwrap();
        // source 64 + seed (64+32) + masked 32 = 192.
        assert_eq!(wrapped[0].stored_len(), 192);
        assert!((expansion(32, params) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_source_rejected() {
        let mut r = rng();
        let shares = shamir::split(&mut r, b"x", 2, 3).unwrap();
        assert!(wrap(&mut r, &shares, LrssParams { source_len: 0 }).is_err());
    }

    #[test]
    fn leakage_experiment_shape() {
        // n-of-n sharing over GF(2^8): XOR of all shares' low bits equals
        // the secret's low bit exactly when the Lagrange weights are 1 —
        // the degenerate attack. With LRSS wrapping the advantage drops
        // toward 0.
        let mut r = rng();
        // Use t = n (XOR-like worst case for parity leakage).
        let adv_plain_0 = local_leakage_advantage(&mut r, 0x00, 3, 3, false, 300);
        let adv_plain_1 = local_leakage_advantage(&mut r, 0x01, 3, 3, false, 300);
        let adv_wrapped = local_leakage_advantage(&mut r, 0x01, 3, 3, true, 300);
        // The plain parity leak is strongly biased for at least one secret.
        assert!(
            adv_plain_0 > 0.5 || adv_plain_1 > 0.5,
            "expected strong parity bias, got {adv_plain_0} / {adv_plain_1}"
        );
        assert!(
            adv_wrapped < 0.3,
            "wrapped advantage too high: {adv_wrapped}"
        );
    }
}

//! Packed secret sharing over GF(2^16) (Franklin–Yung).
//!
//! Standard Shamir sharing pays `n×` storage because one polynomial hides
//! one secret. Packed sharing hides `k` secrets in a single polynomial of
//! degree `t + k - 1`: the secrets sit at `k` dedicated evaluation points
//! and `t` random values provide the privacy slack. Any `t` shares still
//! reveal nothing, but reconstruction now needs `t + k` shares, and the
//! amortized storage drops from `n×` to `n / k ×` — the middle point of
//! the paper's Figure 1 trade-off, between erasure coding and full secret
//! sharing.
//!
//! GF(2^16) supplies the 65 536 evaluation points needed to keep the
//! secret slots disjoint from up to ~65 000 share indices.

use crate::ShareError;
use aeon_crypto::CryptoRng;
use aeon_gf::poly::{interpolate, lagrange_eval};
use aeon_gf::slice::gf16_mul_add_rows;
use aeon_gf::Gf16;

/// A packed share: one evaluation of the packed polynomial per symbol
/// column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedShare {
    /// 1-based share index; the evaluation point is `x = index`.
    pub index: u16,
    /// Evaluations, one GF(2^16) symbol per column.
    pub data: Vec<u16>,
}

/// Parameters of a packed sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedParams {
    /// Privacy threshold: any `t` shares are independent of the secrets.
    pub privacy: usize,
    /// Number of secrets packed per polynomial.
    pub pack: usize,
    /// Number of shares issued.
    pub shares: usize,
}

impl PackedParams {
    /// Creates parameters, validating the algebraic constraints.
    ///
    /// # Errors
    ///
    /// Returns [`ShareError::InvalidParameters`] unless
    /// `privacy ≥ 1`, `pack ≥ 1`, and `privacy + pack ≤ shares` (needed to
    /// reconstruct), with secret points and share points fitting in
    /// GF(2^16).
    pub fn new(privacy: usize, pack: usize, shares: usize) -> Result<Self, ShareError> {
        if privacy == 0 || pack == 0 {
            return Err(ShareError::InvalidParameters {
                threshold: privacy,
                shares,
                reason: "privacy threshold and pack width must be at least 1",
            });
        }
        if privacy + pack > shares {
            return Err(ShareError::InvalidParameters {
                threshold: privacy,
                shares,
                reason: "need at least privacy + pack shares to reconstruct",
            });
        }
        if shares + pack >= 65_536 {
            return Err(ShareError::InvalidParameters {
                threshold: privacy,
                shares,
                reason: "share and secret points exceed GF(2^16)",
            });
        }
        Ok(PackedParams {
            privacy,
            pack,
            shares,
        })
    }

    /// Shares required for reconstruction.
    pub fn reconstruct_threshold(&self) -> usize {
        self.privacy + self.pack
    }

    /// Amortized storage expansion per secret: `shares / pack`.
    pub fn expansion(&self) -> f64 {
        self.shares as f64 / self.pack as f64
    }

    /// The evaluation point hiding secret slot `j` (0-based): points are
    /// taken from the top of the field, disjoint from share indices.
    fn secret_point(&self, j: usize) -> Gf16 {
        Gf16::new((65_535 - j) as u16)
    }
}

/// Splits `secrets` (exactly `params.pack` symbol columns wide per
/// polynomial batch) into packed shares. The secret slice is interpreted
/// as big-endian u16 symbols; odd-length inputs are zero-padded.
///
/// # Errors
///
/// Returns [`ShareError::InvalidParameters`] via [`PackedParams::new`]
/// validation failures (already checked) — this function itself only
/// errors if `secrets` is empty when `pack > 0` is required; empty input
/// produces empty shares.
pub fn split<R: CryptoRng + ?Sized>(
    rng: &mut R,
    params: PackedParams,
    secrets: &[u8],
) -> Result<Vec<PackedShare>, ShareError> {
    // Convert bytes to GF(2^16) symbols (big-endian pairs, zero-padded).
    let symbols: Vec<Gf16> = secrets
        .chunks(2)
        .map(|c| {
            let hi = c[0] as u16;
            let lo = *c.get(1).unwrap_or(&0) as u16;
            Gf16::new(hi << 8 | lo)
        })
        .collect();
    // Group symbols into rows of `pack` (zero-padded tail).
    let rows = symbols.len().div_ceil(params.pack).max(1);
    let mut shares: Vec<PackedShare> = (1..=params.shares as u16)
        .map(|i| PackedShare {
            index: i,
            data: Vec::with_capacity(rows),
        })
        .collect();

    // Interpolate every row's polynomial first, then evaluate all rows
    // at each share point in one column-wise Horner sweep: the per-share
    // product table is built once and streams over a whole coefficient
    // column instead of re-deriving logs symbol by symbol.
    let degree_bound = params.pack + params.privacy; // coefficient count
    let mut coeff_cols: Vec<Vec<u16>> = vec![vec![0u16; rows]; degree_bound];
    // `row` indexes the transposed (inner) axis of `coeff_cols`, so the
    // enumerate() rewrite clippy suggests does not apply.
    #[allow(clippy::needless_range_loop)]
    for row in 0..rows {
        // Interpolation constraints: k secret slots + t random anchors.
        let mut points: Vec<(Gf16, Gf16)> = Vec::with_capacity(params.pack + params.privacy);
        for j in 0..params.pack {
            let s = symbols
                .get(row * params.pack + j)
                .copied()
                .unwrap_or(Gf16::ZERO);
            points.push((params.secret_point(j), s));
        }
        // Random anchors at dedicated points below the secret block.
        for j in 0..params.privacy {
            let x = Gf16::new((65_535 - params.pack - j) as u16);
            let y = Gf16::new((rng.next_u64() & 0xFFFF) as u16);
            points.push((x, y));
        }
        let poly = interpolate(&points)
            .map_err(|_| ShareError::ProtocolViolation("interpolation failed"))?;
        for (k, &c) in poly.coeffs().iter().enumerate() {
            coeff_cols[k][row] = c.value();
        }
    }
    // share(x) = Σ_k x^k · c_k, vectorized over rows: one fused pass in
    // which every coefficient column accumulates into each cache-sized
    // strip of the share while it is hot (same field values as the old
    // Horner sweep — GF arithmetic is exact).
    for share in shares.iter_mut() {
        let x = Gf16::new(share.index);
        let mut acc = coeff_cols[0].clone();
        let mut power_rows: Vec<(Gf16, &[u16])> = Vec::with_capacity(degree_bound - 1);
        let mut x_pow = x;
        for col in &coeff_cols[1..] {
            power_rows.push((x_pow, col.as_slice()));
            x_pow *= x;
        }
        gf16_mul_add_rows(&mut acc, &power_rows);
        share.data.extend_from_slice(&acc);
    }
    Ok(shares)
}

/// Reconstructs the packed secrets from at least `privacy + pack` shares.
/// Returns the secrets as bytes (length `2 * pack * rows`, including any
/// zero padding introduced at split; the caller tracks true length).
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] or
/// [`ShareError::InconsistentShares`].
pub fn reconstruct(params: PackedParams, shares: &[PackedShare]) -> Result<Vec<u8>, ShareError> {
    let need = params.reconstruct_threshold();
    if shares.len() < need {
        return Err(ShareError::TooFewShares {
            provided: shares.len(),
            required: need,
        });
    }
    let subset = &shares[..need];
    let rows = subset[0].data.len();
    if subset.iter().any(|s| s.data.len() != rows) {
        return Err(ShareError::InconsistentShares("ragged share lengths"));
    }
    let mut seen = std::collections::HashSet::new();
    for s in subset {
        if s.index == 0 || !seen.insert(s.index) {
            return Err(ShareError::InconsistentShares(
                "duplicate or reserved share index",
            ));
        }
    }
    let mut out = Vec::with_capacity(rows * params.pack * 2);
    for row in 0..rows {
        let pts: Vec<(Gf16, Gf16)> = subset
            .iter()
            .map(|s| (Gf16::new(s.index), Gf16::new(s.data[row])))
            .collect();
        for j in 0..params.pack {
            let v = lagrange_eval(&pts, params.secret_point(j))
                .map_err(|_| ShareError::InconsistentShares("duplicate share index"))?;
            out.extend_from_slice(&v.value().to_be_bytes());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(11)
    }

    #[test]
    fn roundtrip_exact() {
        let params = PackedParams::new(2, 4, 10).unwrap();
        let mut r = rng();
        let secret = b"0123456789abcdef"; // 8 symbols = 2 rows of 4
        let shares = split(&mut r, params, secret).unwrap();
        assert_eq!(shares.len(), 10);
        let rec = reconstruct(params, &shares[..6]).unwrap();
        assert_eq!(&rec[..16], secret);
    }

    #[test]
    fn any_reconstruction_subset_works() {
        let params = PackedParams::new(2, 2, 8).unwrap();
        let mut r = rng();
        let secret = b"pack";
        let shares = split(&mut r, params, secret).unwrap();
        for start in 0..4 {
            let subset: Vec<PackedShare> = shares[start..start + 4].to_vec();
            let rec = reconstruct(params, &subset).unwrap();
            assert_eq!(&rec[..4], secret, "subset start {start}");
        }
    }

    #[test]
    fn below_reconstruct_threshold_fails() {
        let params = PackedParams::new(3, 2, 8).unwrap();
        let mut r = rng();
        let shares = split(&mut r, params, b"hi").unwrap();
        assert!(matches!(
            reconstruct(params, &shares[..4]),
            Err(ShareError::TooFewShares { .. })
        ));
    }

    #[test]
    fn privacy_statistical_check() {
        // t shares of the SAME secrets over fresh randomness should vary:
        // a single share symbol takes many values.
        let params = PackedParams::new(2, 2, 6).unwrap();
        let mut values = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let mut r = ChaChaDrbg::from_u64_seed(seed);
            let shares = split(&mut r, params, b"same secret data").unwrap();
            values.insert(shares[0].data[0]);
        }
        assert!(values.len() > 48, "share values too deterministic");
    }

    #[test]
    fn expansion_is_n_over_k() {
        let params = PackedParams::new(2, 4, 12).unwrap();
        assert!((params.expansion() - 3.0).abs() < 1e-9);
        // Compare: plain Shamir with same n would be 12x.
    }

    #[test]
    fn parameter_validation() {
        assert!(PackedParams::new(0, 2, 5).is_err());
        assert!(PackedParams::new(2, 0, 5).is_err());
        assert!(PackedParams::new(3, 3, 5).is_err()); // 3+3 > 5
        assert!(PackedParams::new(3, 2, 5).is_ok());
        assert!(PackedParams::new(2, 40_000, 40_000).is_err());
    }

    #[test]
    fn odd_length_secret_padded() {
        let params = PackedParams::new(1, 2, 4).unwrap();
        let mut r = rng();
        let shares = split(&mut r, params, b"abc").unwrap();
        let rec = reconstruct(params, &shares[..3]).unwrap();
        assert_eq!(&rec[..3], b"abc");
        assert_eq!(rec[3], 0); // padding
    }

    #[test]
    fn empty_secret() {
        let params = PackedParams::new(1, 2, 4).unwrap();
        let mut r = rng();
        let shares = split(&mut r, params, b"").unwrap();
        let rec = reconstruct(params, &shares[..3]).unwrap();
        // One zero row of padding.
        assert!(rec.iter().all(|&b| b == 0));
    }

    #[test]
    fn duplicate_index_rejected() {
        let params = PackedParams::new(1, 1, 3).unwrap();
        let mut r = rng();
        let shares = split(&mut r, params, b"xy").unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(matches!(
            reconstruct(params, &dup),
            Err(ShareError::InconsistentShares(_))
        ));
    }

    #[test]
    fn large_pack_width_efficiency() {
        // 8 secrets per polynomial, 3 privacy, 16 shares: 2x expansion for
        // ITS privacy against 3 colluders.
        let params = PackedParams::new(3, 8, 16).unwrap();
        let mut r = rng();
        let secret: Vec<u8> = (0..64u8).collect();
        let shares = split(&mut r, params, &secret).unwrap();
        let stored: usize = shares.iter().map(|s| s.data.len() * 2).sum();
        let rows = (64usize / 2).div_ceil(8); // 32 symbols in rows of 8
        assert_eq!(stored, 16 * rows * 2);
        // Amortized expansion: 128 stored bytes / 64 secret bytes = 2x.
        assert_eq!(stored / 64, 2);
        let rec = reconstruct(params, &shares[..11]).unwrap();
        assert_eq!(&rec[..64], &secret[..]);
    }
}

//! Secret sharing for long-term confidentiality.
//!
//! Secret sharing is the only family of data encodings in the paper's
//! survey that provides *information-theoretic* confidentiality at rest:
//! fewer than `t` shares reveal nothing about the data, no matter how much
//! computation a future adversary wields. This crate implements the whole
//! ladder the paper climbs:
//!
//! * [`shamir`] — Shamir's `t`-of-`n` scheme over GF(2^8), byte-parallel
//!   (the POTSHARDS encoding).
//! * [`packed`] — packed secret sharing over GF(2^16): one polynomial hides
//!   `k` secrets, trading a weaker threshold for `k`× less storage (the
//!   "packed secret sharing" point of Figure 1).
//! * [`xor`] — `n`-of-`n` additive sharing, the cheapest special case.
//! * [`vss`] — Feldman and Pedersen *verifiable* secret sharing over the
//!   MODP group for key-sized secrets; Pedersen's variant keeps the
//!   commitments information-theoretically hiding (the LINCOS
//!   requirement).
//! * [`proactive`] — Herzberg-style share refresh and Wong-style verifiable
//!   share redistribution, the defense against the mobile adversary.
//! * [`vss_proactive`] — *verifiable* refresh for VSS scalar shares:
//!   zero-rooted delta dealings checked against their commitments, so a
//!   corrupt shareholder cannot destroy the secret during renewal.
//! * [`lrss`] — a leakage-resilient compiler wrapping any Shamir share
//!   behind an inner-product extractor, addressing the §4 research
//!   direction on side-channel leakage.
//!
//! # Examples
//!
//! ```
//! use aeon_secretshare::shamir;
//! use aeon_crypto::ChaChaDrbg;
//!
//! let mut rng = ChaChaDrbg::from_u64_seed(42);
//! let shares = shamir::split(&mut rng, b"the archive key", 3, 5)?;
//! let secret = shamir::reconstruct(&shares[1..4], 3)?;
//! assert_eq!(secret, b"the archive key");
//! # Ok::<(), aeon_secretshare::ShareError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod lrss;
pub mod packed;
pub mod proactive;
pub mod shamir;
pub mod vss;
pub mod vss_proactive;
pub mod xor;

/// Errors from secret-sharing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShareError {
    /// Threshold/share-count parameters are invalid.
    InvalidParameters {
        /// The threshold requested.
        threshold: usize,
        /// The share count requested.
        shares: usize,
        /// Why the parameters are invalid.
        reason: &'static str,
    },
    /// Fewer shares than the threshold were provided.
    TooFewShares {
        /// Shares provided.
        provided: usize,
        /// Shares required.
        required: usize,
    },
    /// Shares have inconsistent lengths or indices.
    InconsistentShares(&'static str),
    /// A share failed verification against its commitments.
    VerificationFailed {
        /// Index of the offending share.
        index: u64,
    },
    /// Refresh/redistribution sub-protocol failure.
    ProtocolViolation(&'static str),
}

impl core::fmt::Display for ShareError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShareError::InvalidParameters {
                threshold,
                shares,
                reason,
            } => write!(
                f,
                "invalid sharing parameters (t={threshold}, n={shares}): {reason}"
            ),
            ShareError::TooFewShares { provided, required } => {
                write!(
                    f,
                    "too few shares: {provided} provided, {required} required"
                )
            }
            ShareError::InconsistentShares(why) => write!(f, "inconsistent shares: {why}"),
            ShareError::VerificationFailed { index } => {
                write!(f, "share {index} failed verification")
            }
            ShareError::ProtocolViolation(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ShareError {}

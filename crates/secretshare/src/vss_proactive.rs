//! Verifiable proactive refresh for VSS scalar shares.
//!
//! §3.3 of the paper: "a corrupt shareholder that distributes invalid new
//! shares can compromise the integrity of the secret. Verifiable secret
//! sharing protects against this threat, and is often included by default
//! as a sub-protocol of proactive secret sharing."
//!
//! This module is that sub-protocol. Each refresh round, every
//! shareholder deals a *zero-rooted* delta polynomial with public
//! commitments; receivers check two things before applying a delta:
//!
//! 1. **Zero-rootedness** — the constant-term commitment must open to
//!    zero (`g^0` for Feldman; `g^0 h^{b_0}` for Pedersen, with `b_0`
//!    broadcast), or the delta would *change the secret*.
//! 2. **Share consistency** — the received delta share must match the
//!    committed polynomial at the receiver's index, or the dealer is
//!    corrupting reconstruction.
//!
//! Deltas failing either check are rejected and attributed; honest
//! shareholders apply only verified deltas, so a corrupt minority cannot
//! destroy the secret — it can at worst refuse to contribute randomness.

use crate::vss::{self, ScalarField, VssDealing, VssKind, VssShare};
use crate::ShareError;
use aeon_crypto::CryptoRng;
use aeon_num::pedersen::Committer;
use aeon_num::U2048;

/// One shareholder's refresh contribution: a zero-rooted dealing.
#[derive(Debug, Clone)]
pub struct RefreshDelta {
    /// The dealer's shareholder index (for attribution).
    pub dealer: u64,
    /// The zero-rooted dealing (commitments + delta shares).
    pub dealing: VssDealing,
    /// Pedersen only: the broadcast blinding of the constant term, proving
    /// the constant term is zero.
    pub zero_blinding: Option<U2048>,
}

/// Outcome of a verifiable refresh round.
#[derive(Debug, Clone)]
pub struct VerifiedRefresh {
    /// The refreshed shares (same indices, new values).
    pub shares: Vec<VssShare>,
    /// Dealers whose deltas were rejected, with the reason.
    pub rejected: Vec<(u64, &'static str)>,
}

/// Deals a zero-rooted delta for a refresh round.
///
/// # Errors
///
/// Propagates [`vss::deal`] parameter validation.
pub fn deal_zero_delta<R: CryptoRng + ?Sized>(
    rng: &mut R,
    committer: &Committer,
    kind: VssKind,
    dealer: u64,
    threshold: usize,
    shares: usize,
) -> Result<RefreshDelta, ShareError> {
    let dealing = vss::deal(rng, committer, kind, &U2048::ZERO, threshold, shares)?;
    // For Pedersen, the dealer broadcasts b_0 so everyone can check
    // C_0 = g^0 h^{b_0}: we recover b_0 as the blinding polynomial's
    // constant term, which equals b(0). We can interpolate it from the
    // shares' blind values — but the dealer simply knows it; model that by
    // interpolating here (the dealer's own view).
    let zero_blinding = match kind {
        VssKind::Pedersen => {
            let field = ScalarField::new(committer.group());
            // Lagrange-interpolate b(0) from the first `threshold` blinds.
            let mut acc = U2048::ZERO;
            let subset = &dealing.shares[..threshold];
            for (i, si) in subset.iter().enumerate() {
                let mut num = U2048::one();
                let mut den = U2048::one();
                let xi = U2048::from_u64(si.index);
                for (j, sj) in subset.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let xj = U2048::from_u64(sj.index);
                    num = field.mul(&num, &xj);
                    den = field.mul(&den, &field.sub(&xj, &xi));
                }
                let lambda = field.mul(&num, &field.invert(&den));
                acc = field.add(&acc, &field.mul(&lambda, &si.blind));
            }
            Some(acc)
        }
        VssKind::Feldman => None,
    };
    Ok(RefreshDelta {
        dealer,
        dealing,
        zero_blinding,
    })
}

/// Verifies that a delta is zero-rooted (cannot change the secret).
pub fn verify_zero_rooted(committer: &Committer, delta: &RefreshDelta) -> bool {
    let Some(c0) = delta.dealing.commitments.first() else {
        return false;
    };
    match delta.dealing.kind {
        VssKind::Feldman => {
            // C_0 must be g^0 = 1.
            let identity = committer.group().exp_generator(&[0]);
            c0.0 == identity
        }
        VssKind::Pedersen => {
            let Some(b0) = &delta.zero_blinding else {
                return false;
            };
            // C_0 must equal g^0 h^{b0} = h^{b0}.
            let expect = committer.commit_scalars(&U2048::ZERO, b0);
            *c0 == expect
        }
    }
}

/// Applies a set of refresh deltas to shares, verifying each delta's
/// zero-rootedness and per-share consistency. Invalid deltas are rejected
/// (and reported), not applied.
///
/// # Errors
///
/// Returns [`ShareError::InconsistentShares`] if delta share counts do
/// not line up with the share vector.
pub fn apply_verified_refresh(
    committer: &Committer,
    shares: &[VssShare],
    deltas: &[RefreshDelta],
) -> Result<VerifiedRefresh, ShareError> {
    let field = ScalarField::new(committer.group());
    let mut out: Vec<VssShare> = shares.to_vec();
    let mut rejected = Vec::new();
    for delta in deltas {
        if delta.dealing.shares.len() != shares.len() {
            return Err(ShareError::InconsistentShares("delta share count mismatch"));
        }
        if !verify_zero_rooted(committer, delta) {
            rejected.push((delta.dealer, "not zero-rooted"));
            continue;
        }
        // Every shareholder checks its own delta share against the
        // commitments.
        let all_consistent = delta.dealing.shares.iter().all(|ds| {
            vss::verify_share(
                committer,
                delta.dealing.kind,
                &delta.dealing.commitments,
                ds,
            )
        });
        if !all_consistent {
            rejected.push((delta.dealer, "inconsistent delta share"));
            continue;
        }
        for (share, ds) in out.iter_mut().zip(&delta.dealing.shares) {
            debug_assert_eq!(share.index, ds.index);
            share.value = field.add(&share.value, &ds.value);
            share.blind = field.add(&share.blind, &ds.blind);
        }
    }
    Ok(VerifiedRefresh {
        shares: out,
        rejected,
    })
}

/// Runs a full verifiable refresh round: every shareholder deals a
/// zero-delta; all are verified and applied.
///
/// # Errors
///
/// Propagates dealing and application errors.
pub fn verifiable_refresh_round<R: CryptoRng + ?Sized>(
    rng: &mut R,
    committer: &Committer,
    kind: VssKind,
    shares: &[VssShare],
    threshold: usize,
) -> Result<VerifiedRefresh, ShareError> {
    let mut deltas = Vec::with_capacity(shares.len());
    for s in shares {
        deltas.push(deal_zero_delta(
            rng,
            committer,
            kind,
            s.index,
            threshold,
            shares.len(),
        )?);
    }
    apply_verified_refresh(committer, shares, &deltas)
}

/// Corrupts a delta for adversary simulations: makes the dealing hide a
/// *nonzero* constant (which would shift the secret by `shift` if
/// applied). Verification must catch this.
pub fn corrupt_delta_for_simulation<R: CryptoRng + ?Sized>(
    rng: &mut R,
    committer: &Committer,
    kind: VssKind,
    dealer: u64,
    shift: u64,
    threshold: usize,
    shares: usize,
) -> RefreshDelta {
    let dealing = vss::deal(
        rng,
        committer,
        kind,
        &U2048::from_u64(shift),
        threshold,
        shares,
    )
    .expect("valid parameters");
    // The corrupt dealer lies about the zero blinding: it broadcasts the
    // true b(0), but the commitment opens to `shift`, not zero.
    let zero_blinding = match kind {
        VssKind::Pedersen => Some(U2048::from_u64(12345)), // arbitrary lie
        VssKind::Feldman => None,
    };
    RefreshDelta {
        dealer,
        dealing,
        zero_blinding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;
    use aeon_num::ModpGroup;

    fn setup() -> (Committer, ChaChaDrbg) {
        (
            Committer::new(ModpGroup::rfc3526_2048()),
            ChaChaDrbg::from_u64_seed(515),
        )
    }

    #[test]
    fn feldman_verifiable_refresh_preserves_secret() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(0xC0FFEE);
        let dealing = vss::deal(&mut rng, &committer, VssKind::Feldman, &secret, 2, 3).unwrap();
        let refreshed =
            verifiable_refresh_round(&mut rng, &committer, VssKind::Feldman, &dealing.shares, 2)
                .unwrap();
        assert!(refreshed.rejected.is_empty());
        // Shares changed...
        assert_ne!(refreshed.shares[0].value, dealing.shares[0].value);
        // ...secret did not.
        let rec = vss::reconstruct(committer.group(), &refreshed.shares[..2], 2).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn pedersen_verifiable_refresh_preserves_secret() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(777);
        let dealing = vss::deal(&mut rng, &committer, VssKind::Pedersen, &secret, 2, 3).unwrap();
        let refreshed =
            verifiable_refresh_round(&mut rng, &committer, VssKind::Pedersen, &dealing.shares, 2)
                .unwrap();
        assert!(refreshed.rejected.is_empty());
        let rec = vss::reconstruct(committer.group(), &refreshed.shares[1..3], 2).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn corrupt_delta_rejected_and_secret_unharmed() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(42);
        let dealing = vss::deal(&mut rng, &committer, VssKind::Feldman, &secret, 2, 3).unwrap();

        // Two honest deltas, one corrupt (would shift the secret by 999).
        let d1 = deal_zero_delta(&mut rng, &committer, VssKind::Feldman, 1, 2, 3).unwrap();
        let d2 = deal_zero_delta(&mut rng, &committer, VssKind::Feldman, 2, 2, 3).unwrap();
        let bad =
            corrupt_delta_for_simulation(&mut rng, &committer, VssKind::Feldman, 3, 999, 2, 3);
        let refreshed =
            apply_verified_refresh(&committer, &dealing.shares, &[d1, d2, bad]).unwrap();
        assert_eq!(refreshed.rejected, vec![(3, "not zero-rooted")]);
        let rec = vss::reconstruct(committer.group(), &refreshed.shares[..2], 2).unwrap();
        assert_eq!(rec, secret, "corrupt delta must not shift the secret");
    }

    #[test]
    fn corrupt_pedersen_delta_rejected() {
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(7);
        let dealing = vss::deal(&mut rng, &committer, VssKind::Pedersen, &secret, 2, 3).unwrap();
        let bad = corrupt_delta_for_simulation(&mut rng, &committer, VssKind::Pedersen, 1, 5, 2, 3);
        let refreshed = apply_verified_refresh(&committer, &dealing.shares, &[bad]).unwrap();
        assert_eq!(refreshed.rejected.len(), 1);
        let rec = vss::reconstruct(committer.group(), &refreshed.shares[..2], 2).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn unapplied_refresh_without_deltas_is_identity() {
        let (committer, mut rng) = setup();
        let dealing = vss::deal(
            &mut rng,
            &committer,
            VssKind::Feldman,
            &U2048::from_u64(1),
            2,
            3,
        )
        .unwrap();
        let refreshed = apply_verified_refresh(&committer, &dealing.shares, &[]).unwrap();
        assert_eq!(refreshed.shares, dealing.shares);
    }

    #[test]
    fn stale_shares_dead_after_verified_refresh() {
        // The mobile-adversary property, now with verification: old
        // shares + new shares do not mix.
        let (committer, mut rng) = setup();
        let secret = U2048::from_u64(31337);
        let dealing = vss::deal(&mut rng, &committer, VssKind::Feldman, &secret, 2, 3).unwrap();
        let stolen_old = dealing.shares[0].clone();
        let refreshed =
            verifiable_refresh_round(&mut rng, &committer, VssKind::Feldman, &dealing.shares, 2)
                .unwrap();
        let mix = vec![stolen_old, refreshed.shares[1].clone()];
        let rec = vss::reconstruct(committer.group(), &mix, 2).unwrap();
        assert_ne!(rec, secret);
    }
}

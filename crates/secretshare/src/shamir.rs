//! Shamir's `t`-of-`n` secret sharing over GF(2^8), byte-parallel.
//!
//! Each byte of the secret is the constant term of an independent random
//! polynomial of degree `t - 1`; share `i` holds the evaluations of all
//! polynomials at `x = i`. Equivalently (McEliece–Sarwate), this is a
//! non-systematic `[n, t]` Reed–Solomon code over `(secret, r_1, …,
//! r_{t-1})` — which is why any `t` shares reconstruct and any `t - 1`
//! shares are statistically independent of the secret.

use crate::ShareError;
use aeon_crypto::CryptoRng;
use aeon_gf::poly::lagrange_coefficients;
use aeon_gf::slice;
use aeon_gf::Gf256;

/// One Shamir share: an evaluation point and the per-byte evaluations.
///
/// The share is exactly as long as the secret — the storage price of
/// perfect secrecy, provably unavoidable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Share {
    /// The evaluation point `x` (1-based; 0 would expose the secret).
    pub index: u8,
    /// Evaluations of the per-byte polynomials at `x = index`.
    pub data: Vec<u8>,
}

impl Share {
    /// Length of the share payload in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the share payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

fn validate(threshold: usize, shares: usize) -> Result<(), ShareError> {
    if threshold == 0 {
        return Err(ShareError::InvalidParameters {
            threshold,
            shares,
            reason: "threshold must be at least 1",
        });
    }
    if threshold > shares {
        return Err(ShareError::InvalidParameters {
            threshold,
            shares,
            reason: "threshold cannot exceed share count",
        });
    }
    if shares > 255 {
        return Err(ShareError::InvalidParameters {
            threshold,
            shares,
            reason: "GF(256) supports at most 255 shares",
        });
    }
    Ok(())
}

/// Splits `secret` into `n` shares, any `t` of which reconstruct it.
///
/// # Errors
///
/// Returns [`ShareError::InvalidParameters`] for `t == 0`, `t > n`, or
/// `n > 255`.
///
/// # Examples
///
/// ```
/// use aeon_secretshare::shamir;
/// use aeon_crypto::ChaChaDrbg;
///
/// let mut rng = ChaChaDrbg::from_u64_seed(1);
/// let shares = shamir::split(&mut rng, b"secret", 2, 3)?;
/// assert_eq!(shares.len(), 3);
/// assert_eq!(shares[0].len(), 6); // share size == secret size
/// # Ok::<(), aeon_secretshare::ShareError>(())
/// ```
pub fn split<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: &[u8],
    threshold: usize,
    shares: usize,
) -> Result<Vec<Share>, ShareError> {
    validate(threshold, shares)?;
    // coefficients[j] is the byte vector of coefficient j+1 (degree-wise)
    // for all byte positions at once.
    let mut coefficients: Vec<Vec<u8>> = Vec::with_capacity(threshold - 1);
    for _ in 0..threshold - 1 {
        let mut c = vec![0u8; secret.len()];
        rng.fill_bytes(&mut c);
        coefficients.push(c);
    }
    let mut out = Vec::with_capacity(shares);
    for i in 1..=shares as u8 {
        let x = Gf256::new(i);
        // share = secret + c_1 x + c_2 x^2 + ... — one fused row pass:
        // every coefficient vector accumulates into each cache-sized
        // strip of the share while the strip is hot.
        let mut data = secret.to_vec();
        let mut rows: Vec<(Gf256, &[u8])> = Vec::with_capacity(coefficients.len());
        let mut x_pow = x;
        for c in &coefficients {
            rows.push((x_pow, c.as_slice()));
            x_pow *= x;
        }
        slice::mul_add_rows(&mut data, &rows);
        out.push(Share { index: i, data });
    }
    Ok(out)
}

/// Reconstructs the secret from at least `threshold` shares.
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] with fewer than `threshold`
/// shares, and [`ShareError::InconsistentShares`] for ragged lengths or
/// duplicate indices.
pub fn reconstruct(shares: &[Share], threshold: usize) -> Result<Vec<u8>, ShareError> {
    reconstruct_at(shares, threshold, Gf256::ZERO)
}

/// Evaluates the hidden polynomial at an arbitrary point `x0` from at
/// least `threshold` shares. `x0 = 0` recovers the secret; other points
/// let redistribution protocols derive new shares without reconstructing.
///
/// # Errors
///
/// Same conditions as [`reconstruct`].
pub fn reconstruct_at(
    shares: &[Share],
    threshold: usize,
    x0: Gf256,
) -> Result<Vec<u8>, ShareError> {
    if shares.len() < threshold {
        return Err(ShareError::TooFewShares {
            provided: shares.len(),
            required: threshold,
        });
    }
    let subset = &shares[..threshold];
    let len = subset[0].data.len();
    if subset.iter().any(|s| s.data.len() != len) {
        return Err(ShareError::InconsistentShares("ragged share lengths"));
    }
    let mut seen = [false; 256];
    for s in subset {
        if s.index == 0 {
            return Err(ShareError::InconsistentShares("share index 0 is reserved"));
        }
        if seen[s.index as usize] {
            return Err(ShareError::InconsistentShares("duplicate share index"));
        }
        seen[s.index as usize] = true;
    }
    let xs: Vec<Gf256> = subset.iter().map(|s| Gf256::new(s.index)).collect();
    let lambda = lagrange_coefficients(&xs, x0)
        .map_err(|_| ShareError::InconsistentShares("duplicate share index"))?;
    // Fused Lagrange combination: out = Σ λ_i · share_i in one pass.
    let rows: Vec<(Gf256, &[u8])> = lambda
        .iter()
        .zip(subset)
        .map(|(coeff, share)| (*coeff, share.data.as_slice()))
        .collect();
    let mut out = vec![0u8; len];
    slice::mul_add_rows(&mut out, &rows);
    Ok(out)
}

/// Storage expansion of `t`-of-`n` Shamir sharing: every share is as large
/// as the secret, so the total stored is `n×`.
pub fn expansion(shares: usize) -> f64 {
    shares as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(7)
    }

    #[test]
    fn roundtrip_exact_threshold() {
        let mut r = rng();
        let shares = split(&mut r, b"attack at dawn", 3, 5).unwrap();
        let rec = reconstruct(&shares[..3], 3).unwrap();
        assert_eq!(rec, b"attack at dawn");
    }

    #[test]
    fn any_subset_reconstructs() {
        let mut r = rng();
        let secret: Vec<u8> = (0..50u8).collect();
        let shares = split(&mut r, &secret, 3, 6).unwrap();
        // All 20 3-subsets.
        for a in 0..6 {
            for b in a + 1..6 {
                for c in b + 1..6 {
                    let subset = vec![shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(reconstruct(&subset, 3).unwrap(), secret, "{a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn below_threshold_fails() {
        let mut r = rng();
        let shares = split(&mut r, b"secret", 4, 5).unwrap();
        assert_eq!(
            reconstruct(&shares[..3], 4).unwrap_err(),
            ShareError::TooFewShares {
                provided: 3,
                required: 4
            }
        );
    }

    #[test]
    fn wrong_subset_gives_wrong_secret_not_panic() {
        // Mixing shares from two different sharings yields garbage, not a
        // crash — integrity must come from a separate layer.
        let mut r = rng();
        let s1 = split(&mut r, b"secret-one", 2, 3).unwrap();
        let s2 = split(&mut r, b"secret-two", 2, 3).unwrap();
        let mixed = vec![s1[0].clone(), s2[1].clone()];
        let rec = reconstruct(&mixed, 2).unwrap();
        assert_ne!(rec, b"secret-one");
        assert_ne!(rec, b"secret-two");
    }

    #[test]
    fn single_share_t1_is_plaintext_copy() {
        // t = 1 means the polynomial is constant: every share IS the secret.
        let mut r = rng();
        let shares = split(&mut r, b"no secrecy", 1, 3).unwrap();
        for s in &shares {
            assert_eq!(s.data, b"no secrecy");
        }
    }

    #[test]
    fn t_minus_1_shares_are_random_looking() {
        // Statistical check of perfect secrecy: for a 1-byte secret shared
        // 2-of-3, a single share's value should be uniform over repeated
        // sharings of the SAME secret.
        let mut counts = [0u32; 256];
        for seed in 0..2048u64 {
            let mut r = ChaChaDrbg::from_u64_seed(seed);
            let shares = split(&mut r, &[0x42], 2, 3).unwrap();
            counts[shares[0].data[0] as usize] += 1;
        }
        // Every value should appear at least once and no value should
        // dominate (mean 8, generous bounds).
        let max = *counts.iter().max().unwrap();
        assert!(max < 40, "share value distribution too peaked: {max}");
    }

    #[test]
    fn invalid_parameters() {
        let mut r = rng();
        assert!(split(&mut r, b"s", 0, 3).is_err());
        assert!(split(&mut r, b"s", 4, 3).is_err());
        assert!(split(&mut r, b"s", 2, 256).is_err());
        assert!(split(&mut r, b"s", 255, 255).is_ok());
    }

    #[test]
    fn duplicate_and_zero_indices_rejected() {
        let mut r = rng();
        let shares = split(&mut r, b"secret", 2, 3).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(matches!(
            reconstruct(&dup, 2),
            Err(ShareError::InconsistentShares(_))
        ));
        let mut zero = shares[0].clone();
        zero.index = 0;
        assert!(matches!(
            reconstruct(&[zero, shares[1].clone()], 2),
            Err(ShareError::InconsistentShares(_))
        ));
    }

    #[test]
    fn ragged_lengths_rejected() {
        let mut r = rng();
        let mut shares = split(&mut r, b"secret", 2, 3).unwrap();
        shares[1].data.pop();
        assert!(matches!(
            reconstruct(&shares[..2], 2),
            Err(ShareError::InconsistentShares(_))
        ));
    }

    #[test]
    fn empty_secret() {
        let mut r = rng();
        let shares = split(&mut r, b"", 2, 3).unwrap();
        assert_eq!(reconstruct(&shares[..2], 2).unwrap(), b"");
    }

    #[test]
    fn reconstruct_at_other_points() {
        // reconstruct_at(x=i) should equal share i's data.
        let mut r = rng();
        let shares = split(&mut r, b"polynomial", 3, 5).unwrap();
        let at4 = reconstruct_at(&shares[..3], 3, Gf256::new(4)).unwrap();
        assert_eq!(at4, shares[3].data);
    }

    #[test]
    fn large_secret_roundtrip() {
        let mut r = rng();
        let secret: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
        let shares = split(&mut r, &secret, 5, 8).unwrap();
        assert_eq!(reconstruct(&shares[2..7], 5).unwrap(), secret);
    }
}

//! `n`-of-`n` additive (XOR) secret sharing.
//!
//! The degenerate but useful corner of the sharing design space: `n - 1`
//! shares are uniformly random pads and the last share XORs them with the
//! secret. All `n` shares are required to reconstruct; any `n - 1` reveal
//! nothing. It is the cheapest information-theoretic split (no field
//! arithmetic) and the building block of the AONT difference layer and of
//! proactive zero-sharings.

use crate::ShareError;
use aeon_crypto::CryptoRng;

/// Splits `secret` into `n` XOR shares, all required for reconstruction.
///
/// # Errors
///
/// Returns [`ShareError::InvalidParameters`] if `n == 0`.
///
/// # Examples
///
/// ```
/// use aeon_secretshare::xor;
/// use aeon_crypto::ChaChaDrbg;
///
/// let mut rng = ChaChaDrbg::from_u64_seed(3);
/// let shares = xor::split(&mut rng, b"pad me", 4)?;
/// assert_eq!(xor::reconstruct(&shares)?, b"pad me");
/// # Ok::<(), aeon_secretshare::ShareError>(())
/// ```
pub fn split<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: &[u8],
    n: usize,
) -> Result<Vec<Vec<u8>>, ShareError> {
    if n == 0 {
        return Err(ShareError::InvalidParameters {
            threshold: n,
            shares: n,
            reason: "need at least one share",
        });
    }
    let mut shares = Vec::with_capacity(n);
    let mut acc = secret.to_vec();
    for _ in 0..n - 1 {
        let mut pad = vec![0u8; secret.len()];
        rng.fill_bytes(&mut pad);
        for (a, p) in acc.iter_mut().zip(&pad) {
            *a ^= p;
        }
        shares.push(pad);
    }
    shares.push(acc);
    Ok(shares)
}

/// Reconstructs the secret by XOR-ing all shares.
///
/// # Errors
///
/// Returns [`ShareError::TooFewShares`] for an empty list and
/// [`ShareError::InconsistentShares`] for ragged lengths.
pub fn reconstruct(shares: &[Vec<u8>]) -> Result<Vec<u8>, ShareError> {
    let Some(first) = shares.first() else {
        return Err(ShareError::TooFewShares {
            provided: 0,
            required: 1,
        });
    };
    if shares.iter().any(|s| s.len() != first.len()) {
        return Err(ShareError::InconsistentShares("ragged share lengths"));
    }
    let mut out = first.clone();
    for share in &shares[1..] {
        for (o, s) in out.iter_mut().zip(share) {
            *o ^= s;
        }
    }
    Ok(out)
}

/// Generates an `n`-way sharing of all-zeros — the refresh deltas used by
/// proactive protocols (adding a zero-sharing re-randomizes shares without
/// changing the secret).
pub fn zero_sharing<R: CryptoRng + ?Sized>(
    rng: &mut R,
    len: usize,
    n: usize,
) -> Result<Vec<Vec<u8>>, ShareError> {
    split(rng, &vec![0u8; len], n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    #[test]
    fn roundtrip() {
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        for n in 1..6 {
            let shares = split(&mut rng, b"the secret", n).unwrap();
            assert_eq!(shares.len(), n);
            assert_eq!(reconstruct(&shares).unwrap(), b"the secret");
        }
    }

    #[test]
    fn missing_share_garbles() {
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let shares = split(&mut rng, b"the secret", 3).unwrap();
        let partial = &shares[..2];
        assert_ne!(reconstruct(partial).unwrap(), b"the secret");
    }

    #[test]
    fn zero_sharing_sums_to_zero() {
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let z = zero_sharing(&mut rng, 16, 4).unwrap();
        assert_eq!(reconstruct(&z).unwrap(), vec![0u8; 16]);
        // And the individual shares are not zero themselves.
        assert!(z[0].iter().any(|&b| b != 0));
    }

    #[test]
    fn errors() {
        let mut rng = ChaChaDrbg::from_u64_seed(4);
        assert!(split(&mut rng, b"s", 0).is_err());
        assert!(reconstruct(&[]).is_err());
        let ragged = vec![vec![1, 2], vec![1]];
        assert!(matches!(
            reconstruct(&ragged),
            Err(ShareError::InconsistentShares(_))
        ));
    }

    #[test]
    fn n_equals_one_is_identity() {
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let shares = split(&mut rng, b"plain", 1).unwrap();
        assert_eq!(shares[0], b"plain");
    }
}

//! Adversary simulations for long-term archival threat models.
//!
//! The paper's security story is driven by three adversaries, all
//! implemented here as executable models:
//!
//! * [`mobile`] — the Ostrovsky–Yung **mobile adversary**: corrupts up to
//!   `b` storage nodes per epoch, hopping between epochs, accumulating
//!   stolen shares until it holds a reconstruction threshold — unless
//!   proactive refresh gets there first.
//! * [`hndl`] — the **harvest-now-decrypt-later** adversary: records
//!   ciphertexts, shares, and channel transcripts *today* and replays
//!   them against every cryptanalytic break the
//!   [`timeline::CryptanalyticTimeline`] delivers.
//! * [`leakage`] — the **local-leakage** adversary of the LRSS
//!   literature: extracts a few bits from every share via side channels
//!   and aggregates them.
//!
//! The actual *classification* of archive encodings against these
//! adversaries (the paper's Table 1) lives in `aeon-core::evaluate`,
//! which instantiates these models against real encodings.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod hndl;
pub mod leakage;
pub mod mobile;
pub mod timeline;

pub use hndl::{HarvestRecord, Harvester};
pub use mobile::{MobileAdversary, MobileAttackOutcome};
pub use timeline::CryptanalyticTimeline;

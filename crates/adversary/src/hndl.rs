//! Harvest Now, Decrypt Later.
//!
//! The HNDL adversary's defining property: it needs no break *today*. It
//! records whatever it can reach — exfiltrated shards, tapped channel
//! transcripts — and waits for the timeline to deliver the cryptanalysis.
//! Re-encryption campaigns are useless against material already
//! harvested; only encodings whose at-rest confidentiality is
//! information-theoretic (or whose stolen material is below a sharing
//! threshold) survive.
//!
//! The harvester is generic over what it stores. Recovery logic is
//! supplied by the encoding layer (`aeon-core`) as a callback, keeping
//! this crate independent of policy types.

use crate::timeline::CryptanalyticTimeline;

/// One harvested item: an object's stolen material at a point in time.
#[derive(Debug, Clone)]
pub struct HarvestRecord {
    /// The object the material belongs to.
    pub object: String,
    /// Simulated year of the theft.
    pub year_harvested: u32,
    /// The stolen blobs (shards, ciphertexts, transcripts).
    pub blobs: Vec<Vec<u8>>,
    /// Free-form tag describing what was stolen (for reports).
    pub kind: String,
}

/// The HNDL adversary's archive of stolen material.
///
/// # Examples
///
/// ```
/// use aeon_adversary::{Harvester, CryptanalyticTimeline};
///
/// let mut harvester = Harvester::new();
/// harvester.record("obj-1", 2026, vec![b"ciphertext".to_vec()], "aes-ctext");
/// assert_eq!(harvester.records().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Harvester {
    records: Vec<HarvestRecord>,
}

/// Result of replaying the harvest against a future year.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Objects whose plaintext was recovered, with the recovered bytes.
    pub recovered: Vec<(String, Vec<u8>)>,
    /// Objects that stayed confidential.
    pub safe: Vec<String>,
}

impl ReplayOutcome {
    /// Fraction of harvested objects recovered.
    pub fn recovery_rate(&self) -> f64 {
        let total = self.recovered.len() + self.safe.len();
        if total == 0 {
            return 0.0;
        }
        self.recovered.len() as f64 / total as f64
    }
}

impl Harvester {
    /// Creates an empty harvester.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records stolen material.
    pub fn record(
        &mut self,
        object: impl Into<String>,
        year: u32,
        blobs: Vec<Vec<u8>>,
        kind: impl Into<String>,
    ) {
        self.records.push(HarvestRecord {
            object: object.into(),
            year_harvested: year,
            blobs,
            kind: kind.into(),
        });
    }

    /// All records.
    pub fn records(&self) -> &[HarvestRecord] {
        &self.records
    }

    /// Total harvested bytes (the adversary's storage bill).
    pub fn stored_bytes(&self) -> u64 {
        self.records
            .iter()
            .flat_map(|r| r.blobs.iter())
            .map(|b| b.len() as u64)
            .sum()
    }

    /// Replays every record against `year` on `timeline`. The `recover`
    /// callback embodies the encoding: given a record, the timeline, and
    /// the year, it returns recovered plaintext or `None`.
    pub fn replay<F>(
        &self,
        timeline: &CryptanalyticTimeline,
        year: u32,
        mut recover: F,
    ) -> ReplayOutcome
    where
        F: FnMut(&HarvestRecord, &CryptanalyticTimeline, u32) -> Option<Vec<u8>>,
    {
        let mut recovered = Vec::new();
        let mut safe = Vec::new();
        for record in &self.records {
            match recover(record, timeline, year) {
                Some(pt) => recovered.push((record.object.clone(), pt)),
                None => safe.push(record.object.clone()),
            }
        }
        ReplayOutcome { recovered, safe }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::SuiteId;

    fn timeline() -> CryptanalyticTimeline {
        CryptanalyticTimeline::pessimistic_2045()
    }

    #[test]
    fn replay_respects_break_year() {
        let mut h = Harvester::new();
        h.record("aes-obj", 2026, vec![b"ct".to_vec()], "aes");
        // Recovery callback: AES objects fall when AES falls.
        let recover = |r: &HarvestRecord, t: &CryptanalyticTimeline, y: u32| {
            if r.kind == "aes" && t.ciphers().is_broken(SuiteId::Aes256CtrHmac, y) {
                Some(b"plaintext".to_vec())
            } else {
                None
            }
        };
        let before = h.replay(&timeline(), 2040, recover);
        assert_eq!(before.recovered.len(), 0);
        assert_eq!(before.recovery_rate(), 0.0);
        let after = h.replay(&timeline(), 2050, recover);
        assert_eq!(after.recovered.len(), 1);
        assert_eq!(after.recovery_rate(), 1.0);
    }

    #[test]
    fn mixed_portfolio_partial_recovery() {
        let mut h = Harvester::new();
        h.record("a", 2026, vec![vec![0]], "aes");
        h.record("b", 2026, vec![vec![1]], "otp");
        h.record("c", 2026, vec![vec![2]], "aes");
        let recover = |r: &HarvestRecord, t: &CryptanalyticTimeline, y: u32| {
            (r.kind == "aes" && t.ciphers().is_broken(SuiteId::Aes256CtrHmac, y))
                .then(|| r.blobs[0].clone())
        };
        let out = h.replay(&timeline(), 2050, recover);
        assert_eq!(out.recovered.len(), 2);
        assert_eq!(out.safe, vec!["b".to_string()]);
        assert!((out.recovery_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn storage_accounting() {
        let mut h = Harvester::new();
        h.record("a", 2026, vec![vec![0u8; 100], vec![0u8; 50]], "x");
        h.record("b", 2027, vec![vec![0u8; 25]], "y");
        assert_eq!(h.stored_bytes(), 175);
        assert_eq!(h.records().len(), 2);
    }

    #[test]
    fn empty_replay() {
        let h = Harvester::new();
        let out = h.replay(&timeline(), 2100, |_, _, _| None);
        assert_eq!(out.recovery_rate(), 0.0);
        assert!(out.recovered.is_empty() && out.safe.is_empty());
    }
}

//! The Ostrovsky–Yung mobile adversary against secret-shared archives.
//!
//! The adversary corrupts at most `corrupt_per_epoch` nodes per epoch and
//! can move between epochs; over enough epochs it touches every node.
//! Against *static* Shamir shares it therefore always wins eventually.
//! Against *proactively refreshed* shares it must collect a full
//! threshold *within one refresh period* — stolen shares from different
//! periods belong to different polynomials and do not combine. The
//! experiment in [`run_attack`] measures exactly this phase transition
//! (experiment E5).

use aeon_crypto::{ChaChaDrbg, CryptoRng};
use aeon_secretshare::proactive::ProactiveSecret;
use aeon_secretshare::shamir::{self, Share};
use aeon_store::clock::{EpochSchedule, SimClock, SimTime};

/// Configuration of a mobile-adversary campaign.
#[derive(Debug, Clone, Copy)]
pub struct MobileAdversary {
    /// Nodes the adversary can corrupt per epoch.
    pub corrupt_per_epoch: usize,
    /// Total epochs the campaign runs.
    pub epochs: u64,
    /// Refresh period in epochs (`0` disables refresh — static shares).
    pub refresh_every: u64,
}

/// Outcome of a mobile-adversary campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MobileAttackOutcome {
    /// Whether the adversary reconstructed the secret.
    pub compromised: bool,
    /// The epoch of first compromise, if any.
    pub compromise_epoch: Option<u64>,
    /// Total node-corruption events performed.
    pub corruptions: u64,
    /// Refresh rounds executed by the defenders.
    pub refreshes: u64,
}

impl MobileAttackOutcome {
    /// Maps the compromise epoch (if any) onto the virtual timeline via
    /// the workspace's single [`EpochSchedule`] conversion: the instant
    /// the compromising epoch began.
    pub fn compromise_time(&self, schedule: &EpochSchedule) -> Option<SimTime> {
        self.compromise_epoch.map(|e| schedule.start_of(e))
    }
}

/// Runs a mobile-adversary campaign against a proactively shared secret.
///
/// Each epoch the adversary corrupts `corrupt_per_epoch` distinct random
/// nodes and copies their *current* shares. Defenders refresh every
/// `refresh_every` epochs (after the adversary's move that epoch — the
/// adversary gets the pre-refresh share, the worst case for defenders
/// within the period). The adversary wins the moment it holds
/// `threshold` distinct-index shares stolen within the same refresh
/// period.
///
/// # Panics
///
/// Panics if `corrupt_per_epoch` exceeds the number of shares.
pub fn run_attack<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: &[u8],
    threshold: usize,
    shares: usize,
    adversary: MobileAdversary,
) -> MobileAttackOutcome {
    run_attack_inner(rng, secret, threshold, shares, adversary, |_| {})
}

/// [`run_attack`] on the shared virtual clock: each adversary epoch
/// advances `clock` to that epoch's start instant under `schedule`, so
/// an attack campaign and a storage campaign sharing the clock agree on
/// when epochs begin. The RNG draw sequence — and therefore the outcome
/// — is identical to [`run_attack`] with the same seed; only the clock
/// moves.
///
/// # Panics
///
/// Panics if `corrupt_per_epoch` exceeds the number of shares.
pub fn run_attack_on_clock<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: &[u8],
    threshold: usize,
    shares: usize,
    adversary: MobileAdversary,
    clock: &SimClock,
    schedule: &EpochSchedule,
) -> MobileAttackOutcome {
    run_attack_inner(rng, secret, threshold, shares, adversary, |epoch| {
        clock.advance_to(schedule.start_of(epoch));
    })
}

fn run_attack_inner<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: &[u8],
    threshold: usize,
    shares: usize,
    adversary: MobileAdversary,
    mut on_epoch: impl FnMut(u64),
) -> MobileAttackOutcome {
    assert!(
        adversary.corrupt_per_epoch <= shares,
        "cannot corrupt more nodes than exist"
    );
    let mut ps =
        ProactiveSecret::share(rng, secret, threshold, shares).expect("valid sharing parameters");
    // Stolen shares of the *current* period, keyed by share index.
    let mut stolen_current: Vec<Option<Share>> = vec![None; shares + 1];
    let mut corruptions = 0u64;
    let mut refreshes = 0u64;

    for epoch in 0..adversary.epochs {
        on_epoch(epoch);
        // Adversary move: corrupt b distinct random nodes.
        let victims = sample_distinct(rng, shares, adversary.corrupt_per_epoch);
        for v in victims {
            let share = ps.shares()[v].clone();
            let idx = share.index as usize;
            stolen_current[idx] = Some(share);
            corruptions += 1;
        }
        // Compromise check: t distinct shares from the current period.
        let haul: Vec<Share> = stolen_current.iter().flatten().cloned().collect();
        if haul.len() >= threshold {
            let rec = shamir::reconstruct(&haul, threshold).expect("distinct indices");
            if rec == secret {
                return MobileAttackOutcome {
                    compromised: true,
                    compromise_epoch: Some(epoch),
                    corruptions,
                    refreshes,
                };
            }
        }
        // Defender move: refresh on schedule, invalidating the haul.
        if adversary.refresh_every > 0 && (epoch + 1) % adversary.refresh_every == 0 {
            ps.refresh_epoch(rng).expect("refresh");
            refreshes += 1;
            stolen_current = vec![None; shares + 1];
        }
    }
    MobileAttackOutcome {
        compromised: false,
        compromise_epoch: None,
        corruptions,
        refreshes,
    }
}

/// Estimates compromise probability over `trials` independent campaigns
/// with different RNG seeds.
pub fn compromise_probability(
    base_seed: u64,
    secret: &[u8],
    threshold: usize,
    shares: usize,
    adversary: MobileAdversary,
    trials: u64,
) -> f64 {
    let mut wins = 0u64;
    for t in 0..trials {
        let mut rng = ChaChaDrbg::from_u64_seed(base_seed.wrapping_add(t));
        if run_attack(&mut rng, secret, threshold, shares, adversary).compromised {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

fn sample_distinct<R: CryptoRng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range((j + 1) as u64) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &[u8] = b"long-lived archive master secret";

    #[test]
    fn static_shares_always_fall_eventually() {
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let adv = MobileAdversary {
            corrupt_per_epoch: 1,
            epochs: 200,
            refresh_every: 0,
        };
        let out = run_attack(&mut rng, SECRET, 3, 5, adv);
        assert!(
            out.compromised,
            "static sharing must fall to a mobile adversary"
        );
        assert_eq!(out.refreshes, 0);
    }

    #[test]
    fn per_epoch_refresh_with_low_rate_never_falls() {
        // Adversary corrupts 1 node/epoch; threshold 3; refresh every
        // epoch: it can never hold 3 same-period shares.
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let adv = MobileAdversary {
            corrupt_per_epoch: 1,
            epochs: 300,
            refresh_every: 1,
        };
        let out = run_attack(&mut rng, SECRET, 3, 5, adv);
        assert!(!out.compromised);
        assert_eq!(out.refreshes, 300);
    }

    #[test]
    fn above_threshold_corruption_rate_beats_refresh() {
        // Corrupting t nodes per epoch wins in the very first epoch
        // regardless of refresh.
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let adv = MobileAdversary {
            corrupt_per_epoch: 3,
            epochs: 5,
            refresh_every: 1,
        };
        let out = run_attack(&mut rng, SECRET, 3, 5, adv);
        assert!(out.compromised);
        assert_eq!(out.compromise_epoch, Some(0));
    }

    #[test]
    fn slower_refresh_raises_compromise_probability() {
        let adv_fast = MobileAdversary {
            corrupt_per_epoch: 1,
            epochs: 40,
            refresh_every: 2,
        };
        let adv_slow = MobileAdversary {
            corrupt_per_epoch: 1,
            epochs: 40,
            refresh_every: 12,
        };
        let p_fast = compromise_probability(100, SECRET, 3, 5, adv_fast, 30);
        let p_slow = compromise_probability(100, SECRET, 3, 5, adv_slow, 30);
        assert!(
            p_slow > p_fast,
            "slower refresh must be riskier: fast {p_fast} vs slow {p_slow}"
        );
    }

    #[test]
    fn corruption_accounting() {
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let adv = MobileAdversary {
            corrupt_per_epoch: 2,
            epochs: 10,
            refresh_every: 1,
        };
        let out = run_attack(&mut rng, SECRET, 4, 6, adv);
        assert_eq!(out.corruptions, 20);
    }

    #[test]
    fn clocked_attack_matches_unclocked_and_advances_the_clock() {
        let adv = MobileAdversary {
            corrupt_per_epoch: 1,
            epochs: 200,
            refresh_every: 0,
        };
        let mut rng_a = ChaChaDrbg::from_u64_seed(1);
        let plain = run_attack(&mut rng_a, SECRET, 3, 5, adv);

        let clock = SimClock::new();
        let schedule = EpochSchedule::default();
        let mut rng_b = ChaChaDrbg::from_u64_seed(1);
        let clocked = run_attack_on_clock(&mut rng_b, SECRET, 3, 5, adv, &clock, &schedule);
        assert_eq!(plain, clocked, "the clock must not perturb the campaign");

        // The clock stands at the start of the last epoch the campaign
        // entered, and the compromise instant maps through the same
        // schedule the clock was driven by.
        let last_epoch = clocked.compromise_epoch.expect("static shares fall");
        assert_eq!(clock.now(), schedule.start_of(last_epoch));
        assert_eq!(clocked.compromise_time(&schedule), Some(clock.now()));
        assert_eq!(schedule.epoch_of(clock.now()), last_epoch);
    }

    #[test]
    #[should_panic(expected = "cannot corrupt more")]
    fn over_corruption_panics() {
        let mut rng = ChaChaDrbg::from_u64_seed(6);
        let adv = MobileAdversary {
            corrupt_per_epoch: 7,
            epochs: 1,
            refresh_every: 0,
        };
        let _ = run_attack(&mut rng, SECRET, 3, 5, adv);
    }
}

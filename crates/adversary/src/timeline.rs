//! The simulated future: an integrated cryptanalytic timeline.

use aeon_crypto::{BreakSchedule, SuiteId};
use aeon_integrity::timestamp::SigBreakSchedule;

/// A unified timeline of cryptanalytic events: which encryption suites and
/// signature schemes fall in which simulated year.
///
/// # Examples
///
/// ```
/// use aeon_adversary::CryptanalyticTimeline;
/// use aeon_crypto::SuiteId;
///
/// let timeline = CryptanalyticTimeline::pessimistic_2045();
/// assert!(timeline.ciphers().is_broken(SuiteId::Aes256CtrHmac, 2050));
/// assert!(!timeline.ciphers().is_broken(SuiteId::Aes256CtrHmac, 2040));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CryptanalyticTimeline {
    ciphers: BreakSchedule,
    signatures: SigBreakSchedule,
}

impl CryptanalyticTimeline {
    /// A timeline where nothing is ever broken.
    pub fn optimistic() -> Self {
        Self::default()
    }

    /// The scenario used throughout the experiments: a cryptanalytically
    /// relevant quantum computer arrives ~2045 and takes AES-class
    /// ciphers and first-generation hash-based signature parameters;
    /// ChaCha-class ciphers fall to classical cryptanalysis in 2060.
    pub fn pessimistic_2045() -> Self {
        let mut signatures = SigBreakSchedule::new();
        signatures.set_break("wots-v1", 2045);
        CryptanalyticTimeline {
            ciphers: BreakSchedule::pessimistic(),
            signatures,
        }
    }

    /// Builder: schedule a cipher break.
    pub fn with_cipher_break(mut self, suite: SuiteId, year: u32) -> Self {
        self.ciphers.set_break(suite, year);
        self
    }

    /// Builder: schedule a signature-scheme break.
    pub fn with_signature_break(mut self, scheme: &str, year: u32) -> Self {
        self.signatures.set_break(scheme, year);
        self
    }

    /// The cipher break schedule.
    pub fn ciphers(&self) -> &BreakSchedule {
        &self.ciphers
    }

    /// The signature break schedule.
    pub fn signatures(&self) -> &SigBreakSchedule {
        &self.signatures
    }

    /// Suites among `suites` that remain standing at `year`.
    pub fn surviving_suites(&self, suites: &[SuiteId], year: u32) -> Vec<SuiteId> {
        suites
            .iter()
            .copied()
            .filter(|&s| !self.ciphers.is_broken(s, year))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_never_breaks() {
        let t = CryptanalyticTimeline::optimistic();
        assert!(!t.ciphers().is_broken(SuiteId::Aes256CtrHmac, 9999));
        assert!(!t.signatures().is_broken("anything", 9999));
    }

    #[test]
    fn pessimistic_breaks_in_order() {
        let t = CryptanalyticTimeline::pessimistic_2045();
        assert!(t.ciphers().is_broken(SuiteId::Aes256CtrHmac, 2045));
        assert!(!t.ciphers().is_broken(SuiteId::ChaCha20Poly1305, 2045));
        assert!(t.ciphers().is_broken(SuiteId::ChaCha20Poly1305, 2060));
        assert!(t.signatures().is_broken("wots-v1", 2045));
    }

    #[test]
    fn builder_composes() {
        let t = CryptanalyticTimeline::optimistic()
            .with_cipher_break(SuiteId::ChaCha20Poly1305, 2100)
            .with_signature_break("sphincs-like", 2150);
        assert!(t.ciphers().is_broken(SuiteId::ChaCha20Poly1305, 2100));
        assert!(t.signatures().is_broken("sphincs-like", 2150));
        // OTP never breaks regardless of schedule entries.
        let t = t.with_cipher_break(SuiteId::OneTimePad, 2000);
        assert!(!t.ciphers().is_broken(SuiteId::OneTimePad, 3000));
    }

    #[test]
    fn surviving_suites_filter() {
        let t = CryptanalyticTimeline::pessimistic_2045();
        let all = [
            SuiteId::Aes256CtrHmac,
            SuiteId::ChaCha20Poly1305,
            SuiteId::OneTimePad,
        ];
        assert_eq!(t.surviving_suites(&all, 2050).len(), 2);
        assert_eq!(t.surviving_suites(&all, 2070), vec![SuiteId::OneTimePad]);
    }
}

//! Local-leakage attacks against secret-shared storage.
//!
//! A mobile adversary must fully corrupt nodes; a *leakage* adversary is
//! subtler — a power side channel here, a timing channel there, a few
//! bits of every share everywhere. Benhamouda et al. showed Shamir over
//! small-characteristic fields is genuinely vulnerable: over GF(2^8) the
//! XOR of one fixed bit position across shares can equal the same bit of
//! the secret. This module packages that attack (and its mitigation via
//! the LRSS compiler) for the E7 experiment.

use aeon_crypto::{ChaChaDrbg, CryptoRng};
use aeon_secretshare::lrss::{self, LrssParams};
use aeon_secretshare::shamir;

/// What the leakage adversary managed to learn in one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageReport {
    /// Bits leaked per share.
    pub bits_per_share: usize,
    /// The adversary's distinguishing advantage in `[0, 1]` for
    /// predicting a parity of the secret.
    pub advantage: f64,
    /// Whether shares were LRSS-wrapped.
    pub wrapped: bool,
}

/// Runs the parity-leakage experiment: shares `secret_byte` as
/// `threshold`-of-`count` over GF(2^8) `trials` times, leaks the low bit
/// of each share's first stored byte, and measures how biased the XOR of
/// the leaked bits is (a proxy for the adversary's knowledge of the
/// secret's parity).
pub fn parity_leakage_experiment(
    seed: u64,
    secret_byte: u8,
    threshold: usize,
    count: usize,
    wrapped: bool,
    trials: usize,
) -> LeakageReport {
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let advantage =
        lrss::local_leakage_advantage(&mut rng, secret_byte, threshold, count, wrapped, trials);
    LeakageReport {
        bits_per_share: 1,
        advantage,
        wrapped,
    }
}

/// A multi-bit leakage function: leaks the `bits` lowest bits of each of
/// the first `bytes` bytes of every share, returning the aggregate leaked
/// material. Used to measure how leakage volume scales the attack.
pub fn leak_bits<R: CryptoRng + ?Sized>(
    rng: &mut R,
    secret: &[u8],
    threshold: usize,
    count: usize,
    bits: u32,
    wrapped: bool,
) -> Vec<Vec<u8>> {
    let shares = shamir::split(rng, secret, threshold, count).expect("valid params");
    let mask = if bits >= 8 { 0xFF } else { (1u8 << bits) - 1 };
    if wrapped {
        let wrapped_shares = lrss::wrap(rng, &shares, LrssParams::default()).expect("valid params");
        wrapped_shares
            .iter()
            .map(|s| s.masked.iter().map(|b| b & mask).collect())
            .collect()
    } else {
        shares
            .iter()
            .map(|s| s.data.iter().map(|b| b & mask).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_shamir_leaks_parity_in_xor_structure() {
        // t = n = 3 at indices 1,2,3: XOR of shares equals the secret, so
        // the parity leak is perfectly informative.
        let r0 = parity_leakage_experiment(1, 0x00, 3, 3, false, 200);
        let r1 = parity_leakage_experiment(1, 0x01, 3, 3, false, 200);
        assert!(r0.advantage > 0.9, "{}", r0.advantage);
        assert!(r1.advantage > 0.9, "{}", r1.advantage);
    }

    #[test]
    fn lrss_kills_parity_leak() {
        let r = parity_leakage_experiment(2, 0x01, 3, 3, true, 400);
        assert!(r.advantage < 0.25, "{}", r.advantage);
        assert!(r.wrapped);
    }

    #[test]
    fn leak_bits_shapes() {
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let leaks = leak_bits(&mut rng, b"secret bytes", 2, 4, 2, false);
        assert_eq!(leaks.len(), 4);
        assert!(leaks.iter().all(|l| l.iter().all(|&b| b < 4)));
        // Wrapped variant leaks from the masked share.
        let leaks_w = leak_bits(&mut rng, b"secret bytes", 2, 4, 2, true);
        assert_eq!(leaks_w.len(), 4);
    }

    #[test]
    fn threshold_structure_affects_leak() {
        // With t < n the Lagrange weights are not all 1, so the naive
        // XOR-of-parities attack weakens even unwrapped — the experiment
        // should show lower advantage than the t = n worst case.
        let worst = parity_leakage_experiment(4, 0x01, 3, 3, false, 300);
        let better = parity_leakage_experiment(4, 0x01, 2, 5, false, 300);
        assert!(worst.advantage >= better.advantage);
    }
}

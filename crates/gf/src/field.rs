//! The [`Field`] trait abstracting over the concrete finite fields.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A finite field element.
///
/// Implementors are small `Copy` types (one or two bytes) supporting the
/// usual field operations through operator overloading. All `aeon`
/// polynomial and matrix code is generic over this trait, so secret-sharing
/// and erasure-coding algorithms are written once and instantiated for both
/// [`Gf256`](crate::Gf256) and [`Gf16`](crate::Gf16).
///
/// # Contract
///
/// * `ZERO` and `ONE` are the additive and multiplicative identities.
/// * `Add`/`Sub` form an abelian group over all elements; `Mul`/`Div` form
///   one over the non-zero elements.
/// * [`Field::inverse`] returns `None` exactly for `ZERO`.
/// * `from_u64`/`to_u64` round-trip for values below the field order.
///
/// # Examples
///
/// ```
/// use aeon_gf::{Field, Gf16};
///
/// fn sum_of_inverses<F: Field>(elems: &[F]) -> Option<F> {
///     elems
///         .iter()
///         .map(|e| e.inverse())
///         .try_fold(F::ZERO, |acc, inv| Some(acc + inv?))
/// }
///
/// let elems = [Gf16::new(3), Gf16::new(9)];
/// assert!(sum_of_inverses(&elems).is_some());
/// ```
pub trait Field:
    Copy
    + Clone
    + Debug
    + Default
    + Eq
    + PartialEq
    + core::hash::Hash
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + SubAssign
    + Mul<Output = Self>
    + MulAssign
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of elements in the field.
    const ORDER: u64;
    /// Number of bytes in the canonical serialized form of one element.
    const BYTES: usize;

    /// Returns the multiplicative inverse, or `None` for zero.
    fn inverse(self) -> Option<Self>;

    /// Raises the element to an integer power (with `pow(0) == ONE`,
    /// including for zero, following the usual convention).
    fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Constructs an element from an integer, reducing modulo the field
    /// order.
    fn from_u64(v: u64) -> Self;

    /// Returns the canonical integer representation of the element.
    fn to_u64(self) -> u64;

    /// Returns `true` if this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

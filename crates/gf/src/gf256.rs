//! GF(2^8) arithmetic with compile-time log/exp tables.

// Characteristic-2 field arithmetic legitimately implements `Add` with XOR
// and `Div` with multiply-by-inverse; silence clippy's suspicion once here.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use crate::Field;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The AES/Rijndael reducing polynomial x^8 + x^4 + x^3 + x + 1.
const POLY: u16 = 0x11B;
/// Generator of the multiplicative group GF(2^8)* for this polynomial.
/// 0x03 = x + 1 is the canonical Rijndael generator.
const GENERATOR: u8 = 0x03;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    // exp is doubled so that `exp[log[a] + log[b]]` needs no mod-255
    // reduction.
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0usize;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        // Multiply x by the generator (x * 3 = (x << 1) ^ x in GF(2^8)),
        // then reduce modulo the field polynomial if bit 8 is set.
        let mut nx = (x << 1) ^ x;
        if nx & 0x100 != 0 {
            nx ^= POLY;
        }
        x = nx;
        i += 1;
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
const EXP: [u8; 512] = TABLES.0;
const LOG: [u8; 256] = TABLES.1;

/// An element of GF(2^8) under the polynomial `x^8 + x^4 + x^3 + x + 1`.
///
/// Addition is XOR; multiplication uses log/exp tables generated at compile
/// time from the generator `0x03`. One element occupies exactly one byte,
/// which makes `&[Gf256]` layout-compatible with byte buffers for
/// erasure-coding hot paths.
///
/// # Examples
///
/// ```
/// use aeon_gf::{Field, Gf256};
///
/// let a = Gf256::new(0x57);
/// let b = Gf256::new(0x83);
/// assert_eq!(a * b, Gf256::new(0xC1)); // classic AES-field example
/// assert_eq!(a + b, Gf256::new(0xD4)); // addition is XOR
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Self = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Self = Gf256(1);

    /// Creates an element from its byte representation.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// Returns the byte representation of the element.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Multiplies two elements using the log/exp tables.
    #[allow(clippy::should_implement_trait)] // `Mul` is implemented and delegates here
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let li = LOG[self.0 as usize] as usize;
        let lr = LOG[rhs.0 as usize] as usize;
        Gf256(EXP[li + lr])
    }

    /// Multiplies a buffer of field elements (viewed as bytes) by the scalar
    /// `self`, accumulating (XOR) into `dst`. This is the inner loop of
    /// Reed–Solomon encoding: `dst ^= self * src`.
    ///
    /// Buffers long enough to amortize a table build are routed through
    /// the branch-free bulk kernel in [`crate::slice`]; short buffers use
    /// the log/exp tables directly.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_acc_slice(self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_acc_slice length mismatch");
        if self.0 == 0 {
            return;
        }
        if self.0 == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
            return;
        }
        // The nibble-table kernel costs 32 scalar multiplies up front,
        // then beats the zero-checked log/exp loop per byte.
        if src.len() >= 64 {
            crate::slice::Gf256MulTable::new(self).mul_add_slice(src, dst);
            return;
        }
        let ls = LOG[self.0 as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= EXP[ls + LOG[*s as usize] as usize];
            }
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02X})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl Add for Gf256 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf256 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf256::mul(self, rhs)
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = Gf256::mul(*self, rhs);
    }
}

impl Div for Gf256 {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Self) -> Self {
        let inv = rhs.inverse().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Neg for Gf256 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        // Characteristic 2: every element is its own additive inverse.
        self
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);
    const ORDER: u64 = 256;
    const BYTES: usize = 1;

    fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let l = LOG[self.0 as usize] as usize;
        Some(Gf256(EXP[255 - l]))
    }

    fn from_u64(v: u64) -> Self {
        Gf256((v % 256) as u8)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

/// Returns the generator of the multiplicative group used for the tables.
pub const fn generator() -> Gf256 {
    Gf256(GENERATOR)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip() {
        for v in 1..=255u8 {
            let l = LOG[v as usize] as usize;
            assert_eq!(EXP[l], v, "exp(log({v})) != {v}");
        }
    }

    #[test]
    fn aes_known_product() {
        // {57} . {83} = {C1} in the AES field.
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x83), Gf256::new(0xC1));
        // {57} . {13} = {FE}
        assert_eq!(Gf256::new(0x57) * Gf256::new(0x13), Gf256::new(0xFE));
    }

    #[test]
    fn mul_commutative_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let x = Gf256(a) * Gf256(b);
                let y = Gf256(b) * Gf256(a);
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn inverse_exhaustive() {
        assert!(Gf256::ZERO.inverse().is_none());
        for a in 1..=255u8 {
            let inv = Gf256(a).inverse().unwrap();
            assert_eq!(Gf256(a) * inv, Gf256::ONE, "a = {a}");
        }
    }

    #[test]
    fn distributive_samples() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = generator();
        let mut acc = Gf256::ONE;
        for e in 0..260u64 {
            assert_eq!(g.pow(e), acc, "e = {e}");
            acc *= g;
        }
    }

    #[test]
    fn generator_has_full_order() {
        let g = generator();
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x *= g;
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let scalar = Gf256(0x8E);
        let mut dst = vec![0xAAu8; 256];
        let expect: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(d, s)| (Gf256(*d) + scalar * Gf256(*s)).value())
            .collect();
        scalar.mul_acc_slice(&src, &mut dst);
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_acc_slice_identity_and_zero() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [9u8, 9, 9, 9];
        Gf256::ZERO.mul_acc_slice(&src, &mut dst);
        assert_eq!(dst, [9, 9, 9, 9]);
        Gf256::ONE.mul_acc_slice(&src, &mut dst);
        assert_eq!(dst, [8, 11, 10, 13]);
    }

    #[test]
    fn division_roundtrip() {
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                let q = Gf256(a) / Gf256(b);
                assert_eq!(q * Gf256(b), Gf256(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }
}

//! Polynomial evaluation and Lagrange interpolation over a [`Field`].
//!
//! These routines are the mathematical heart of Shamir secret sharing
//! ("evaluate a random polynomial at n points, interpolate the constant
//! term from any t of them") and of non-systematic Reed–Solomon coding.

use crate::Field;

/// A dense polynomial over a field, stored coefficient-first
/// (`coeffs[i]` is the coefficient of `x^i`).
///
/// # Examples
///
/// ```
/// use aeon_gf::{poly::Polynomial, Field, Gf256};
///
/// // p(x) = 5 + 3x
/// let p = Polynomial::new(vec![Gf256::new(5), Gf256::new(3)]);
/// assert_eq!(p.eval(Gf256::ZERO), Gf256::new(5));
/// assert_eq!(p.degree(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial<F: Field> {
    coeffs: Vec<F>,
}

impl<F: Field> Polynomial<F> {
    /// Creates a polynomial from coefficients (`coeffs[i]` multiplies `x^i`).
    /// Trailing zero coefficients are retained; use [`Polynomial::degree`]
    /// for the effective degree.
    pub fn new(coeffs: Vec<F>) -> Self {
        Polynomial { coeffs }
    }

    /// Creates the zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// Returns the coefficients, constant term first.
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Returns the effective degree (ignoring trailing zeros); the zero
    /// polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.iter().rposition(|c| !c.is_zero()).unwrap_or(0)
    }

    /// Evaluates the polynomial at `x` using Horner's rule.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or(F::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(F::ZERO);
            out.push(a + b);
        }
        Polynomial::new(out)
    }

    /// Multiplies two polynomials (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.coeffs.is_empty() || other.coeffs.is_empty() {
            return Polynomial::zero();
        }
        let mut out = vec![F::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: F) -> Self {
        Polynomial::new(self.coeffs.iter().map(|&c| c * s).collect())
    }
}

/// Errors from interpolation routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpolateError {
    /// Two interpolation points shared the same x-coordinate.
    DuplicateX,
    /// No points were supplied.
    Empty,
}

impl core::fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterpolateError::DuplicateX => write!(f, "duplicate x-coordinate in interpolation"),
            InterpolateError::Empty => write!(f, "no interpolation points supplied"),
        }
    }
}

impl std::error::Error for InterpolateError {}

/// Evaluates, at `x0`, the unique polynomial of degree `< points.len()`
/// passing through `points`, without materializing the polynomial.
///
/// This is the O(t²) Lagrange evaluation used to reconstruct a Shamir
/// secret (`x0 = 0`) or to re-share at a new evaluation point.
///
/// # Errors
///
/// Returns [`InterpolateError::Empty`] for an empty slice and
/// [`InterpolateError::DuplicateX`] if two points share an x-coordinate.
///
/// # Examples
///
/// ```
/// use aeon_gf::{poly::lagrange_eval, Field, Gf256};
///
/// // p(x) = 7 + 2x through points x = 1, 2.
/// let pts = [
///     (Gf256::new(1), Gf256::new(7) + Gf256::new(2)),
///     (Gf256::new(2), Gf256::new(7) + Gf256::new(2) * Gf256::new(2)),
/// ];
/// let secret = lagrange_eval(&pts, Gf256::ZERO)?;
/// assert_eq!(secret, Gf256::new(7));
/// # Ok::<(), aeon_gf::poly::InterpolateError>(())
/// ```
pub fn lagrange_eval<F: Field>(points: &[(F, F)], x0: F) -> Result<F, InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    let mut acc = F::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut num = F::ONE;
        let mut den = F::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            if xi == xj {
                return Err(InterpolateError::DuplicateX);
            }
            num *= x0 - xj;
            den *= xi - xj;
        }
        let li = num
            * den
                .inverse()
                .expect("distinct x-coordinates imply nonzero denominator");
        acc += yi * li;
    }
    Ok(acc)
}

/// Computes the Lagrange basis coefficients λ_i such that
/// `p(x0) = Σ λ_i · y_i` for any polynomial of degree `< xs.len()`
/// through the given x-coordinates.
///
/// Precomputing the λ's amortizes interpolation across many byte positions
/// sharing the same share indices — the common case when reconstructing a
/// multi-byte Shamir secret.
///
/// # Errors
///
/// Same conditions as [`lagrange_eval`].
pub fn lagrange_coefficients<F: Field>(xs: &[F], x0: F) -> Result<Vec<F>, InterpolateError> {
    if xs.is_empty() {
        return Err(InterpolateError::Empty);
    }
    let mut out = Vec::with_capacity(xs.len());
    for (i, &xi) in xs.iter().enumerate() {
        let mut num = F::ONE;
        let mut den = F::ONE;
        for (j, &xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            if xi == xj {
                return Err(InterpolateError::DuplicateX);
            }
            num *= x0 - xj;
            den *= xi - xj;
        }
        out.push(num * den.inverse().expect("nonzero denominator"));
    }
    Ok(out)
}

/// Interpolates the full polynomial through the given points
/// (coefficient form). O(t²) via incremental Newton-to-monomial conversion.
///
/// # Errors
///
/// Same conditions as [`lagrange_eval`].
pub fn interpolate<F: Field>(points: &[(F, F)]) -> Result<Polynomial<F>, InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    // Lagrange construction: sum of y_i * Π_{j≠i} (x - x_j)/(x_i - x_j).
    let mut acc = Polynomial::zero();
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut basis = Polynomial::new(vec![F::ONE]);
        let mut den = F::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            if xi == xj {
                return Err(InterpolateError::DuplicateX);
            }
            // basis *= (x - xj)
            basis = basis.mul(&Polynomial::new(vec![-xj, F::ONE]));
            den *= xi - xj;
        }
        let scale = yi * den.inverse().expect("nonzero denominator");
        acc = acc.add(&basis.scale(scale));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf256};

    #[test]
    fn eval_constant_and_linear() {
        let p = Polynomial::new(vec![Gf256::new(42)]);
        assert_eq!(p.eval(Gf256::new(17)), Gf256::new(42));
        let q = Polynomial::new(vec![Gf256::new(1), Gf256::new(1)]); // 1 + x
        assert_eq!(q.eval(Gf256::new(5)), Gf256::new(4)); // 1 ^ 5
    }

    #[test]
    fn degree_ignores_trailing_zeros() {
        let p = Polynomial::new(vec![Gf256::new(1), Gf256::new(2), Gf256::ZERO]);
        assert_eq!(p.degree(), 1);
        assert_eq!(Polynomial::<Gf256>::zero().degree(), 0);
    }

    #[test]
    fn lagrange_recovers_constant_term() {
        // p(x) = 9 + 3x + 7x^2 over GF(256)
        let p = Polynomial::new(vec![Gf256::new(9), Gf256::new(3), Gf256::new(7)]);
        let pts: Vec<(Gf256, Gf256)> = (1..=3u8)
            .map(|i| (Gf256::new(i), p.eval(Gf256::new(i))))
            .collect();
        assert_eq!(lagrange_eval(&pts, Gf256::ZERO).unwrap(), Gf256::new(9));
    }

    #[test]
    fn lagrange_any_subset_agrees() {
        let p = Polynomial::new(vec![
            Gf16::new(999),
            Gf16::new(3),
            Gf16::new(7),
            Gf16::new(1),
        ]);
        let all: Vec<(Gf16, Gf16)> = (1..=8u16)
            .map(|i| (Gf16::new(i), p.eval(Gf16::new(i))))
            .collect();
        // Any 4 of the 8 points recover the same constant term.
        for w in all.windows(4) {
            assert_eq!(lagrange_eval(w, Gf16::ZERO).unwrap(), Gf16::new(999));
        }
    }

    #[test]
    fn lagrange_coefficients_match_eval() {
        let p = Polynomial::new(vec![Gf256::new(50), Gf256::new(60), Gf256::new(70)]);
        let xs = [Gf256::new(2), Gf256::new(5), Gf256::new(9)];
        let ys: Vec<Gf256> = xs.iter().map(|&x| p.eval(x)).collect();
        let lambda = lagrange_coefficients(&xs, Gf256::ZERO).unwrap();
        let recovered = lambda
            .iter()
            .zip(&ys)
            .fold(Gf256::ZERO, |acc, (&l, &y)| acc + l * y);
        assert_eq!(recovered, Gf256::new(50));
    }

    #[test]
    fn interpolate_full_polynomial() {
        let orig = Polynomial::new(vec![Gf256::new(11), Gf256::new(22), Gf256::new(33)]);
        let pts: Vec<(Gf256, Gf256)> = (1..=3u8)
            .map(|i| (Gf256::new(i), orig.eval(Gf256::new(i))))
            .collect();
        let rec = interpolate(&pts).unwrap();
        for x in 0..=255u8 {
            assert_eq!(rec.eval(Gf256::new(x)), orig.eval(Gf256::new(x)));
        }
    }

    #[test]
    fn duplicate_x_rejected() {
        let pts = [
            (Gf256::new(1), Gf256::new(2)),
            (Gf256::new(1), Gf256::new(3)),
        ];
        assert_eq!(
            lagrange_eval(&pts, Gf256::ZERO),
            Err(InterpolateError::DuplicateX)
        );
        assert!(interpolate(&pts).is_err());
    }

    #[test]
    fn empty_rejected() {
        let pts: [(Gf256, Gf256); 0] = [];
        assert_eq!(
            lagrange_eval(&pts, Gf256::ZERO),
            Err(InterpolateError::Empty)
        );
    }

    #[test]
    fn poly_mul_degree_and_values() {
        let a = Polynomial::new(vec![Gf256::new(1), Gf256::new(1)]); // 1 + x
        let b = Polynomial::new(vec![Gf256::new(2), Gf256::new(3)]); // 2 + 3x
        let c = a.mul(&b);
        assert_eq!(c.degree(), 2);
        for x in [0u8, 1, 2, 7, 200] {
            let x = Gf256::new(x);
            assert_eq!(c.eval(x), a.eval(x) * b.eval(x));
        }
    }
}

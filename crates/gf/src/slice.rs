//! Bulk slice kernels: scalar × vector products over GF(2^8) and
//! GF(2^16).
//!
//! The log/exp scalar multiply in [`Gf256`]/[`Gf16`] costs two table
//! lookups, an add, and a zero-check branch per element. The inner loops
//! of Reed–Solomon encoding and Shamir share evaluation multiply *whole
//! buffers* by one scalar, so this module precomputes a per-scalar
//! product table once and then streams through the buffer branch-free:
//!
//! * [`Gf256MulTable`] — two 16-entry nibble tables (`lo[n] = s·n`,
//!   `hi[n] = s·(n«4)`); a product is `lo[b & 0xF] ^ hi[b >> 4]`. This
//!   is the classic SSSE3 `PSHUFB` layout, expressed portably.
//! * [`Gf16MulTable`] — two 256-entry byte tables over the low and high
//!   byte of each 16-bit symbol.
//!
//! # Dispatch tiers
//!
//! The GF(2^8) table operations do not loop over bytes here; they hand
//! the nibble tables to the process-wide [`Kernel`](crate::kernel),
//! which applies them through the fastest implementation tier the host
//! supports — per-byte scalar lookups, a portable compiler-vectorized
//! SWAR select, or SSSE3/AVX2 `PSHUFB` shuffles (the nibble tables are
//! literally the `PSHUFB` operand). The tier is probed once per process
//! with `is_x86_feature_detected!` and can be pinned with
//! `AEON_FORCE_KERNEL=scalar|swar|ssse3|avx2`; every tier is
//! byte-identical to the log/exp reference, so the choice is invisible
//! to callers. See [`crate::kernel`] for the tier table.
//!
//! Free functions [`mul_slice`] / [`mul_add_slice`] (and the `gf16_*`
//! variants) build the table and apply it in one call; hot paths that
//! reuse one coefficient across many rows should build the table once.
//!
//! # Fused rows
//!
//! Erasure parity rows, Shamir share evaluation, and Lagrange recovery
//! all compute `dst ^= Σ_k c_k · src_k`. Issuing one `mul_add_slice`
//! per coefficient walks the full destination once per row, falling out
//! of cache between passes for large buffers. [`mul_add_rows`] (and
//! [`gf16_mul_add_rows`]) fuse the accumulation: the destination is cut
//! into cache-sized strips and every row is applied to a strip while it
//! is hot.

use crate::kernel::Kernel;
use crate::{Gf16, Gf256};

/// Precomputed multiplication table for one GF(2^8) scalar.
///
/// # Examples
///
/// ```
/// use aeon_gf::slice::Gf256MulTable;
/// use aeon_gf::Gf256;
///
/// let t = Gf256MulTable::new(Gf256::new(0x57));
/// assert_eq!(t.mul(0x83), 0xC1); // {57}·{83} = {C1} in the AES field
/// ```
#[derive(Debug, Clone)]
pub struct Gf256MulTable {
    lo: [u8; 16],
    hi: [u8; 16],
    scalar: Gf256,
}

impl Gf256MulTable {
    /// Builds the nibble tables for `scalar` (32 scalar multiplies).
    pub fn new(scalar: Gf256) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u8 {
            lo[n as usize] = (scalar * Gf256::new(n)).value();
            hi[n as usize] = (scalar * Gf256::new(n << 4)).value();
        }
        Gf256MulTable { lo, hi, scalar }
    }

    /// The scalar this table multiplies by.
    #[inline]
    pub fn scalar(&self) -> Gf256 {
        self.scalar
    }

    /// The low-nibble product table (`lo[n] = s·n`).
    #[inline]
    pub(crate) fn lo(&self) -> &[u8; 16] {
        &self.lo
    }

    /// The high-nibble product table (`hi[n] = s·(n«4)`).
    #[inline]
    pub(crate) fn hi(&self) -> &[u8; 16] {
        &self.hi
    }

    /// Multiplies one byte by the scalar.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }

    /// `dst = scalar · src`, element-wise, through the active
    /// [`Kernel`](crate::kernel) tier.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_slice(&self, src: &[u8], dst: &mut [u8]) {
        Kernel::active().mul_slice(self, src, dst);
    }

    /// `buf = scalar · buf`, element-wise, through the active
    /// [`Kernel`](crate::kernel) tier.
    pub fn mul_slice_in_place(&self, buf: &mut [u8]) {
        Kernel::active().mul_slice_in_place(self, buf);
    }

    /// `dst ^= scalar · src`, element-wise — the Reed–Solomon inner loop
    /// — through the active [`Kernel`](crate::kernel) tier.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_add_slice(&self, src: &[u8], dst: &mut [u8]) {
        Kernel::active().mul_add_slice(self, src, dst);
    }
}

/// `dst = scalar · src` over GF(2^8) bytes (one-shot table build).
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn mul_slice(scalar: Gf256, src: &[u8], dst: &mut [u8]) {
    Gf256MulTable::new(scalar).mul_slice(src, dst);
}

/// `dst ^= scalar · src` over GF(2^8) bytes (one-shot table build).
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn mul_add_slice(scalar: Gf256, src: &[u8], dst: &mut [u8]) {
    Gf256MulTable::new(scalar).mul_add_slice(src, dst);
}

/// Destination strip size for the fused row kernels: small enough that a
/// strip plus one source strip stay resident in L1d between rows, large
/// enough to amortize the per-row dispatch.
const ROW_STRIP: usize = 16 * 1024;

/// `dst ^= Σ_k c_k · src_k` — the fused matrix-row kernel behind RS
/// parity rows, Shamir share evaluation, and Lagrange recovery.
///
/// The destination is processed in cache-sized strips; within a strip
/// every row is accumulated while the strip is hot, instead of walking
/// the whole destination once per coefficient. Builds one product table
/// per row; callers that reuse coefficient tables across many
/// destinations (RS encode) should use [`mul_add_rows_tables`].
///
/// # Examples
///
/// ```
/// use aeon_gf::slice::{mul_add_rows, mul_add_slice};
/// use aeon_gf::Gf256;
///
/// let a = vec![0x11u8; 100];
/// let b = vec![0x22u8; 100];
/// let mut fused = vec![0u8; 100];
/// mul_add_rows(&mut fused, &[(Gf256::new(3), &a), (Gf256::new(7), &b)]);
///
/// let mut serial = vec![0u8; 100];
/// mul_add_slice(Gf256::new(3), &a, &mut serial);
/// mul_add_slice(Gf256::new(7), &b, &mut serial);
/// assert_eq!(fused, serial);
/// ```
///
/// # Panics
///
/// Panics if any row's length differs from `dst`'s.
pub fn mul_add_rows(dst: &mut [u8], rows: &[(Gf256, &[u8])]) {
    let tables: Vec<Gf256MulTable> = rows.iter().map(|&(c, _)| Gf256MulTable::new(c)).collect();
    let trows: Vec<(&Gf256MulTable, &[u8])> = tables
        .iter()
        .zip(rows)
        .map(|(t, &(_, src))| (t, src))
        .collect();
    mul_add_rows_tables(dst, &trows);
}

/// [`mul_add_rows`] with caller-prebuilt product tables.
///
/// # Panics
///
/// Panics if any row's length differs from `dst`'s.
pub fn mul_add_rows_tables(dst: &mut [u8], rows: &[(&Gf256MulTable, &[u8])]) {
    mul_add_rows_on(Kernel::active(), dst, rows);
}

/// [`mul_add_rows_tables`] through an explicit kernel tier (benchmark
/// sweeps and cross-tier parity tests; everything else wants
/// [`mul_add_rows_tables`]).
///
/// # Panics
///
/// Panics if any row's length differs from `dst`'s.
pub fn mul_add_rows_on(kernel: &Kernel, dst: &mut [u8], rows: &[(&Gf256MulTable, &[u8])]) {
    for (_, src) in rows {
        assert_eq!(src.len(), dst.len(), "mul_add_rows length mismatch");
    }
    let mut start = 0;
    while start < dst.len() {
        let end = (start + ROW_STRIP).min(dst.len());
        for &(table, src) in rows {
            kernel.mul_add_slice(table, &src[start..end], &mut dst[start..end]);
        }
        start = end;
    }
}

/// Precomputed multiplication table for one GF(2^16) scalar.
///
/// Symbol slices are `&[u16]`; byte-oriented callers convert at the
/// boundary (packed sharing stores big-endian pairs).
#[derive(Clone)]
pub struct Gf16MulTable {
    lo: Box<[u16; 256]>,
    hi: Box<[u16; 256]>,
    scalar: Gf16,
}

impl std::fmt::Debug for Gf16MulTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gf16MulTable({:?})", self.scalar)
    }
}

impl Gf16MulTable {
    /// Builds the byte tables for `scalar` (512 scalar multiplies).
    pub fn new(scalar: Gf16) -> Self {
        let mut lo = Box::new([0u16; 256]);
        let mut hi = Box::new([0u16; 256]);
        for b in 0..256u16 {
            lo[b as usize] = (scalar * Gf16::new(b)).value();
            hi[b as usize] = (scalar * Gf16::new(b << 8)).value();
        }
        Gf16MulTable { lo, hi, scalar }
    }

    /// The scalar this table multiplies by.
    #[inline]
    pub fn scalar(&self) -> Gf16 {
        self.scalar
    }

    /// Multiplies one 16-bit symbol by the scalar.
    #[inline]
    pub fn mul(&self, v: u16) -> u16 {
        self.lo[(v & 0xFF) as usize] ^ self.hi[(v >> 8) as usize]
    }

    /// `dst = scalar · src`, symbol-wise.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_slice(&self, src: &[u16], dst: &mut [u16]) {
        assert_eq!(src.len(), dst.len(), "gf16 mul_slice length mismatch");
        match self.scalar.value() {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = self.mul(*s);
                }
            }
        }
    }

    /// `buf = scalar · buf`, symbol-wise.
    pub fn mul_slice_in_place(&self, buf: &mut [u16]) {
        match self.scalar.value() {
            0 => buf.fill(0),
            1 => {}
            _ => {
                for v in buf.iter_mut() {
                    *v = self.mul(*v);
                }
            }
        }
    }

    /// `dst ^= scalar · src`, symbol-wise — the Horner step of packed
    /// share evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_add_slice(&self, src: &[u16], dst: &mut [u16]) {
        assert_eq!(src.len(), dst.len(), "gf16 mul_add_slice length mismatch");
        match self.scalar.value() {
            0 => {}
            1 => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d ^= *s;
                }
            }
            _ => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d ^= self.mul(*s);
                }
            }
        }
    }
}

/// `dst = scalar · src` over GF(2^16) symbols (one-shot table build).
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn gf16_mul_slice(scalar: Gf16, src: &[u16], dst: &mut [u16]) {
    Gf16MulTable::new(scalar).mul_slice(src, dst);
}

/// `dst ^= scalar · src` over GF(2^16) symbols (one-shot table build).
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn gf16_mul_add_slice(scalar: Gf16, src: &[u16], dst: &mut [u16]) {
    Gf16MulTable::new(scalar).mul_add_slice(src, dst);
}

/// Below this many symbols the fused GF(2^16) row kernel skips the
/// 512-multiply table build and accumulates through log/exp directly
/// (byte-identical — field arithmetic is exact either way).
const GF16_TABLE_MIN: usize = 64;

/// `dst ^= Σ_k c_k · src_k` over GF(2^16) symbols — the fused row kernel
/// behind packed-share polynomial evaluation.
///
/// Long buffers build one [`Gf16MulTable`] per row and accumulate in
/// cache-sized strips, like [`mul_add_rows`]; buffers shorter than the
/// table-build break-even use the direct log/exp multiply.
///
/// # Panics
///
/// Panics if any row's length differs from `dst`'s.
pub fn gf16_mul_add_rows(dst: &mut [u16], rows: &[(Gf16, &[u16])]) {
    for (_, src) in rows {
        assert_eq!(src.len(), dst.len(), "gf16 mul_add_rows length mismatch");
    }
    if dst.len() < GF16_TABLE_MIN {
        for &(c, src) in rows {
            match c.value() {
                0 => {}
                1 => {
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d ^= *s;
                    }
                }
                _ => {
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d = (Gf16::new(*d) + c * Gf16::new(*s)).value();
                    }
                }
            }
        }
        return;
    }
    let tables: Vec<Gf16MulTable> = rows.iter().map(|&(c, _)| Gf16MulTable::new(c)).collect();
    // Strip length in symbols; same byte footprint as `ROW_STRIP`.
    let strip = ROW_STRIP / 2;
    let mut start = 0;
    while start < dst.len() {
        let end = (start + strip).min(dst.len());
        for (table, (_, src)) in tables.iter().zip(rows) {
            table.mul_add_slice(&src[start..end], &mut dst[start..end]);
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: d' = d ⊕ s·v via the field's own multiply.
    fn ref_mul_acc_256(scalar: Gf256, src: &[u8], dst: &mut [u8]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = (Gf256::new(*d) + scalar * Gf256::new(*s)).value();
        }
    }

    #[test]
    fn gf256_table_matches_field_mul_exhaustive() {
        for s in 0..=255u8 {
            let t = Gf256MulTable::new(Gf256::new(s));
            for b in 0..=255u8 {
                assert_eq!(
                    t.mul(b),
                    (Gf256::new(s) * Gf256::new(b)).value(),
                    "s={s} b={b}"
                );
            }
        }
    }

    #[test]
    fn gf256_slice_kernels_match_scalar_reference() {
        let src: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for s in [0u8, 1, 2, 0x53, 0x8E, 0xFF] {
            let scalar = Gf256::new(s);
            let t = Gf256MulTable::new(scalar);

            let mut expect = vec![0xA5u8; src.len()];
            let mut got = expect.clone();
            ref_mul_acc_256(scalar, &src, &mut expect);
            t.mul_add_slice(&src, &mut got);
            assert_eq!(got, expect, "mul_add_slice s={s}");

            let mut got2 = vec![0u8; src.len()];
            t.mul_slice(&src, &mut got2);
            let expect2: Vec<u8> = src
                .iter()
                .map(|&b| (scalar * Gf256::new(b)).value())
                .collect();
            assert_eq!(got2, expect2, "mul_slice s={s}");

            let mut got3 = src.clone();
            t.mul_slice_in_place(&mut got3);
            assert_eq!(got3, expect2, "mul_slice_in_place s={s}");
        }
    }

    #[test]
    fn gf256_kernels_agree_with_mul_acc_slice() {
        // The legacy log/exp path and the new table path must be
        // bit-identical on every length, including the unrolled tail.
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 255] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for s in [0u8, 1, 0xB7] {
                let mut a = vec![0x3Cu8; len];
                let mut b = a.clone();
                Gf256::new(s).mul_acc_slice(&src, &mut a);
                mul_add_slice(Gf256::new(s), &src, &mut b);
                assert_eq!(a, b, "len={len} s={s}");
            }
        }
    }

    #[test]
    fn gf16_table_matches_field_mul_samples() {
        for s in [0u16, 1, 2, 0x1234, 0xABCD, 0xFFFF] {
            let t = Gf16MulTable::new(Gf16::new(s));
            for v in (0..=65_535u16).step_by(251) {
                assert_eq!(
                    t.mul(v),
                    (Gf16::new(s) * Gf16::new(v)).value(),
                    "s={s:#x} v={v:#x}"
                );
            }
        }
    }

    #[test]
    fn gf16_slice_kernels_match_scalar_reference() {
        let src: Vec<u16> = (0..500u16).map(|i| i.wrapping_mul(131)).collect();
        for s in [0u16, 1, 0x0003, 0x8001, 0xFFFE] {
            let scalar = Gf16::new(s);
            let t = Gf16MulTable::new(scalar);

            let mut got = vec![0x5A5Au16; src.len()];
            let expect: Vec<u16> = src
                .iter()
                .zip(got.iter())
                .map(|(&v, &d)| (Gf16::new(d) + scalar * Gf16::new(v)).value())
                .collect();
            t.mul_add_slice(&src, &mut got);
            assert_eq!(got, expect, "gf16 mul_add_slice s={s:#x}");

            let mut got2 = vec![0u16; src.len()];
            gf16_mul_slice(scalar, &src, &mut got2);
            let expect2: Vec<u16> = src
                .iter()
                .map(|&v| (scalar * Gf16::new(v)).value())
                .collect();
            assert_eq!(got2, expect2, "gf16 mul_slice s={s:#x}");

            let mut got3 = src.clone();
            t.mul_slice_in_place(&mut got3);
            assert_eq!(got3, expect2, "gf16 mul_slice_in_place s={s:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let t = Gf256MulTable::new(Gf256::new(2));
        let mut dst = [0u8; 3];
        t.mul_add_slice(&[1, 2], &mut dst);
    }
}

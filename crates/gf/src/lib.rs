//! Finite-field arithmetic for erasure coding and secret sharing.
//!
//! This crate provides the algebraic substrate used throughout the `aeon`
//! workspace:
//!
//! * [`Gf256`] — the field GF(2^8) with the AES/Rijndael-compatible reducing
//!   polynomial `x^8 + x^4 + x^3 + x + 1` (0x11B). Element-per-byte makes it
//!   the natural field for byte-oriented Reed–Solomon codes and Shamir
//!   secret sharing.
//! * [`Gf16`] — the field GF(2^16) with reducing polynomial
//!   `x^16 + x^12 + x^3 + x + 1` (0x1100B). Its 65 536 evaluation points
//!   make it the field of choice for *packed* secret sharing, where a single
//!   polynomial hides many secrets and therefore needs many distinct
//!   evaluation points.
//! * [`poly`] — polynomial evaluation and Lagrange interpolation over any
//!   [`Field`].
//! * [`matrix`] — dense matrices over a field: Vandermonde and Cauchy
//!   constructions, Gaussian elimination, inversion. These drive systematic
//!   Reed–Solomon encoding and decoding.
//! * [`slice`](mod@slice) — bulk scalar × vector kernels (`mul_slice`,
//!   `mul_add_slice`) and the fused matrix-row kernel (`mul_add_rows`)
//!   with per-scalar product tables, the branch-free inner loops of
//!   erasure encoding and share evaluation.
//! * [`kernel`] — runtime dispatch for the GF(2^8) slice kernels:
//!   portable scalar/SWAR tiers plus SSSE3/AVX2 `PSHUFB` tiers selected
//!   once per process via CPU-feature detection (overridable with
//!   `AEON_FORCE_KERNEL`).
//!
//! # Design notes
//!
//! Both concrete fields use log/exp table arithmetic. The tables are built
//! at compile time by `const` evaluation, so there is no runtime
//! initialization and lookups are branch-free except for the zero check in
//! multiplication.
//!
//! # Examples
//!
//! ```
//! use aeon_gf::{Field, Gf256};
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Multiplication in GF(2^8) with the AES polynomial.
//! assert_eq!(a * b, Gf256::ONE);
//! assert_eq!(a.inverse().unwrap(), b);
//! ```

// `deny` rather than `forbid`: the SSSE3/AVX2 intrinsic tier in
// `kernel::simd` is the one audited exception (module-level `allow`);
// everything else in the crate remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod field;
mod gf16;
mod gf256;
pub mod kernel;
pub mod matrix;
pub mod poly;
pub mod slice;

pub use field::Field;
pub use gf16::Gf16;
pub use gf256::{generator as gf256_generator, Gf256};
pub use kernel::{Kernel, KernelTier};
pub use matrix::Matrix;

//! Finite-field arithmetic for erasure coding and secret sharing.
//!
//! This crate provides the algebraic substrate used throughout the `aeon`
//! workspace:
//!
//! * [`Gf256`] — the field GF(2^8) with the AES/Rijndael-compatible reducing
//!   polynomial `x^8 + x^4 + x^3 + x + 1` (0x11B). Element-per-byte makes it
//!   the natural field for byte-oriented Reed–Solomon codes and Shamir
//!   secret sharing.
//! * [`Gf16`] — the field GF(2^16) with reducing polynomial
//!   `x^16 + x^12 + x^3 + x + 1` (0x1100B). Its 65 536 evaluation points
//!   make it the field of choice for *packed* secret sharing, where a single
//!   polynomial hides many secrets and therefore needs many distinct
//!   evaluation points.
//! * [`poly`] — polynomial evaluation and Lagrange interpolation over any
//!   [`Field`].
//! * [`matrix`] — dense matrices over a field: Vandermonde and Cauchy
//!   constructions, Gaussian elimination, inversion. These drive systematic
//!   Reed–Solomon encoding and decoding.
//! * [`slice`](mod@slice) — bulk scalar × vector kernels (`mul_slice`,
//!   `mul_add_slice`) with per-scalar product tables, the branch-free
//!   inner loops of erasure encoding and share evaluation.
//!
//! # Design notes
//!
//! Both concrete fields use log/exp table arithmetic. The tables are built
//! at compile time by `const` evaluation, so there is no runtime
//! initialization and lookups are branch-free except for the zero check in
//! multiplication.
//!
//! # Examples
//!
//! ```
//! use aeon_gf::{Field, Gf256};
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Multiplication in GF(2^8) with the AES polynomial.
//! assert_eq!(a * b, Gf256::ONE);
//! assert_eq!(a.inverse().unwrap(), b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod field;
mod gf16;
mod gf256;
pub mod matrix;
pub mod poly;
pub mod slice;

pub use field::Field;
pub use gf16::Gf16;
pub use gf256::{generator as gf256_generator, Gf256};
pub use matrix::Matrix;

//! Runtime-dispatched bulk kernels for GF(2^8).
//!
//! Every slice operation in [`crate::slice`] funnels through exactly one
//! [`Kernel`] — a small vtable of function pointers chosen once per
//! process — so the Reed–Solomon and Shamir hot loops never branch on
//! CPU features per call. All tiers consume the same 16-entry nibble
//! product tables ([`Gf256MulTable`]) and are byte-identical by
//! construction; they differ only in how many products they compute per
//! step:
//!
//! | tier                   | mechanism                                         | availability      |
//! |------------------------|---------------------------------------------------|-------------------|
//! | [`KernelTier::Scalar`] | per-byte nibble lookups, 8-byte unrolled          | always            |
//! | [`KernelTier::Swar`]   | bit-plane broadcast-select, compiler-vectorized   | always            |
//! | [`KernelTier::Ssse3`]  | `PSHUFB` 16-byte nibble shuffles                  | x86-64 with SSSE3 |
//! | [`KernelTier::Avx2`]   | `VPSHUFB` 32-byte nibble shuffles                 | x86-64 with AVX2  |
//!
//! [`Kernel::active`] picks the fastest tier the host supports (probed
//! with `is_x86_feature_detected!`) and caches the choice. Setting
//! `AEON_FORCE_KERNEL=scalar|swar|ssse3|avx2` overrides the choice; a
//! forced tier the host cannot run (or an unrecognized value) silently
//! falls back to auto-detection, so the variable is safe to export
//! unconditionally in CI matrices.
//!
//! The SWAR tier expresses the multiply as a sum over the bit-planes of
//! the source byte: by GF(2)-linearity, `s·b = ⊕_{i: bit i of b set}
//! s·2^i`, and each basis product `s·2^i` is already sitting in the
//! nibble tables (`lo[1<<i]` / `hi[1<<(i-4)]`). The per-byte form
//! `r ^= ((b >> i) & 1).wrapping_neg() & p[i]` is a branch-free select
//! that LLVM lowers to wide vector compares on every target with SIMD
//! registers — measured ≥2× the scalar tier on x86-64 even at the SSE2
//! baseline. (The textbook `u64`-word formulation — broadcast the plane
//! mask with `(x >> i & LSB) * p_splat` — was measured slower here: the
//! eight 64-bit multiplies per word leave the loop frontend-bound.)

use std::sync::OnceLock;

use crate::slice::Gf256MulTable;

/// The implementation tiers, ordered slowest to fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Per-byte nibble-table lookups (the universal reference).
    Scalar,
    /// Portable bit-plane broadcast-select; auto-vectorizes on any SIMD
    /// target without `unsafe`.
    Swar,
    /// SSSE3 `PSHUFB` nibble shuffles, 16 bytes per step.
    Ssse3,
    /// AVX2 `VPSHUFB` nibble shuffles, 32 bytes per step.
    Avx2,
}

impl KernelTier {
    /// All tiers, slowest first (the order [`Kernel::supported`] probes).
    pub const ALL: [KernelTier; 4] = [
        KernelTier::Scalar,
        KernelTier::Swar,
        KernelTier::Ssse3,
        KernelTier::Avx2,
    ];

    /// The lowercase name used by `AEON_FORCE_KERNEL` and benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Swar => "swar",
            KernelTier::Ssse3 => "ssse3",
            KernelTier::Avx2 => "avx2",
        }
    }

    /// Parses a tier name (as accepted by `AEON_FORCE_KERNEL`).
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "swar" => Some(KernelTier::Swar),
            "ssse3" => Some(KernelTier::Ssse3),
            "avx2" => Some(KernelTier::Avx2),
            _ => None,
        }
    }
}

type SliceOp = fn(&[u8; 16], &[u8; 16], &[u8], &mut [u8]);
type InPlaceOp = fn(&[u8; 16], &[u8; 16], &mut [u8]);

/// One dispatch tier's implementations of the three slice operations.
///
/// Scalars 0 and 1 are handled before dispatch (fill / copy / xor), so
/// the vtable entries only ever see a genuine multiply.
#[derive(Debug)]
pub struct Kernel {
    tier: KernelTier,
    mul: SliceOp,
    mul_add: SliceOp,
    mul_in_place: InPlaceOp,
}

impl Kernel {
    /// Which tier this kernel implements.
    #[inline]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// The process-wide kernel: the fastest supported tier, or the tier
    /// named by `AEON_FORCE_KERNEL` when set and runnable. Selected on
    /// first use and cached for the life of the process.
    pub fn active() -> &'static Kernel {
        static ACTIVE: OnceLock<&'static Kernel> = OnceLock::new();
        ACTIVE.get_or_init(|| {
            std::env::var("AEON_FORCE_KERNEL")
                .ok()
                .and_then(|v| KernelTier::parse(&v))
                .and_then(Kernel::for_tier)
                .unwrap_or_else(Kernel::best)
        })
    }

    /// The kernel for a specific tier, or `None` when the host cannot
    /// run it. `Scalar` and `Swar` always succeed.
    pub fn for_tier(tier: KernelTier) -> Option<&'static Kernel> {
        match tier {
            KernelTier::Scalar => Some(&SCALAR),
            KernelTier::Swar => Some(&SWAR),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Ssse3 if is_x86_feature_detected!("ssse3") => Some(&simd::SSSE3),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 if is_x86_feature_detected!("avx2") => Some(&simd::AVX2),
            _ => None,
        }
    }

    /// Every tier the host supports, slowest first (benchmark sweeps and
    /// cross-tier parity tests iterate this).
    pub fn supported() -> Vec<&'static Kernel> {
        KernelTier::ALL
            .into_iter()
            .filter_map(Kernel::for_tier)
            .collect()
    }

    fn best() -> &'static Kernel {
        Kernel::supported().last().expect("scalar always supported")
    }

    /// `dst = scalar · src` through this tier.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_slice(&self, table: &Gf256MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        match table.scalar().value() {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => (self.mul)(table.lo(), table.hi(), src, dst),
        }
    }

    /// `dst ^= scalar · src` through this tier.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn mul_add_slice(&self, table: &Gf256MulTable, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_add_slice length mismatch");
        match table.scalar().value() {
            0 => {}
            1 => xor_slice(src, dst),
            _ => (self.mul_add)(table.lo(), table.hi(), src, dst),
        }
    }

    /// `buf = scalar · buf` through this tier.
    pub fn mul_slice_in_place(&self, table: &Gf256MulTable, buf: &mut [u8]) {
        match table.scalar().value() {
            0 => buf.fill(0),
            1 => {}
            _ => (self.mul_in_place)(table.lo(), table.hi(), buf),
        }
    }
}

/// `dst ^= src` — the scalar-1 row step, shared by every tier.
#[inline]
pub(crate) fn xor_slice(src: &[u8], dst: &mut [u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

static SCALAR: Kernel = Kernel {
    tier: KernelTier::Scalar,
    mul: scalar::mul,
    mul_add: scalar::mul_add,
    mul_in_place: scalar::mul_in_place,
};

static SWAR: Kernel = Kernel {
    tier: KernelTier::Swar,
    mul: swar::mul,
    mul_add: swar::mul_add,
    mul_in_place: swar::mul_in_place,
};

mod scalar {
    /// One product via the nibble tables.
    #[inline(always)]
    pub(super) fn mul_b(lo: &[u8; 16], hi: &[u8; 16], b: u8) -> u8 {
        lo[(b & 0x0F) as usize] ^ hi[(b >> 4) as usize]
    }

    pub(super) fn mul(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let mut d = dst.chunks_exact_mut(8);
        let mut s = src.chunks_exact(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            for i in 0..8 {
                dc[i] = mul_b(lo, hi, sc[i]);
            }
        }
        for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *db = mul_b(lo, hi, *sb);
        }
    }

    pub(super) fn mul_add(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let mut d = dst.chunks_exact_mut(8);
        let mut s = src.chunks_exact(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            for i in 0..8 {
                dc[i] ^= mul_b(lo, hi, sc[i]);
            }
        }
        for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *db ^= mul_b(lo, hi, *sb);
        }
    }

    pub(super) fn mul_in_place(lo: &[u8; 16], hi: &[u8; 16], buf: &mut [u8]) {
        let mut d = buf.chunks_exact_mut(8);
        for dc in &mut d {
            for b in dc.iter_mut() {
                *b = mul_b(lo, hi, *b);
            }
        }
        for db in d.into_remainder() {
            *db = mul_b(lo, hi, *db);
        }
    }
}

mod swar {
    /// The eight basis products `p[i] = s·2^i`, read straight out of the
    /// nibble tables: `lo[1<<i]` for the low nibble bits, `hi[1<<(i-4)]`
    /// for the high.
    #[inline(always)]
    fn planes(lo: &[u8; 16], hi: &[u8; 16]) -> [u8; 8] {
        [lo[1], lo[2], lo[4], lo[8], hi[1], hi[2], hi[4], hi[8]]
    }

    /// `s·b` as a bit-plane sum: each term is a branch-free select of
    /// `p[i]` by bit `i` of `b`. Written per-byte so LLVM vectorizes the
    /// surrounding loop into wide compares/selects.
    #[inline(always)]
    fn select(p: &[u8; 8], b: u8) -> u8 {
        let mut r = (b & 1).wrapping_neg() & p[0];
        r ^= ((b >> 1) & 1).wrapping_neg() & p[1];
        r ^= ((b >> 2) & 1).wrapping_neg() & p[2];
        r ^= ((b >> 3) & 1).wrapping_neg() & p[3];
        r ^= ((b >> 4) & 1).wrapping_neg() & p[4];
        r ^= ((b >> 5) & 1).wrapping_neg() & p[5];
        r ^= ((b >> 6) & 1).wrapping_neg() & p[6];
        r ^= (b >> 7).wrapping_neg() & p[7];
        r
    }

    pub(super) fn mul(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let p = planes(lo, hi);
        for (d, s) in dst.iter_mut().zip(src) {
            *d = select(&p, *s);
        }
    }

    pub(super) fn mul_add(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let p = planes(lo, hi);
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= select(&p, *s);
        }
    }

    pub(super) fn mul_in_place(lo: &[u8; 16], hi: &[u8; 16], buf: &mut [u8]) {
        let p = planes(lo, hi);
        for b in buf.iter_mut() {
            *b = select(&p, *b);
        }
    }
}

/// The nibble tables *are* the `PSHUFB` lookup tables: `PSHUFB` indexes a
/// 16-byte register by the low 4 bits of each lane, which is exactly the
/// `lo`/`hi` split. Each 16/32-byte step masks out both nibbles, shuffles
/// both tables, and XORs. Tails shorter than one vector fall back to the
/// scalar tier.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::{scalar, Kernel, KernelTier};
    use std::arch::x86_64::*;

    pub(super) static SSSE3: Kernel = Kernel {
        tier: KernelTier::Ssse3,
        mul: ssse3_mul,
        mul_add: ssse3_mul_add,
        mul_in_place: ssse3_mul_in_place,
    };

    pub(super) static AVX2: Kernel = Kernel {
        tier: KernelTier::Avx2,
        mul: avx2_mul,
        mul_add: avx2_mul_add,
        mul_in_place: avx2_mul_in_place,
    };

    // SAFETY (all six wrappers): the `#[target_feature]` inner functions
    // are only reachable through the SSSE3/AVX2 vtables above, which
    // `Kernel::for_tier` hands out only after the matching
    // `is_x86_feature_detected!` probe succeeded on this host.

    fn ssse3_mul(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        unsafe { ssse3_mul_impl(lo, hi, src, dst) }
    }

    fn ssse3_mul_add(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        unsafe { ssse3_mul_add_impl(lo, hi, src, dst) }
    }

    fn ssse3_mul_in_place(lo: &[u8; 16], hi: &[u8; 16], buf: &mut [u8]) {
        unsafe { ssse3_mul_in_place_impl(lo, hi, buf) }
    }

    fn avx2_mul(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        unsafe { avx2_mul_impl(lo, hi, src, dst) }
    }

    fn avx2_mul_add(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        unsafe { avx2_mul_add_impl(lo, hi, src, dst) }
    }

    fn avx2_mul_in_place(lo: &[u8; 16], hi: &[u8; 16], buf: &mut [u8]) {
        unsafe { avx2_mul_in_place_impl(lo, hi, buf) }
    }

    /// Shuffles one 16-byte lane through both nibble tables.
    #[inline(always)]
    unsafe fn shuffle128(tlo: __m128i, thi: __m128i, mask: __m128i, v: __m128i) -> __m128i {
        let lo_n = _mm_and_si128(v, mask);
        let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(v), mask);
        _mm_xor_si128(_mm_shuffle_epi8(tlo, lo_n), _mm_shuffle_epi8(thi, hi_n))
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul_impl(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let tlo = _mm_loadu_si128(lo.as_ptr().cast());
        let thi = _mm_loadu_si128(hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = src.len() / 16 * 16;
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let r = shuffle128(tlo, thi, mask, v);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), r);
            i += 16;
        }
        for j in n..src.len() {
            dst[j] = scalar::mul_b(lo, hi, src[j]);
        }
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul_add_impl(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let tlo = _mm_loadu_si128(lo.as_ptr().cast());
        let thi = _mm_loadu_si128(hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = src.len() / 16 * 16;
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let r = shuffle128(tlo, thi, mask, v);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, r));
            i += 16;
        }
        for j in n..src.len() {
            dst[j] ^= scalar::mul_b(lo, hi, src[j]);
        }
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul_in_place_impl(lo: &[u8; 16], hi: &[u8; 16], buf: &mut [u8]) {
        let tlo = _mm_loadu_si128(lo.as_ptr().cast());
        let thi = _mm_loadu_si128(hi.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = buf.len() / 16 * 16;
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_si128(buf.as_ptr().add(i).cast());
            let r = shuffle128(tlo, thi, mask, v);
            _mm_storeu_si128(buf.as_mut_ptr().add(i).cast(), r);
            i += 16;
        }
        for b in buf[n..].iter_mut() {
            *b = scalar::mul_b(lo, hi, *b);
        }
    }

    /// Shuffles one 32-byte lane-pair through both (broadcast) tables.
    #[inline(always)]
    unsafe fn shuffle256(tlo: __m256i, thi: __m256i, mask: __m256i, v: __m256i) -> __m256i {
        let lo_n = _mm256_and_si256(v, mask);
        let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask);
        _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, lo_n),
            _mm256_shuffle_epi8(thi, hi_n),
        )
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul_impl(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = src.len() / 32 * 32;
        let mut i = 0;
        while i < n {
            let v = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let r = shuffle256(tlo, thi, mask, v);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), r);
            i += 32;
        }
        for j in n..src.len() {
            dst[j] = scalar::mul_b(lo, hi, src[j]);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul_add_impl(lo: &[u8; 16], hi: &[u8; 16], src: &[u8], dst: &mut [u8]) {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = src.len() / 32 * 32;
        let mut i = 0;
        while i < n {
            let v = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let r = shuffle256(tlo, thi, mask, v);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, r));
            i += 32;
        }
        for j in n..src.len() {
            dst[j] ^= scalar::mul_b(lo, hi, src[j]);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul_in_place_impl(lo: &[u8; 16], hi: &[u8; 16], buf: &mut [u8]) {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast()));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = buf.len() / 32 * 32;
        let mut i = 0;
        while i < n {
            let v = _mm256_loadu_si256(buf.as_ptr().add(i).cast());
            let r = shuffle256(tlo, thi, mask, v);
            _mm256_storeu_si256(buf.as_mut_ptr().add(i).cast(), r);
            i += 32;
        }
        for b in buf[n..].iter_mut() {
            *b = scalar::mul_b(lo, hi, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;

    #[test]
    fn tier_names_round_trip() {
        for tier in KernelTier::ALL {
            assert_eq!(KernelTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(KernelTier::parse("AVX2"), Some(KernelTier::Avx2));
        assert_eq!(KernelTier::parse(" swar "), Some(KernelTier::Swar));
        assert_eq!(KernelTier::parse("neon"), None);
    }

    #[test]
    fn scalar_and_swar_always_supported() {
        assert_eq!(
            Kernel::for_tier(KernelTier::Scalar).unwrap().tier(),
            KernelTier::Scalar
        );
        assert_eq!(
            Kernel::for_tier(KernelTier::Swar).unwrap().tier(),
            KernelTier::Swar
        );
        let tiers: Vec<KernelTier> = Kernel::supported().iter().map(|k| k.tier()).collect();
        assert!(tiers.windows(2).all(|w| w[0] < w[1]), "sorted: {tiers:?}");
        assert!(Kernel::supported().len() >= 2);
    }

    #[test]
    fn active_is_a_supported_tier() {
        let active = Kernel::active().tier();
        assert!(Kernel::supported().iter().any(|k| k.tier() == active));
    }

    #[test]
    fn every_tier_handles_zero_and_one_scalars() {
        let src: Vec<u8> = (0..100u8).collect();
        for kernel in Kernel::supported() {
            let t0 = Gf256MulTable::new(Gf256::ZERO);
            let t1 = Gf256MulTable::new(Gf256::ONE);

            let mut dst = vec![0xEEu8; src.len()];
            kernel.mul_slice(&t0, &src, &mut dst);
            assert!(dst.iter().all(|&b| b == 0));
            kernel.mul_slice(&t1, &src, &mut dst);
            assert_eq!(dst, src);

            let mut acc = vec![0xF0u8; src.len()];
            kernel.mul_add_slice(&t0, &src, &mut acc);
            assert!(acc.iter().all(|&b| b == 0xF0));
            kernel.mul_add_slice(&t1, &src, &mut acc);
            let expect: Vec<u8> = src.iter().map(|&b| b ^ 0xF0).collect();
            assert_eq!(acc, expect);

            let mut buf = src.clone();
            kernel.mul_slice_in_place(&t1, &mut buf);
            assert_eq!(buf, src);
            kernel.mul_slice_in_place(&t0, &mut buf);
            assert!(buf.iter().all(|&b| b == 0));
        }
    }
}

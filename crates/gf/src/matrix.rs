//! Dense matrices over a finite [`Field`].
//!
//! Reed–Solomon erasure coding is matrix arithmetic: a systematic code is a
//! `(k + m) × k` encoding matrix whose top `k × k` block is the identity;
//! decoding inverts the `k × k` submatrix of surviving rows. This module
//! provides the matrix constructions ([`Matrix::vandermonde`],
//! [`Matrix::cauchy`], [`Matrix::rs_systematic`]) and the Gaussian
//! elimination machinery behind that.

use crate::Field;

/// A dense row-major matrix over a finite field.
///
/// # Examples
///
/// ```
/// use aeon_gf::{Field, Gf256, Matrix};
///
/// let id = Matrix::<Gf256>::identity(3);
/// let inv = id.inverse().unwrap();
/// assert_eq!(id, inv);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix is singular and cannot be inverted.
    Singular,
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// A non-square matrix was passed where a square one is required.
    NotSquare,
}

impl core::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl<F: Field> Matrix<F> {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<F>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Creates an `rows × cols` Vandermonde matrix with row `i` equal to
    /// `[1, x_i, x_i², …]` for `x_i = from_u64(i)`. Any `cols` rows with
    /// distinct `x_i` are linearly independent, the property that makes
    /// Vandermonde matrices suitable for MDS erasure codes.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let x = F::from_u64(r as u64);
            let mut p = F::ONE;
            for c in 0..cols {
                m[(r, c)] = p;
                p *= x;
            }
        }
        m
    }

    /// Creates an `rows × cols` Cauchy matrix `a[i][j] = 1/(x_i + y_j)`
    /// with `x_i = from_u64(i + cols)` and `y_j = from_u64(j)`. Every
    /// square submatrix of a Cauchy matrix is invertible.
    ///
    /// # Panics
    ///
    /// Panics if `rows + cols` exceeds the field order (the x's and y's
    /// must be disjoint).
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(
            (rows + cols) as u64 <= F::ORDER,
            "field too small for Cauchy matrix of {rows}+{cols} points"
        );
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let x = F::from_u64((r + cols) as u64);
            for c in 0..cols {
                let y = F::from_u64(c as u64);
                m[(r, c)] = (x - y)
                    .inverse()
                    .expect("x_i and y_j are distinct by construction");
            }
        }
        m
    }

    /// Builds the `(k + m) × k` systematic Reed–Solomon encoding matrix:
    /// identity on top, Cauchy parity rows below. Multiplying by a
    /// `k`-vector of data yields `k` unchanged data symbols plus `m` parity
    /// symbols; any `k` of the `k + m` rows are invertible.
    ///
    /// # Panics
    ///
    /// Panics if `k + m` exceeds the field order.
    pub fn rs_systematic(k: usize, m: usize) -> Self {
        let mut out = Matrix::zeros(k + m, k);
        for i in 0..k {
            out[(i, i)] = F::ONE;
        }
        let parity = Matrix::cauchy(m, k);
        for r in 0..m {
            for c in 0..k {
                out[(k + r, c)] = parity[(r, c)];
            }
        }
        out
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[F] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix containing only the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        Matrix::from_rows(indices.len(), self.cols, data)
    }

    /// Matrix × matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Self) -> Result<Self, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = a * rhs[(k, j)];
                    out[(i, j)] += v;
                }
            }
        }
        Ok(out)
    }

    /// Matrix × vector multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `vec.len() != cols`.
    pub fn mul_vec(&self, vec: &[F]) -> Result<Vec<F>, MatrixError> {
        if vec.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (vec.len(), 1),
            });
        }
        let mut out = vec![F::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = F::ZERO;
            for (j, &v) in vec.iter().enumerate() {
                acc += self[(i, j)] * v;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Inverts the matrix by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square input and
    /// [`MatrixError::Singular`] if no inverse exists.
    pub fn inverse(&self) -> Result<Self, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                .ok_or(MatrixError::Singular)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let scale = a[(col, col)]
                .inverse()
                .expect("pivot is nonzero by construction");
            a.scale_row(col, scale);
            inv.scale_row(col, scale);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor.is_zero() {
                    continue;
                }
                a.sub_scaled_row(r, col, factor);
                inv.sub_scaled_row(r, col, factor);
            }
        }
        Ok(inv)
    }

    /// Returns the rank of the matrix (Gaussian elimination over a copy).
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..a.cols {
            if row >= a.rows {
                break;
            }
            let pivot = (row..a.rows).find(|&r| !a[(r, col)].is_zero());
            let Some(pivot) = pivot else { continue };
            a.swap_rows(pivot, row);
            let scale = a[(row, col)].inverse().expect("nonzero pivot");
            a.scale_row(row, scale);
            for r in 0..a.rows {
                if r != row && !a[(r, col)].is_zero() {
                    let factor = a[(r, col)];
                    a.sub_scaled_row(r, row, factor);
                }
            }
            row += 1;
            rank += 1;
        }
        rank
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, s: F) {
        for c in 0..self.cols {
            self[(r, c)] *= s;
        }
    }

    /// row_r -= factor * row_src
    fn sub_scaled_row(&mut self, r: usize, src: usize, factor: F) {
        for c in 0..self.cols {
            let v = self[(src, c)] * factor;
            self[(r, c)] -= v;
        }
    }
}

impl<F: Field> core::ops::Index<(usize, usize)> for Matrix<F> {
    type Output = F;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &F {
        &self.data[r * self.cols + c]
    }
}

impl<F: Field> core::ops::IndexMut<(usize, usize)> for Matrix<F> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut F {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf256};

    #[test]
    fn identity_inverse() {
        let id = Matrix::<Gf256>::identity(5);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn vandermonde_square_invertible() {
        for n in 1..=8 {
            let v = Matrix::<Gf256>::vandermonde(n, n);
            // Row 0 uses x=0 making first column all-ones; distinct x keeps
            // it invertible.
            let inv = v.inverse().unwrap();
            let prod = v.mul(&inv).unwrap();
            assert_eq!(prod, Matrix::identity(n), "n = {n}");
        }
    }

    #[test]
    fn cauchy_every_square_submatrix_invertible() {
        let c = Matrix::<Gf256>::cauchy(4, 4);
        // All single-row/col selections and a few multi-selections.
        for rows in [&[0usize][..], &[1, 3], &[0, 1, 2], &[0, 1, 2, 3]] {
            let sub = c.select_rows(rows);
            // Select matching number of columns by transposing selection via
            // full-rank check.
            assert_eq!(sub.rank(), rows.len());
        }
    }

    #[test]
    fn rs_systematic_any_k_rows_invertible() {
        let k = 4;
        let m = 3;
        let enc = Matrix::<Gf256>::rs_systematic(k, m);
        assert_eq!(enc.rows(), k + m);
        // A few representative surviving-row subsets.
        let subsets: &[&[usize]] = &[
            &[0, 1, 2, 3],
            &[3, 4, 5, 6],
            &[0, 2, 4, 6],
            &[1, 3, 5, 6],
            &[0, 1, 5, 6],
        ];
        for rows in subsets {
            let sub = enc.select_rows(rows);
            assert!(sub.inverse().is_ok(), "rows {rows:?} not invertible");
        }
    }

    #[test]
    fn mul_vec_systematic_prefix_is_identity() {
        let enc = Matrix::<Gf256>::rs_systematic(3, 2);
        let data = vec![Gf256::new(10), Gf256::new(20), Gf256::new(30)];
        let encoded = enc.mul_vec(&data).unwrap();
        assert_eq!(&encoded[..3], &data[..]);
        assert_eq!(encoded.len(), 5);
    }

    #[test]
    fn decode_roundtrip_via_inverse() {
        let k = 5;
        let m = 3;
        let enc = Matrix::<Gf16>::rs_systematic(k, m);
        let data: Vec<Gf16> = (0..k as u16).map(|i| Gf16::new(i * 7 + 1)).collect();
        let encoded = enc.mul_vec(&data).unwrap();
        // Lose rows 0, 2, 4 — decode from rows [1,3,5,6,7].
        let survivors = [1usize, 3, 5, 6, 7];
        let sub = enc.select_rows(&survivors);
        let dec = sub.inverse().unwrap();
        let surviving: Vec<Gf16> = survivors.iter().map(|&r| encoded[r]).collect();
        let recovered = dec.mul_vec(&surviving).unwrap();
        assert_eq!(recovered, data);
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::<Gf256>::zeros(2, 2);
        m[(0, 0)] = Gf256::new(1);
        m[(0, 1)] = Gf256::new(2);
        m[(1, 0)] = Gf256::new(1);
        m[(1, 1)] = Gf256::new(2);
        assert_eq!(m.inverse(), Err(MatrixError::Singular));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn not_square_rejected() {
        let m = Matrix::<Gf256>::zeros(2, 3);
        assert_eq!(m.inverse(), Err(MatrixError::NotSquare));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::<Gf256>::zeros(2, 3);
        let b = Matrix::<Gf256>::zeros(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
        assert!(a.mul_vec(&[Gf256::ZERO; 2]).is_err());
    }

    #[test]
    fn mul_associative() {
        let a = Matrix::<Gf256>::vandermonde(3, 3);
        let b = Matrix::<Gf256>::cauchy(3, 3);
        let c = Matrix::<Gf256>::identity(3);
        let ab_c = a.mul(&b).unwrap().mul(&c).unwrap();
        let a_bc = a.mul(&b.mul(&c).unwrap()).unwrap();
        assert_eq!(ab_c, a_bc);
    }
}

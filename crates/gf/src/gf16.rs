//! GF(2^16) arithmetic with compile-time log/exp tables.

// Characteristic-2 field arithmetic legitimately implements `Add` with XOR
// and `Div` with multiply-by-inverse; silence clippy's suspicion once here.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use crate::Field;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Reducing polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B), a standard
/// primitive polynomial for GF(2^16).
const POLY: u32 = 0x1100B;
/// 0x3 (= x + 1) is a generator for this polynomial.
const GENERATOR: u16 = 0x3;

const ORDER_MINUS_1: usize = 65_535;

const fn build_exp() -> [u16; 2 * ORDER_MINUS_1] {
    let mut exp = [0u16; 2 * ORDER_MINUS_1];
    let mut x: u32 = 1;
    let mut i = 0usize;
    while i < ORDER_MINUS_1 {
        exp[i] = x as u16;
        exp[i + ORDER_MINUS_1] = x as u16;
        let mut nx = (x << 1) ^ x;
        if nx & 0x10000 != 0 {
            nx ^= POLY;
        }
        x = nx;
        i += 1;
    }
    exp
}

const fn build_log(exp: &[u16; 2 * ORDER_MINUS_1]) -> [u16; 65_536] {
    let mut log = [0u16; 65_536];
    let mut i = 0usize;
    while i < ORDER_MINUS_1 {
        log[exp[i] as usize] = i as u16;
        i += 1;
    }
    log
}

static EXP: [u16; 2 * ORDER_MINUS_1] = build_exp();
static LOG: [u16; 65_536] = build_log(&EXP);

/// An element of GF(2^16) under the polynomial `x^16 + x^12 + x^3 + x + 1`.
///
/// The 65 536-element field provides enough distinct evaluation points for
/// *packed* secret sharing with realistic pack widths and share counts,
/// which GF(2^8) (255 usable points) cannot.
///
/// # Examples
///
/// ```
/// use aeon_gf::{Field, Gf16};
///
/// let a = Gf16::new(0x1234);
/// let inv = a.inverse().unwrap();
/// assert_eq!(a * inv, Gf16::ONE);
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gf16(pub u16);

impl Gf16 {
    /// The additive identity.
    pub const ZERO: Self = Gf16(0);
    /// The multiplicative identity.
    pub const ONE: Self = Gf16(1);

    /// Creates an element from its 16-bit representation.
    #[inline]
    pub const fn new(v: u16) -> Self {
        Gf16(v)
    }

    /// Returns the 16-bit representation of the element.
    #[inline]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Returns the canonical generator of the multiplicative group.
    pub const fn generator() -> Self {
        Gf16(GENERATOR)
    }
}

impl fmt::Debug for Gf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf16(0x{:04X})", self.0)
    }
}

impl fmt::Display for Gf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04X}", self.0)
    }
}

impl From<u16> for Gf16 {
    fn from(v: u16) -> Self {
        Gf16(v)
    }
}

impl From<Gf16> for u16 {
    fn from(v: Gf16) -> Self {
        v.0
    }
}

impl Add for Gf16 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf16(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf16 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf16 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Gf16(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Mul for Gf16 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf16::ZERO;
        }
        let li = LOG[self.0 as usize] as usize;
        let lr = LOG[rhs.0 as usize] as usize;
        Gf16(EXP[li + lr])
    }
}

impl MulAssign for Gf16 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Gf16 {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Self) -> Self {
        let inv = rhs.inverse().expect("division by zero in GF(2^16)");
        self * inv
    }
}

impl DivAssign for Gf16 {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Neg for Gf16 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self
    }
}

impl Field for Gf16 {
    const ZERO: Self = Gf16(0);
    const ONE: Self = Gf16(1);
    const ORDER: u64 = 65_536;
    const BYTES: usize = 2;

    fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let l = LOG[self.0 as usize] as usize;
        Some(Gf16(EXP[ORDER_MINUS_1 - l]))
    }

    fn from_u64(v: u64) -> Self {
        Gf16((v % 65_536) as u16)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip_samples() {
        for v in (1..=65_535u16).step_by(97) {
            let l = LOG[v as usize] as usize;
            assert_eq!(EXP[l], v);
        }
        // And the extremes.
        for v in [1u16, 2, 3, 0xFFFF, 0x8000, 0x1001] {
            assert_eq!(EXP[LOG[v as usize] as usize], v);
        }
    }

    #[test]
    fn inverse_samples() {
        assert!(Gf16::ZERO.inverse().is_none());
        for v in (1..=65_535u16).step_by(101) {
            let a = Gf16(v);
            assert_eq!(a * a.inverse().unwrap(), Gf16::ONE);
        }
    }

    #[test]
    fn mul_associative_samples() {
        let vals = [0x0001u16, 0x0003, 0x00FF, 0x0100, 0x1234, 0xFFFF, 0x8000];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let (a, b, c) = (Gf16(a), Gf16(b), Gf16(c));
                    assert_eq!((a * b) * c, a * (b * c));
                }
            }
        }
    }

    #[test]
    fn distributive_samples() {
        let vals = [0x0002u16, 0x0071, 0x0456, 0xABCD, 0xFFFE];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let (a, b, c) = (Gf16(a), Gf16(b), Gf16(c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn pow_and_fermat() {
        // a^(2^16 - 1) == 1 for all nonzero a (Fermat's little theorem
        // analogue for finite fields).
        for v in (1..=65_535u16).step_by(1009) {
            assert_eq!(Gf16(v).pow(65_535), Gf16::ONE);
        }
    }

    #[test]
    fn generator_reaches_distinct_early_powers() {
        let g = Gf16::generator();
        let mut seen = std::collections::HashSet::new();
        let mut x = Gf16::ONE;
        for _ in 0..10_000 {
            assert!(seen.insert(x.0), "cycle shorter than expected");
            x *= g;
        }
    }
}

//! Property-based tests for field axioms, interpolation, and matrices.

use aeon_gf::poly::{lagrange_eval, Polynomial};
use aeon_gf::{Field, Gf16, Gf256, Matrix};
use proptest::prelude::*;

fn gf256() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn gf16() -> impl Strategy<Value = Gf16> {
    any::<u16>().prop_map(Gf16::new)
}

proptest! {
    #[test]
    fn gf256_add_commutes(a in gf256(), b in gf256()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn gf256_mul_associates(a in gf256(), b in gf256(), c in gf256()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn gf256_distributes(a in gf256(), b in gf256(), c in gf256()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn gf256_self_inverse_addition(a in gf256()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn gf256_inverse_law(a in gf256()) {
        if let Some(inv) = a.inverse() {
            prop_assert_eq!(a * inv, Gf256::ONE);
        } else {
            prop_assert_eq!(a, Gf256::ZERO);
        }
    }

    #[test]
    fn gf16_mul_commutes(a in gf16(), b in gf16()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn gf16_distributes(a in gf16(), b in gf16(), c in gf16()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn gf16_inverse_law(a in gf16()) {
        if let Some(inv) = a.inverse() {
            prop_assert_eq!(a * inv, Gf16::ONE);
        } else {
            prop_assert_eq!(a, Gf16::ZERO);
        }
    }

    #[test]
    fn gf16_pow_homomorphism(a in gf16(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    /// Interpolating a random polynomial through deg+1 distinct points
    /// recovers its evaluation anywhere.
    #[test]
    fn interpolation_recovers_polynomial(
        coeffs in prop::collection::vec(gf16(), 1..8),
        probe in gf16(),
    ) {
        let p = Polynomial::new(coeffs.clone());
        let pts: Vec<(Gf16, Gf16)> = (1..=coeffs.len() as u16)
            .map(|i| (Gf16::new(i), p.eval(Gf16::new(i))))
            .collect();
        let at_probe = lagrange_eval(&pts, probe).unwrap();
        prop_assert_eq!(at_probe, p.eval(probe));
    }

    /// Every k-subset of a systematic RS encoding decodes back to the data.
    #[test]
    fn rs_any_k_rows_decode(
        data in prop::collection::vec(gf256(), 2..6),
        extra in 1usize..4,
        seed in any::<u64>(),
    ) {
        let k = data.len();
        let m = extra;
        let enc = Matrix::<Gf256>::rs_systematic(k, m);
        let encoded = enc.mul_vec(&data).unwrap();
        // Pseudo-random k-subset of rows from the seed.
        let mut rows: Vec<usize> = (0..k + m).collect();
        let mut s = seed;
        for i in (1..rows.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            rows.swap(i, j);
        }
        rows.truncate(k);
        rows.sort_unstable();
        let sub = enc.select_rows(&rows);
        let inv = sub.inverse().unwrap();
        let surviving: Vec<Gf256> = rows.iter().map(|&r| encoded[r]).collect();
        let rec = inv.mul_vec(&surviving).unwrap();
        prop_assert_eq!(rec, data);
    }

    /// Matrix inverse is a two-sided inverse.
    #[test]
    fn inverse_two_sided(n in 1usize..6, seed in any::<u64>()) {
        // Build a random matrix; skip singular draws.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Gf256::new((s >> 56) as u8)
        };
        let data: Vec<Gf256> = (0..n * n).map(|_| next()).collect();
        let m = Matrix::from_rows(n, n, data);
        if let Ok(inv) = m.inverse() {
            prop_assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(n));
            prop_assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(n));
        }
    }
}

//! Cross-tier kernel parity: every dispatch tier must be byte-identical
//! to the log/exp field reference on every scalar and on lengths that
//! straddle the vector widths (8-byte SWAR words, 16-byte SSSE3 lanes,
//! 32-byte AVX2 lanes, and the 16 KiB fused-row strip).

use aeon_gf::slice::{
    gf16_mul_add_rows, mul_add_rows, mul_add_rows_on, Gf16MulTable, Gf256MulTable,
};
use aeon_gf::{Gf16, Gf256, Kernel, KernelTier};
use proptest::prelude::*;

/// Ragged lengths covering the remainder paths of every tier.
const LENGTHS: [usize; 9] = [0, 1, 7, 8, 9, 63, 64, 65, 4096 + 3];

/// Deterministic non-trivial byte pattern.
fn pattern(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 + salt * 101 + 11) as u8).collect()
}

fn pattern16(len: usize, salt: usize) -> Vec<u16> {
    (0..len)
        .map(|i| (i * 4099 + salt * 31 + 7) as u16)
        .collect()
}

#[test]
fn every_tier_matches_log_exp_reference_exhaustively() {
    for kernel in Kernel::supported() {
        for s in 0..=255u8 {
            let scalar = Gf256::new(s);
            let table = Gf256MulTable::new(scalar);
            for len in LENGTHS {
                let src = pattern(len, s as usize);
                let init = pattern(len, s as usize + 1);
                let label = format!("tier={} s={s} len={len}", kernel.tier().name());

                let expect_mul: Vec<u8> = src
                    .iter()
                    .map(|&b| (scalar * Gf256::new(b)).value())
                    .collect();
                let mut got = vec![0u8; len];
                kernel.mul_slice(&table, &src, &mut got);
                assert_eq!(got, expect_mul, "mul_slice {label}");

                let mut got = src.clone();
                kernel.mul_slice_in_place(&table, &mut got);
                assert_eq!(got, expect_mul, "mul_slice_in_place {label}");

                let expect_acc: Vec<u8> =
                    init.iter().zip(&expect_mul).map(|(&d, &p)| d ^ p).collect();
                let mut got = init.clone();
                kernel.mul_add_slice(&table, &src, &mut got);
                assert_eq!(got, expect_acc, "mul_add_slice {label}");
            }
        }
    }
}

#[test]
fn fused_rows_match_serial_reference_on_every_tier() {
    // Row counts from degenerate to RS-like; lengths crossing the strip
    // boundary (16 KiB) exercise the cache-blocked accumulation order.
    for kernel in Kernel::supported() {
        for row_count in [0usize, 1, 3, 8] {
            for len in [0usize, 1, 9, 65, 4099, 40_000] {
                let coeffs: Vec<Gf256> = (0..row_count)
                    .map(|r| Gf256::new([0, 1, 0xB7, 0x02, 0x8E, 0xFF, 0x53, 0x1C][r % 8]))
                    .collect();
                let sources: Vec<Vec<u8>> = (0..row_count).map(|r| pattern(len, r + 2)).collect();
                let tables: Vec<Gf256MulTable> =
                    coeffs.iter().map(|&c| Gf256MulTable::new(c)).collect();

                let mut expect = pattern(len, 99);
                for (c, src) in coeffs.iter().zip(&sources) {
                    for (d, &s) in expect.iter_mut().zip(src) {
                        *d = (Gf256::new(*d) + *c * Gf256::new(s)).value();
                    }
                }

                let trows: Vec<(&Gf256MulTable, &[u8])> = tables
                    .iter()
                    .zip(&sources)
                    .map(|(t, s)| (t, s.as_slice()))
                    .collect();
                let mut got = pattern(len, 99);
                mul_add_rows_on(kernel, &mut got, &trows);
                assert_eq!(
                    got,
                    expect,
                    "tier={} rows={row_count} len={len}",
                    kernel.tier().name()
                );
            }
        }
    }
}

#[test]
fn mul_add_rows_active_dispatch_matches_reference() {
    let len = 5000;
    let a = pattern(len, 1);
    let b = pattern(len, 2);
    let rows: Vec<(Gf256, &[u8])> = vec![
        (Gf256::new(0x03), a.as_slice()),
        (Gf256::new(0xC6), b.as_slice()),
    ];
    let mut got = pattern(len, 3);
    let mut expect = got.clone();
    mul_add_rows(&mut got, &rows);
    for &(c, src) in &rows {
        for (d, &s) in expect.iter_mut().zip(src) {
            *d = (Gf256::new(*d) + c * Gf256::new(s)).value();
        }
    }
    assert_eq!(got, expect);
}

#[test]
fn gf16_kernels_match_log_exp_reference_on_sampled_scalars() {
    // GF(2^16) has no SIMD tiers, but the table kernels and the fused
    // row accumulation (with its short-buffer log/exp fallback) must
    // agree with the field reference on the same ragged lengths.
    let scalars = [
        0u16, 1, 2, 3, 0x0100, 0x1234, 0x8001, 0xABCD, 0xFFFE, 0xFFFF,
    ];
    for &s in &scalars {
        let scalar = Gf16::new(s);
        let table = Gf16MulTable::new(scalar);
        for len in LENGTHS {
            let src = pattern16(len, s as usize);
            let init = pattern16(len, s as usize + 1);

            let expect_mul: Vec<u16> = src
                .iter()
                .map(|&v| (scalar * Gf16::new(v)).value())
                .collect();
            let mut got = vec![0u16; len];
            table.mul_slice(&src, &mut got);
            assert_eq!(got, expect_mul, "gf16 mul_slice s={s:#x} len={len}");

            let mut got = src.clone();
            table.mul_slice_in_place(&mut got);
            assert_eq!(
                got, expect_mul,
                "gf16 mul_slice_in_place s={s:#x} len={len}"
            );

            let expect_acc: Vec<u16> = init.iter().zip(&expect_mul).map(|(&d, &p)| d ^ p).collect();
            let mut got = init.clone();
            table.mul_add_slice(&src, &mut got);
            assert_eq!(got, expect_acc, "gf16 mul_add_slice s={s:#x} len={len}");
        }
    }
}

#[test]
fn gf16_fused_rows_match_serial_reference_across_fallback_threshold() {
    // Lengths on both sides of the table-build break-even (64 symbols)
    // and past the strip size (8192 symbols).
    for len in [0usize, 1, 63, 64, 65, 4099, 10_000] {
        for row_count in [0usize, 1, 4] {
            let coeffs: Vec<Gf16> = (0..row_count)
                .map(|r| Gf16::new([0u16, 1, 0x1234, 0x8001][r % 4]))
                .collect();
            let sources: Vec<Vec<u16>> = (0..row_count).map(|r| pattern16(len, r + 5)).collect();

            let mut expect = pattern16(len, 77);
            for (c, src) in coeffs.iter().zip(&sources) {
                for (d, &s) in expect.iter_mut().zip(src) {
                    *d = (Gf16::new(*d) + *c * Gf16::new(s)).value();
                }
            }

            let rows: Vec<(Gf16, &[u16])> = coeffs
                .iter()
                .zip(&sources)
                .map(|(&c, s)| (c, s.as_slice()))
                .collect();
            let mut got = pattern16(len, 77);
            gf16_mul_add_rows(&mut got, &rows);
            assert_eq!(got, expect, "gf16 rows={row_count} len={len}");
        }
    }
}

#[test]
fn forced_tier_parse_covers_all_tiers() {
    // The dispatch override itself is env-driven and cached per process;
    // CI runs this whole suite once under AEON_FORCE_KERNEL=scalar and
    // once unset. Here we pin the parse/fallback logic it rests on.
    for tier in KernelTier::ALL {
        assert_eq!(KernelTier::parse(tier.name()), Some(tier));
    }
    assert!(Kernel::for_tier(KernelTier::Scalar).is_some());
    assert!(Kernel::for_tier(KernelTier::Swar).is_some());
}

proptest! {
    /// Random scalars, lengths, and contents: all tiers agree with each
    /// other and with the reference on `mul_add_slice`.
    #[test]
    fn tiers_agree_on_random_inputs(
        s in any::<u8>(),
        init in prop::collection::vec(any::<u8>(), 0..300),
        seed in any::<u64>(),
    ) {
        let scalar = Gf256::new(s);
        let table = Gf256MulTable::new(scalar);
        let src: Vec<u8> = (0..init.len())
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
            .collect();
        let mut expect = init.clone();
        for (d, &b) in expect.iter_mut().zip(&src) {
            *d = (Gf256::new(*d) + scalar * Gf256::new(b)).value();
        }
        for kernel in Kernel::supported() {
            let mut got = init.clone();
            kernel.mul_add_slice(&table, &src, &mut got);
            prop_assert_eq!(&got, &expect, "tier {}", kernel.tier().name());
        }
    }

    /// Fused rows equal the serial per-coefficient loop for random
    /// shapes on the active kernel.
    #[test]
    fn fused_rows_equal_serial_on_random_shapes(
        coeffs in prop::collection::vec(any::<u8>(), 0..6),
        len in 0usize..500,
        seed in any::<u64>(),
    ) {
        let sources: Vec<Vec<u8>> = (0..coeffs.len())
            .map(|r| {
                (0..len)
                    .map(|i| (seed.wrapping_mul((r * len + i) as u64 + 7) >> 11) as u8)
                    .collect()
            })
            .collect();
        let init: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64) >> 3) as u8).collect();

        let mut serial = init.clone();
        for (&c, src) in coeffs.iter().zip(&sources) {
            Gf256MulTable::new(Gf256::new(c)).mul_add_slice(src, &mut serial);
        }

        let rows: Vec<(Gf256, &[u8])> = coeffs
            .iter()
            .zip(&sources)
            .map(|(&c, s)| (Gf256::new(c), s.as_slice()))
            .collect();
        let mut fused = init;
        mul_add_rows(&mut fused, &rows);
        prop_assert_eq!(fused, serial);
    }
}

//! Property tests: channel roundtrips, OTP accounting, BSM bounds.

use aeon_channel::bsm::{expected_known_fraction, run_session, BsmParams};
use aeon_channel::qkd::OtpChannel;
use aeon_channel::transport::{End, Link};
use aeon_crypto::{ChaChaDrbg, CryptoRng};
use proptest::prelude::*;

proptest! {
    /// Any sequence of frames crosses the link in order, both directions.
    #[test]
    fn link_is_fifo(frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..20)) {
        let mut link = Link::lan();
        for f in &frames {
            link.send(End::A, f.clone());
        }
        for f in &frames {
            prop_assert_eq!(link.recv(End::B).unwrap(), f.clone());
        }
        prop_assert!(link.recv(End::B).is_none());
    }

    /// OTP channel: any message sequence roundtrips while pad lasts, and
    /// pad consumption is exact (len + 32 per record).
    #[test]
    fn otp_channel_accounting(msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
                              seed in any::<u64>()) {
        let total_need: usize = msgs.iter().map(|m| m.len() + 32).sum();
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let mut pad = vec![0u8; total_need];
        rng.fill_bytes(&mut pad);
        let mut tx = OtpChannel::new(pad.clone());
        let mut rx = OtpChannel::new(pad);
        for m in &msgs {
            let before = tx.remaining();
            let record = tx.seal(m).unwrap();
            prop_assert_eq!(before - tx.remaining(), m.len() + 32);
            prop_assert_eq!(&rx.open(&record).unwrap(), m);
        }
        prop_assert_eq!(tx.remaining(), 0);
    }

    /// OTP records never contain the plaintext verbatim (for messages of
    /// ≥ 8 bytes; shorter windows collide by chance).
    #[test]
    fn otp_record_hides_plaintext(m in prop::collection::vec(any::<u8>(), 8..64), seed in any::<u64>()) {
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let mut pad = vec![0u8; m.len() + 32];
        rng.fill_bytes(&mut pad);
        let mut tx = OtpChannel::new(pad);
        let record = tx.seal(&m).unwrap();
        prop_assert!(record.windows(m.len()).all(|w| w != &m[..]));
    }

    /// BSM: adversary's known fraction is bounded near B/N, and the
    /// honest storage stays samples × block_size.
    #[test]
    fn bsm_known_fraction_bounded(adv_pct in 0u32..=100, seed in any::<u64>()) {
        let params = BsmParams {
            stream_blocks: 512,
            block_size: 8,
            samples: 32,
        };
        let adv_blocks = (params.stream_blocks as u64 * adv_pct as u64 / 100) as usize;
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let out = run_session(&mut rng, params, adv_blocks);
        prop_assert_eq!(out.honest_storage, 32 * 8);
        let expect = expected_known_fraction(params, adv_blocks);
        // 4-sigma binomial bound on 32 samples.
        let sigma = (expect * (1.0 - expect) / 32.0).sqrt();
        prop_assert!((out.adversary_raw_fraction - expect).abs() <= 4.0 * sigma + 1e-9,
            "fraction {} vs expected {}", out.adversary_raw_fraction, expect);
        // Knows the final key iff it knew every sample.
        prop_assert_eq!(out.adversary_knows_final, out.adversary_known_samples == 32);
    }
}

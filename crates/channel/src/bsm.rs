//! Bounded Storage Model key agreement (Maurer).
//!
//! In the BSM, a huge public stream of random bits (a "satellite
//! broadcast") flows past everyone. Honest parties share a short initial
//! key that tells them *which positions to sample*; they store only those
//! few bits. An adversary may store any function of the stream up to a
//! storage bound `B` — but if `B` is a fraction of the stream, most of the
//! honest samples are information-theoretically unknown to it, and privacy
//! amplification squeezes the adversary's residual knowledge out of the
//! final key.
//!
//! The paper's §4 calls the BSM "overdue for a practical evaluation";
//! [`run_session`] is that experiment's engine: it streams `stream_len`
//! blocks, lets a bounded adversary store `adversary_storage` of them
//! (the strongest *memoryless* strategy — storing raw blocks — modelling
//! the classic analysis), and reports how much of the derived key the
//! adversary knows before and after privacy amplification.

use aeon_crypto::{CryptoRng, Sha256};

/// Parameters of a BSM key-agreement session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsmParams {
    /// Number of blocks in the public stream.
    pub stream_blocks: usize,
    /// Bytes per stream block.
    pub block_size: usize,
    /// Number of positions the honest parties sample.
    pub samples: usize,
}

impl BsmParams {
    /// A small laboratory configuration.
    pub fn lab() -> Self {
        BsmParams {
            stream_blocks: 4096,
            block_size: 32,
            samples: 64,
        }
    }
}

/// Outcome of a BSM session.
#[derive(Debug, Clone)]
pub struct BsmOutcome {
    /// The honest parties' agreed raw key (concatenated sampled blocks).
    pub raw_key: Vec<u8>,
    /// The final key after privacy amplification (hashing the unknown-to-
    /// adversary entropy down to a uniform key).
    pub amplified_key: [u8; 32],
    /// How many of the sampled blocks the adversary had stored.
    pub adversary_known_samples: usize,
    /// Fraction of raw key bytes known to the adversary.
    pub adversary_raw_fraction: f64,
    /// Whether the adversary can reconstruct the amplified key (true only
    /// if it knew *every* sampled block).
    pub adversary_knows_final: bool,
    /// Bytes the honest parties had to store.
    pub honest_storage: usize,
    /// Bytes the adversary stored.
    pub adversary_storage: usize,
}

/// Runs one BSM key-agreement session.
///
/// The adversary's strategy is to store `adversary_blocks` randomly chosen
/// blocks of the stream (it does not know the honest sample positions,
/// which are selected by the short shared key). This is the canonical
/// storage-bounded eavesdropper of Maurer's analysis.
///
/// # Panics
///
/// Panics if `samples > stream_blocks`.
pub fn run_session<R: CryptoRng + ?Sized>(
    rng: &mut R,
    params: BsmParams,
    adversary_blocks: usize,
) -> BsmOutcome {
    assert!(
        params.samples <= params.stream_blocks,
        "cannot sample more positions than stream blocks"
    );
    let n = params.stream_blocks;

    // Honest sample positions: a random subset selected by the shared
    // short key (modelled by drawing from the RNG).
    let honest_positions = sample_distinct(rng, n, params.samples);
    // Adversary stored positions (independent random subset).
    let adversary_positions = sample_distinct(rng, n, adversary_blocks.min(n));
    let adversary_set: std::collections::HashSet<usize> = adversary_positions.into_iter().collect();

    // Stream the blocks; both parties (and the adversary, for its subset)
    // sample on the fly — nobody stores the whole stream.
    let mut raw_key = Vec::with_capacity(params.samples * params.block_size);
    let mut known = 0usize;
    let honest_set: std::collections::HashSet<usize> = honest_positions.iter().copied().collect();
    let mut block = vec![0u8; params.block_size];
    let mut sampled: Vec<(usize, Vec<u8>)> = Vec::with_capacity(params.samples);
    for pos in 0..n {
        rng.fill_bytes(&mut block);
        if honest_set.contains(&pos) {
            sampled.push((pos, block.clone()));
            if adversary_set.contains(&pos) {
                known += 1;
            }
        }
    }
    // Deterministic order: by position.
    sampled.sort_by_key(|(p, _)| *p);
    for (_, b) in &sampled {
        raw_key.extend_from_slice(b);
    }

    // Privacy amplification: hash the raw key down to 32 bytes. If the
    // adversary misses even one sampled block, the hash output is (in the
    // random-oracle modelling of amplification) unknown to it.
    let amplified_key = Sha256::digest(&raw_key);

    BsmOutcome {
        adversary_raw_fraction: known as f64 / params.samples.max(1) as f64,
        adversary_knows_final: known == params.samples,
        adversary_known_samples: known,
        honest_storage: params.samples * params.block_size,
        adversary_storage: adversary_blocks.min(n) * params.block_size,
        raw_key,
        amplified_key,
    }
}

fn sample_distinct<R: CryptoRng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    // Floyd's algorithm for a uniform k-subset of [0, n).
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range((j + 1) as u64) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Analytic expectation of the adversary's known fraction: storing `b` of
/// `n` blocks catches each honest sample independently with probability
/// `b/n`.
pub fn expected_known_fraction(params: BsmParams, adversary_blocks: usize) -> f64 {
    (adversary_blocks.min(params.stream_blocks) as f64) / params.stream_blocks as f64
}

/// Probability the adversary learns the *final* key: it must know all
/// `samples` blocks, i.e. `(b/n)^samples` — exponentially small until its
/// storage approaches the entire stream.
pub fn final_key_compromise_probability(params: BsmParams, adversary_blocks: usize) -> f64 {
    expected_known_fraction(params, adversary_blocks).powi(params.samples as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    #[test]
    fn honest_parties_store_little() {
        let mut rng = ChaChaDrbg::from_u64_seed(8);
        let params = BsmParams::lab();
        let out = run_session(&mut rng, params, 1024);
        assert_eq!(out.honest_storage, 64 * 32);
        assert_eq!(out.raw_key.len(), 64 * 32);
        // Honest storage is a tiny fraction of the stream (4096 × 32).
        assert!(out.honest_storage * 32 <= params.stream_blocks * params.block_size);
    }

    #[test]
    fn weak_adversary_misses_key() {
        let mut rng = ChaChaDrbg::from_u64_seed(9);
        let params = BsmParams::lab();
        // Adversary stores 25% of the stream.
        let out = run_session(&mut rng, params, 1024);
        assert!(!out.adversary_knows_final);
        // Known fraction should be near 25%.
        assert!(
            out.adversary_raw_fraction < 0.45,
            "{}",
            out.adversary_raw_fraction
        );
    }

    #[test]
    fn total_storage_adversary_wins() {
        let mut rng = ChaChaDrbg::from_u64_seed(10);
        let params = BsmParams {
            stream_blocks: 256,
            block_size: 8,
            samples: 16,
        };
        let out = run_session(&mut rng, params, 256); // stores everything
        assert!(out.adversary_knows_final);
        assert_eq!(out.adversary_known_samples, 16);
        assert!((out.adversary_raw_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplified_key_is_deterministic_function_of_raw() {
        let mut r1 = ChaChaDrbg::from_u64_seed(11);
        let mut r2 = ChaChaDrbg::from_u64_seed(11);
        let params = BsmParams::lab();
        let o1 = run_session(&mut r1, params, 100);
        let o2 = run_session(&mut r2, params, 100);
        assert_eq!(o1.raw_key, o2.raw_key);
        assert_eq!(o1.amplified_key, o2.amplified_key);
    }

    #[test]
    fn analytic_model_matches_simulation_roughly() {
        let params = BsmParams {
            stream_blocks: 1000,
            block_size: 4,
            samples: 50,
        };
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut rng = ChaChaDrbg::from_u64_seed(seed);
            total += run_session(&mut rng, params, 300).adversary_raw_fraction;
        }
        let mean = total / runs as f64;
        let expect = expected_known_fraction(params, 300);
        assert!(
            (mean - expect).abs() < 0.08,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn compromise_probability_shape() {
        let params = BsmParams::lab();
        let p_half = final_key_compromise_probability(params, 2048);
        let p_all = final_key_compromise_probability(params, 4096);
        assert!(
            p_half < 1e-15,
            "half-storage adversary ~never wins: {p_half}"
        );
        assert!((p_all - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = ChaChaDrbg::from_u64_seed(12);
        for (n, k) in [(10usize, 10usize), (100, 5), (5, 0), (1, 1)] {
            let s = sample_distinct(&mut rng, n, k);
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|&x| x < n));
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "distinct");
        }
    }
}

//! Deterministic in-process transport with tapping and cost accounting.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// A passive eavesdropper's capture of everything that crossed a link.
///
/// The tap is shared: clone it before wiring it into a link, then read the
/// transcript from the adversary side.
#[derive(Debug, Clone, Default)]
pub struct Tap {
    transcript: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl Tap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of captured frames.
    pub fn frames(&self) -> usize {
        self.transcript.lock().len()
    }

    /// Total captured bytes.
    pub fn bytes(&self) -> usize {
        self.transcript.lock().iter().map(|f| f.len()).sum()
    }

    /// Snapshot of the transcript.
    pub fn capture(&self) -> Vec<Vec<u8>> {
        self.transcript.lock().clone()
    }

    fn record(&self, frame: &[u8]) {
        self.transcript.lock().push(frame.to_vec());
    }
}

/// A bidirectional link between two endpoints with latency/bandwidth
/// modelling and optional passive tapping.
///
/// The link does not thread actual time; it *accounts* transfer time so
/// campaign simulations can integrate it.
#[derive(Debug)]
pub struct Link {
    latency_ms: f64,
    bandwidth_bytes_per_sec: f64,
    tap: Option<Tap>,
    a_to_b: VecDeque<Vec<u8>>,
    b_to_a: VecDeque<Vec<u8>>,
    transferred_bytes: u64,
    simulated_seconds: f64,
}

/// Which side of a link an operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The initiating endpoint.
    A,
    /// The responding endpoint.
    B,
}

impl Link {
    /// Creates a link with the given latency and bandwidth.
    pub fn new(latency_ms: f64, bandwidth_bytes_per_sec: f64) -> Self {
        Link {
            latency_ms,
            bandwidth_bytes_per_sec,
            tap: None,
            a_to_b: VecDeque::new(),
            b_to_a: VecDeque::new(),
            transferred_bytes: 0,
            simulated_seconds: 0.0,
        }
    }

    /// A LAN-like link: 0.2 ms, 10 Gbit/s.
    pub fn lan() -> Self {
        Self::new(0.2, 1.25e9)
    }

    /// A WAN-like link between geo-dispersed sites: 80 ms, 1 Gbit/s.
    pub fn wan() -> Self {
        Self::new(80.0, 1.25e8)
    }

    /// Attaches a passive eavesdropper.
    pub fn attach_tap(&mut self, tap: Tap) {
        self.tap = Some(tap);
    }

    /// Sends a frame from `from` toward the opposite end.
    pub fn send(&mut self, from: End, frame: Vec<u8>) {
        if let Some(tap) = &self.tap {
            tap.record(&frame);
        }
        self.transferred_bytes += frame.len() as u64;
        self.simulated_seconds +=
            self.latency_ms / 1000.0 + frame.len() as f64 / self.bandwidth_bytes_per_sec;
        match from {
            End::A => self.a_to_b.push_back(frame),
            End::B => self.b_to_a.push_back(frame),
        }
    }

    /// Receives the next frame addressed to `at`, if any.
    pub fn recv(&mut self, at: End) -> Option<Vec<u8>> {
        match at {
            End::A => self.b_to_a.pop_front(),
            End::B => self.a_to_b.pop_front(),
        }
    }

    /// Total bytes that crossed the link.
    pub fn transferred_bytes(&self) -> u64 {
        self.transferred_bytes
    }

    /// Accumulated simulated transfer time in seconds.
    pub fn simulated_seconds(&self) -> f64 {
        self.simulated_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_both_directions() {
        let mut link = Link::lan();
        link.send(End::A, b"hello".to_vec());
        link.send(End::B, b"world".to_vec());
        assert_eq!(link.recv(End::B).unwrap(), b"hello");
        assert_eq!(link.recv(End::A).unwrap(), b"world");
        assert!(link.recv(End::A).is_none());
    }

    #[test]
    fn fifo_ordering() {
        let mut link = Link::lan();
        link.send(End::A, vec![1]);
        link.send(End::A, vec![2]);
        assert_eq!(link.recv(End::B).unwrap(), vec![1]);
        assert_eq!(link.recv(End::B).unwrap(), vec![2]);
    }

    #[test]
    fn tap_captures_everything() {
        let mut link = Link::wan();
        let tap = Tap::new();
        link.attach_tap(tap.clone());
        link.send(End::A, b"handshake".to_vec());
        link.send(End::B, b"response".to_vec());
        assert_eq!(tap.frames(), 2);
        assert_eq!(tap.bytes(), 17);
        assert_eq!(tap.capture()[0], b"handshake");
    }

    #[test]
    fn cost_accounting() {
        let mut link = Link::new(10.0, 1000.0); // 10ms, 1 KB/s
        link.send(End::A, vec![0u8; 500]);
        assert_eq!(link.transferred_bytes(), 500);
        // 0.01 s latency + 0.5 s transfer.
        assert!((link.simulated_seconds() - 0.51).abs() < 1e-9);
    }
}

//! A TLS-like computational channel: ephemeral Diffie–Hellman key
//! exchange over MODP-2048 plus an AEAD record layer.
//!
//! The channel is secure today, but its transcript is exactly what a
//! harvest-now-decrypt-later adversary stores: once discrete logs in the
//! group fall (the break schedule's call), the recorded handshake yields
//! the session key and every recorded record decrypts. The
//! [`simulate_retro_break`] function implements that future adversary.

use crate::transport::{End, Link, Tap};
use aeon_crypto::aead::{Aead, AuthError, ChaCha20Poly1305};
use aeon_crypto::{hkdf, CryptoRng};
use aeon_num::ModpGroup;

/// Errors from channel operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The handshake did not complete.
    HandshakeIncomplete,
    /// A record failed authentication.
    RecordAuth,
    /// No record was available to receive.
    Empty,
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::HandshakeIncomplete => write!(f, "handshake incomplete"),
            ChannelError::RecordAuth => write!(f, "record failed authentication"),
            ChannelError::Empty => write!(f, "no record available"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<AuthError> for ChannelError {
    fn from(_: AuthError) -> Self {
        ChannelError::RecordAuth
    }
}

/// An established DH+AEAD session (one per endpoint).
#[derive(Debug)]
pub struct DhSession {
    aead: ChaCha20Poly1305,
    side: End,
    send_seq: u64,
    recv_seq: u64,
}

/// Runs the two-message ephemeral DH handshake over `link`, returning the
/// two endpoint sessions. The exchanged public values cross the (possibly
/// tapped) link; the private exponents never do.
pub fn handshake<R: CryptoRng + ?Sized>(
    rng: &mut R,
    group: &ModpGroup,
    link: &mut Link,
) -> Result<(DhSession, DhSession), ChannelError> {
    // Ephemeral exponents (256-bit scalars are ample for the simulation).
    let a = aeon_crypto::random_array::<32, _>(rng);
    let b = aeon_crypto::random_array::<32, _>(rng);
    let ga = group.exp_generator(&a);
    let gb = group.exp_generator(&b);

    // A -> B: g^a ; B -> A: g^b.
    link.send(End::A, ga.to_be_bytes());
    link.send(End::B, gb.to_be_bytes());
    let ga_rx = link.recv(End::B).ok_or(ChannelError::HandshakeIncomplete)?;
    let gb_rx = link.recv(End::A).ok_or(ChannelError::HandshakeIncomplete)?;

    let shared_a = group.exp(&aeon_num::GroupElement::from_be_bytes(&gb_rx), &a);
    let shared_b = group.exp(&aeon_num::GroupElement::from_be_bytes(&ga_rx), &b);
    debug_assert_eq!(shared_a, shared_b);

    let make = |shared: &[u8], side: End| {
        let okm = hkdf::derive(b"aeon-dh-channel", shared, b"session-key", 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&okm);
        DhSession {
            aead: ChaCha20Poly1305::new(&key),
            side,
            send_seq: 0,
            recv_seq: 0,
        }
    };
    Ok((
        make(&shared_a.to_be_bytes(), End::A),
        make(&shared_b.to_be_bytes(), End::B),
    ))
}

impl DhSession {
    fn nonce(dir: End, seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[0] = match dir {
            End::A => 0xA0,
            End::B => 0xB0,
        };
        n[4..12].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Encrypts and sends a record over the link.
    pub fn send(&mut self, link: &mut Link, plaintext: &[u8]) {
        let nonce = Self::nonce(self.side, self.send_seq);
        self.send_seq += 1;
        let record = self.aead.seal(&nonce, b"aeon-record", plaintext);
        link.send(self.side, record);
    }

    /// Receives and decrypts the next record.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Empty`] with no pending record or
    /// [`ChannelError::RecordAuth`] on tampering.
    pub fn recv(&mut self, link: &mut Link) -> Result<Vec<u8>, ChannelError> {
        let record = link.recv(self.side).ok_or(ChannelError::Empty)?;
        let peer = match self.side {
            End::A => End::B,
            End::B => End::A,
        };
        let nonce = Self::nonce(peer, self.recv_seq);
        self.recv_seq += 1;
        Ok(self.aead.open(&nonce, b"aeon-record", &record)?)
    }
}

/// The retro-break adversary: given a tapped transcript of a session
/// (handshake + records) and the power to compute discrete logs (i.e. the
/// break schedule says the group fell), recover the plaintext records.
///
/// The discrete log itself is simulated: the function receives the private
/// exponent that a real cryptanalytic adversary would compute from `g^a`.
/// What it demonstrates is the *pipeline*: transcript + broken assumption
/// = full plaintext recovery, years after the fact.
pub fn simulate_retro_break(
    group: &ModpGroup,
    tap: &Tap,
    cracked_exponent: &[u8; 32],
) -> Vec<Vec<u8>> {
    let transcript = tap.capture();
    if transcript.len() < 2 {
        return Vec::new();
    }
    // Frames 0 and 1 are g^a and g^b; the cracked exponent is a.
    let gb = aeon_num::GroupElement::from_be_bytes(&transcript[1]);
    let shared = group.exp(&gb, cracked_exponent);
    let okm = hkdf::derive(
        b"aeon-dh-channel",
        &shared.to_be_bytes(),
        b"session-key",
        32,
    );
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    let aead = ChaCha20Poly1305::new(&key);

    let mut recovered = Vec::new();
    let mut seq_a = 0u64;
    let mut seq_b = 0u64;
    for record in &transcript[2..] {
        // Try both directions' nonce schedules.
        let na = DhSession::nonce(End::A, seq_a);
        if let Ok(pt) = aead.open(&na, b"aeon-record", record) {
            recovered.push(pt);
            seq_a += 1;
            continue;
        }
        let nb = DhSession::nonce(End::B, seq_b);
        if let Ok(pt) = aead.open(&nb, b"aeon-record", record) {
            recovered.push(pt);
            seq_b += 1;
        }
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn setup() -> (ChaChaDrbg, ModpGroup, Link) {
        (
            ChaChaDrbg::from_u64_seed(404),
            ModpGroup::rfc3526_2048(),
            Link::wan(),
        )
    }

    #[test]
    fn handshake_and_records_roundtrip() {
        let (mut rng, group, mut link) = setup();
        let (mut a, mut b) = handshake(&mut rng, &group, &mut link).unwrap();
        a.send(&mut link, b"hello from A");
        assert_eq!(b.recv(&mut link).unwrap(), b"hello from A");
        b.send(&mut link, b"hello from B");
        a.send(&mut link, b"second from A");
        assert_eq!(a.recv(&mut link).unwrap(), b"hello from B");
        assert_eq!(b.recv(&mut link).unwrap(), b"second from A");
    }

    #[test]
    fn empty_recv_errors() {
        let (mut rng, group, mut link) = setup();
        let (mut a, _b) = handshake(&mut rng, &group, &mut link).unwrap();
        assert_eq!(a.recv(&mut link).unwrap_err(), ChannelError::Empty);
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut rng, group, mut link) = setup();
        let (mut a, mut b) = handshake(&mut rng, &group, &mut link).unwrap();
        a.send(&mut link, b"sensitive");
        // Corrupt in flight.
        let mut frame = link.recv(End::B).unwrap();
        frame[0] ^= 1;
        link.send(End::A, frame);
        assert_eq!(b.recv(&mut link).unwrap_err(), ChannelError::RecordAuth);
    }

    #[test]
    fn eavesdropper_sees_only_ciphertext_today() {
        let (mut rng, group, mut link) = setup();
        let tap = Tap::new();
        link.attach_tap(tap.clone());
        let (mut a, _b) = handshake(&mut rng, &group, &mut link).unwrap();
        a.send(&mut link, b"the archive share");
        let captured = tap.capture();
        // No captured frame contains the plaintext.
        assert!(captured
            .iter()
            .all(|f| f.windows(17).all(|w| w != b"the archive share")));
    }

    #[test]
    fn retro_break_recovers_everything() {
        // Re-run the handshake with a known RNG so we know the exponent a.
        let mut rng = ChaChaDrbg::from_u64_seed(404);
        let group = ModpGroup::rfc3526_2048();
        let mut link = Link::wan();
        let tap = Tap::new();
        link.attach_tap(tap.clone());
        // Mirror the RNG draws of handshake().
        let mut shadow = ChaChaDrbg::from_u64_seed(404);
        let a_exp = shadow.gen_array::<32>();
        let (mut a, mut b) = handshake(&mut rng, &group, &mut link).unwrap();
        a.send(&mut link, b"harvested secret one");
        b.recv(&mut link).unwrap();
        b.send(&mut link, b"harvested secret two");
        a.recv(&mut link).unwrap();

        // Decades later: the group falls, the adversary "computes" a.
        let recovered = simulate_retro_break(&group, &tap, &a_exp);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0], b"harvested secret one");
        assert_eq!(recovered[1], b"harvested secret two");
    }
}

//! Secure channels for data in transit, simulated end to end.
//!
//! Shares and re-encrypted objects must *move* between geographically
//! dispersed nodes, and the paper notes that an adversary facing an
//! information-theoretically secure datastore will simply attack the
//! channel instead: TLS is only computationally secure, so captured
//! traffic is harvest-now-decrypt-later fodder. This crate provides the
//! three channel families the paper discusses, all over a deterministic
//! in-process [`transport`]:
//!
//! * [`dh`] — a TLS-like computational channel: ephemeral Diffie–Hellman
//!   over the MODP-2048 group plus an AEAD session. An eavesdropper's tap
//!   records everything; the [`dh::simulate_retro_break`] hook models the
//!   future cryptanalysis of the key exchange.
//! * [`qkd`] — a simulated Quantum Key Distribution link: delivers
//!   one-time-pad key material at a configurable key rate with
//!   eavesdropper detection, feeding an information-theoretically secure
//!   [`qkd::OtpChannel`] (encryption *and* Wegman–Carter-style
//!   authentication consume pad bytes).
//! * [`bsm`] — Maurer's Bounded Storage Model: honest parties derive a
//!   shared pad from a huge public random stream that a storage-bounded
//!   adversary cannot capture in full. Includes the experiment harness for
//!   the paper's §4 "BSM is overdue for practical evaluation" direction.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bsm;
pub mod dh;
pub mod qkd;
pub mod transport;

pub use aeon_crypto::SecurityLevel;

//! Simulated Quantum Key Distribution and the OTP channel it feeds.
//!
//! Real QKD establishes information-theoretically secret key material over
//! a quantum link, with eavesdropping physically detectable. The paper
//! treats QKD as an ITS key *source* with two practical drawbacks —
//! limited key rate and specialized infrastructure cost — so that is what
//! the simulation models: a [`QkdLink`] delivers pad bytes at
//! `key_rate_bps`, flags eavesdropping attempts, and tracks cost; an
//! [`OtpChannel`] then consumes the pad for both encryption (XOR) and
//! authentication (a one-time Poly1305 key per record — Wegman–Carter
//! style, information-theoretically unforgeable).

use aeon_crypto::otp::OtpError;
use aeon_crypto::poly1305::poly1305;
use aeon_crypto::CryptoRng;

/// A simulated QKD link between two sites.
#[derive(Debug)]
pub struct QkdLink {
    key_rate_bps: f64,
    install_cost_usd: f64,
    operating_cost_usd_per_year: f64,
    eavesdrop_detected: bool,
    delivered_bytes: u64,
    elapsed_seconds: f64,
}

impl QkdLink {
    /// Creates a link with the given secret-key rate (bits/second) and
    /// cost model.
    pub fn new(key_rate_bps: f64, install_cost_usd: f64, operating_cost_usd_per_year: f64) -> Self {
        QkdLink {
            key_rate_bps,
            install_cost_usd,
            operating_cost_usd_per_year,
            eavesdrop_detected: false,
            delivered_bytes: 0,
            elapsed_seconds: 0.0,
        }
    }

    /// A metro-scale reference link: 1 Mbit/s secret-key rate (optimistic
    /// near-term), $100k install, $20k/year operation.
    pub fn metro_reference() -> Self {
        Self::new(1.0e6, 100_000.0, 20_000.0)
    }

    /// Generates `len` bytes of shared pad, advancing the simulated clock
    /// by the time the link needs at its key rate. Returns identical pads
    /// for both endpoints.
    pub fn generate_pad<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
        len: usize,
    ) -> (Vec<u8>, Vec<u8>) {
        let mut pad = vec![0u8; len];
        rng.fill_bytes(&mut pad);
        self.delivered_bytes += len as u64;
        self.elapsed_seconds += (len as f64 * 8.0) / self.key_rate_bps;
        (pad.clone(), pad)
    }

    /// Simulates an eavesdropping attempt: QKD physics guarantees
    /// detection, so the link flags it and the endpoints discard the
    /// affected material (we model detection as certain).
    pub fn simulate_eavesdrop(&mut self) {
        self.eavesdrop_detected = true;
    }

    /// Whether an eavesdropper has been detected.
    pub fn eavesdrop_detected(&self) -> bool {
        self.eavesdrop_detected
    }

    /// Total pad bytes delivered.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Simulated seconds consumed generating key material.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_seconds
    }

    /// Total cost of ownership over `years`, in USD.
    pub fn cost_usd(&self, years: f64) -> f64 {
        self.install_cost_usd + years * self.operating_cost_usd_per_year
    }

    /// Seconds needed to deliver pad for `bytes` of payload (pad = payload
    /// + 32 bytes MAC key per record of `record_size`).
    pub fn seconds_for_payload(&self, bytes: u64, record_size: usize) -> f64 {
        let records = (bytes as usize).div_ceil(record_size.max(1));
        let pad_bytes = bytes + (records * 32) as u64;
        pad_bytes as f64 * 8.0 / self.key_rate_bps
    }
}

/// Errors from the OTP channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtpChannelError {
    /// Pad exhausted; generate more via QKD.
    PadExhausted,
    /// A record failed its one-time MAC.
    RecordAuth,
}

impl core::fmt::Display for OtpChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OtpChannelError::PadExhausted => write!(f, "one-time pad exhausted"),
            OtpChannelError::RecordAuth => write!(f, "record failed one-time MAC"),
        }
    }
}

impl std::error::Error for OtpChannelError {}

impl From<OtpError> for OtpChannelError {
    fn from(_: OtpError) -> Self {
        OtpChannelError::PadExhausted
    }
}

/// An information-theoretically secure record channel over a shared pad.
///
/// Each record consumes `len` pad bytes for the XOR cipher plus 32 pad
/// bytes as a fresh Poly1305 key (one-time polynomial MAC — unforgeable
/// against unbounded adversaries except with probability ~2⁻¹⁰⁶ per
/// record).
#[derive(Debug)]
pub struct OtpChannel {
    pad: Vec<u8>,
    offset: usize,
}

impl OtpChannel {
    /// Wraps a shared pad (one endpoint's copy).
    pub fn new(pad: Vec<u8>) -> Self {
        OtpChannel { pad, offset: 0 }
    }

    /// Remaining pad bytes.
    pub fn remaining(&self) -> usize {
        self.pad.len() - self.offset
    }

    fn take(&mut self, n: usize) -> Result<&[u8], OtpChannelError> {
        if self.remaining() < n {
            return Err(OtpChannelError::PadExhausted);
        }
        let s = &self.pad[self.offset..self.offset + n];
        self.offset += n;
        Ok(s)
    }

    /// Seals a record: `ciphertext || tag`, consuming `len + 32` pad bytes.
    ///
    /// # Errors
    ///
    /// Returns [`OtpChannelError::PadExhausted`] when the pad runs out.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, OtpChannelError> {
        if self.remaining() < plaintext.len() + 32 {
            return Err(OtpChannelError::PadExhausted);
        }
        let ct: Vec<u8> = {
            let pad = self.take(plaintext.len())?;
            plaintext.iter().zip(pad).map(|(p, k)| p ^ k).collect()
        };
        let mac_key: [u8; 32] = self.take(32)?.try_into().expect("32 bytes");
        let tag = poly1305(&mac_key, &ct);
        let mut out = ct;
        out.extend_from_slice(&tag);
        Ok(out)
    }

    /// Opens a record sealed by the peer with the same pad state.
    ///
    /// # Errors
    ///
    /// Returns [`OtpChannelError::RecordAuth`] on tampering or
    /// [`OtpChannelError::PadExhausted`] on pad mismatch.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, OtpChannelError> {
        if record.len() < 16 {
            return Err(OtpChannelError::RecordAuth);
        }
        let (ct, tag) = record.split_at(record.len() - 16);
        if self.remaining() < ct.len() + 32 {
            return Err(OtpChannelError::PadExhausted);
        }
        let pt: Vec<u8> = {
            let pad = self.take(ct.len())?;
            ct.iter().zip(pad).map(|(c, k)| c ^ k).collect()
        };
        let mac_key: [u8; 32] = self.take(32)?.try_into().expect("32 bytes");
        let expect = poly1305(&mac_key, ct);
        if expect != tag {
            return Err(OtpChannelError::RecordAuth);
        }
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    #[test]
    fn qkd_pad_generation_and_timing() {
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let mut link = QkdLink::new(8000.0, 0.0, 0.0); // 1 KB/s
        let (pa, pb) = link.generate_pad(&mut rng, 500);
        assert_eq!(pa, pb);
        assert_eq!(link.delivered_bytes(), 500);
        assert!((link.elapsed_seconds() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn channel_roundtrip() {
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let mut link = QkdLink::metro_reference();
        let (pa, pb) = link.generate_pad(&mut rng, 1024);
        let mut tx = OtpChannel::new(pa);
        let mut rx = OtpChannel::new(pb);
        let r1 = tx.seal(b"first share").unwrap();
        let r2 = tx.seal(b"second share").unwrap();
        assert_eq!(rx.open(&r1).unwrap(), b"first share");
        assert_eq!(rx.open(&r2).unwrap(), b"second share");
    }

    #[test]
    fn tamper_detected_by_onetime_mac() {
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let mut link = QkdLink::metro_reference();
        let (pa, pb) = link.generate_pad(&mut rng, 256);
        let mut tx = OtpChannel::new(pa);
        let mut rx = OtpChannel::new(pb);
        let mut record = tx.seal(b"do not touch").unwrap();
        record[3] ^= 0x40;
        assert_eq!(rx.open(&record).unwrap_err(), OtpChannelError::RecordAuth);
    }

    #[test]
    fn pad_exhaustion() {
        let mut ch = OtpChannel::new(vec![0u8; 40]);
        // 10-byte record needs 42 bytes of pad.
        assert_eq!(
            ch.seal(&[0u8; 10]).unwrap_err(),
            OtpChannelError::PadExhausted
        );
        // 8-byte record fits exactly (8 + 32).
        assert!(ch.seal(&[0u8; 8]).is_ok());
        assert_eq!(ch.remaining(), 0);
    }

    #[test]
    fn eavesdrop_detection_flag() {
        let mut link = QkdLink::metro_reference();
        assert!(!link.eavesdrop_detected());
        link.simulate_eavesdrop();
        assert!(link.eavesdrop_detected());
    }

    #[test]
    fn cost_model() {
        let link = QkdLink::metro_reference();
        assert!((link.cost_usd(0.0) - 100_000.0).abs() < 1e-6);
        assert!((link.cost_usd(10.0) - 300_000.0).abs() < 1e-6);
    }

    #[test]
    fn payload_timing_includes_mac_keys() {
        let link = QkdLink::new(8.0, 0.0, 0.0); // 1 byte/s
                                                // 100 bytes in 10-byte records: 10 records × 32 + 100 = 420 bytes.
        let secs = link.seconds_for_payload(100, 10);
        assert!((secs - 420.0).abs() < 1e-9);
    }
}

//! Property tests: cluster placement invariants, node CRUD, campaign
//! model monotonicity.

use aeon_store::campaign::{simulate_campaign, ReencryptionModel};
use aeon_store::media::{ArchiveSite, MediaType};
use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
use aeon_store::Cluster;
use proptest::prelude::*;

proptest! {
    /// Placement always returns distinct nodes and is deterministic.
    #[test]
    fn placement_invariants(sites in 1usize..6, per_site in 1usize..4,
                            count in 1usize..12, name in "[a-z]{1,12}") {
        let site_names: Vec<String> = (0..sites).map(|i| format!("s{i}")).collect();
        let refs: Vec<&str> = site_names.iter().map(|s| s.as_str()).collect();
        let cluster = Cluster::in_memory(&refs, per_site);
        let total = sites * per_site;
        match cluster.place(&name, count) {
            Ok(placement) => {
                prop_assert!(count <= total);
                prop_assert_eq!(placement.len(), count);
                let set: std::collections::HashSet<_> = placement.iter().collect();
                prop_assert_eq!(set.len(), count, "distinct nodes");
                prop_assert_eq!(placement.clone(), cluster.place(&name, count).unwrap());
                // Site anti-affinity: with count <= sites, all distinct sites.
                if count <= sites {
                    let used: std::collections::HashSet<&str> = placement
                        .iter()
                        .map(|id| cluster.node(*id).unwrap().site())
                        .collect();
                    prop_assert_eq!(used.len(), count);
                }
            }
            Err(_) => prop_assert!(count > total),
        }
    }

    /// Node storage accounting equals the sum of live blobs.
    #[test]
    fn node_accounting(blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..16)) {
        let node = MemoryNode::new(0, "x");
        let mut expect = 0u64;
        for (i, b) in blobs.iter().enumerate() {
            node.put(&ShardKey::new("obj", i as u32), b).unwrap();
            expect += b.len() as u64;
        }
        prop_assert_eq!(node.stored_bytes(), expect);
        prop_assert_eq!(node.keys().len(), blobs.len());
        // Deleting everything zeroes the account.
        for i in 0..blobs.len() {
            node.delete(&ShardKey::new("obj", i as u32)).unwrap();
        }
        prop_assert_eq!(node.stored_bytes(), 0);
    }

    /// Campaign duration grows monotonically with archive size and
    /// shrinks with bandwidth.
    #[test]
    fn campaign_monotonicity(capacity in 100.0f64..10_000.0, bw in 1.0f64..100.0) {
        let site = ArchiveSite {
            name: "p".into(),
            capacity_tb: capacity,
            read_tb_per_day: bw,
            write_tb_per_day: bw,
            media: MediaType::Tape,
        };
        let bigger = ArchiveSite { capacity_tb: capacity * 2.0, ..site.clone() };
        let faster = ArchiveSite { read_tb_per_day: bw * 2.0, write_tb_per_day: bw * 2.0, ..site.clone() };
        let base = ReencryptionModel::paper_assumptions(site.clone()).estimate();
        let big = ReencryptionModel::paper_assumptions(bigger).estimate();
        let fast = ReencryptionModel::paper_assumptions(faster).estimate();
        prop_assert!(big.realistic_months > base.realistic_months);
        prop_assert!(fast.realistic_months < base.realistic_months);
        // Simulation agrees with closed form without ingest (±1 day).
        let sim = simulate_campaign(&site, 0.0).expect("no ingest, cannot saturate");
        prop_assert!((sim.days - capacity / bw).abs() <= 1.0);
    }
}

//! Fault-injection integration tests: the [`FaultyNode`] determinism
//! contract exercised over real file-backed nodes, plus direct
//! [`FileNode`] failure-mode coverage (torn writes, offline windows,
//! I/O error propagation).

use aeon_store::faults::{FaultKind, FaultPlan, FaultyNode};
use aeon_store::node::{FileNode, NodeError, ShardKey, StorageNode};
use aeon_store::retry::RetryPolicy;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fresh scratch directory per test (no tempfile crate in the tree).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aeon-faults-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn faulty_file_node(dir: &Path, plan: FaultPlan) -> (Arc<FileNode>, FaultyNode) {
    let inner = Arc::new(FileNode::create(0, "dc", dir.to_path_buf()).unwrap());
    let node = FaultyNode::new(inner.clone(), plan);
    (inner, node)
}

/// A torn write leaves only a prefix on the medium and reports failure;
/// a retried write overwrites the prefix with the full blob. The test
/// scans seeds for a (torn, clean) first/second draw — the scan itself
/// is deterministic, so the chosen seed never changes run to run.
#[test]
fn file_node_torn_write_recovers_on_retry() {
    let dir = scratch("torn");
    let data = b"sixteen byte blob".to_vec();
    let key = ShardKey::new("obj", 0);
    let mut exercised = false;
    for seed in 0..500u64 {
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::new(seed).with_torn_write_rate(0.5);
        let (inner, node) = faulty_file_node(&dir, plan);
        let first = node.put(&key, &data);
        if first.is_ok() {
            continue;
        }
        // The medium holds a strict prefix matching the logged event.
        let events = node.events();
        let Some(FaultKind::TornWrite { kept }) = events.last().map(|e| e.fault.clone()) else {
            panic!("failed put without a torn-write event");
        };
        let on_disk = inner.get(&key).unwrap();
        assert_eq!(on_disk.len(), kept);
        assert!(data.starts_with(&on_disk), "medium holds a torn prefix");
        let second = node.put(&key, &data);
        if second.is_err() {
            continue; // second draw torn too under this seed; keep scanning
        }
        assert_eq!(
            inner.get(&key).unwrap(),
            data,
            "retry overwrites the prefix"
        );
        assert_eq!(node.get(&key).unwrap(), data);
        exercised = true;
        break;
    }
    assert!(exercised, "no seed in 0..500 gave a (torn, clean) sequence");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scheduled offline windows block every operation with
/// [`NodeError::Offline`] and leave nothing on disk; once the epoch
/// clock leaves the window the node serves normally.
#[test]
fn file_node_offline_window_blocks_then_heals() {
    let dir = scratch("offline-window");
    let plan = FaultPlan::new(7).with_offline_window(0, 3);
    let (inner, node) = faulty_file_node(&dir, plan);
    let key = ShardKey::new("obj", 0);

    assert!(node.is_offline_now());
    assert!(matches!(
        node.put(&key, b"blocked"),
        Err(NodeError::Offline)
    ));
    assert!(matches!(node.get(&key), Err(NodeError::Offline)));
    assert!(
        matches!(inner.get(&key), Err(NodeError::NotFound)),
        "nothing reached the medium during the window"
    );

    node.set_epoch(3); // window is half-open: [0, 3)
    assert!(!node.is_offline_now());
    node.put(&key, b"landed").unwrap();
    assert_eq!(node.get(&key).unwrap(), b"landed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The inner node's own offline switch propagates through the wrapper
/// untouched, and the error classifies as retryable.
#[test]
fn file_node_inner_offline_propagates() {
    let dir = scratch("inner-offline");
    let (inner, node) = faulty_file_node(&dir, FaultPlan::new(1));
    let key = ShardKey::new("obj", 0);
    node.put(&key, b"x").unwrap();
    inner.set_offline(true);
    let err = node.get(&key).unwrap_err();
    assert!(matches!(err, NodeError::Offline));
    assert!(RetryPolicy::is_retryable(&err));
    inner.set_offline(false);
    assert_eq!(node.get(&key).unwrap(), b"x");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Filesystem-level failures surface as [`NodeError::Io`] (retryable),
/// distinct from [`NodeError::NotFound`] (permanent). A directory
/// squatting on the shard's file path makes both reads and writes fail
/// with a real I/O error.
#[test]
fn file_node_io_error_propagates() {
    let dir = scratch("io-error");
    let node = FileNode::create(0, "dc", dir.clone()).unwrap();
    let key = ShardKey::new("obj", 0);

    // Missing shard: permanent.
    let missing = node.get(&key).unwrap_err();
    assert!(matches!(missing, NodeError::NotFound));
    assert!(!RetryPolicy::is_retryable(&missing));

    // Shard path occupied by a directory: genuine I/O failure.
    std::fs::create_dir_all(dir.join("obj.0")).unwrap();
    let read_err = node.get(&key).unwrap_err();
    assert!(matches!(read_err, NodeError::Io(_)), "got {read_err:?}");
    assert!(RetryPolicy::is_retryable(&read_err));
    let write_err = node.put(&key, b"displaced").unwrap_err();
    assert!(matches!(write_err, NodeError::Io(_)), "got {write_err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The determinism contract holds on file-backed nodes: the same seed
/// and operation sequence replay the exact same fault events, on a
/// completely separate directory.
#[test]
fn faulty_file_node_replays_identically() {
    let run = |dir: &Path| {
        let plan = FaultPlan::new(0xC4A05)
            .with_transient_io_rate(0.3)
            .with_bit_flip_rate(0.2)
            .with_torn_write_rate(0.2)
            .with_mean_latency_ms(4);
        let (_inner, node) = faulty_file_node(dir, plan);
        let mut outcomes = Vec::new();
        for round in 0..20u32 {
            let key = ShardKey::new(format!("o{}", round % 3), round % 2);
            outcomes.push(node.put(&key, &[round as u8; 24]).is_ok());
            outcomes.push(node.get(&key).is_ok());
        }
        (node.events(), node.clock().now(), outcomes)
    };
    let dir_a = scratch("replay-a");
    let dir_b = scratch("replay-b");
    let (events_a, clock_a, outcomes_a) = run(&dir_a);
    let (events_b, clock_b, outcomes_b) = run(&dir_b);
    assert!(!events_a.is_empty(), "plan with 30% rates injected nothing");
    assert_eq!(events_a, events_b, "same seed must replay the same faults");
    assert_eq!(clock_a, clock_b, "same seed, same virtual elapsed time");
    assert_eq!(outcomes_a, outcomes_b);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Different seeds decorrelate: the whole point of the per-node seed
/// derivation is that sibling nodes don't fault in lockstep.
#[test]
fn different_seeds_diverge() {
    let run = |seed: u64, dir: &Path| {
        let plan = FaultPlan::new(seed)
            .with_transient_io_rate(0.3)
            .with_torn_write_rate(0.3);
        let (_inner, node) = faulty_file_node(dir, plan);
        let mut outcomes = Vec::new();
        for round in 0..30u32 {
            let key = ShardKey::new("o", round % 4);
            outcomes.push(node.put(&key, b"payload-bytes").is_ok());
        }
        outcomes
    };
    let dir_a = scratch("diverge-a");
    let dir_b = scratch("diverge-b");
    let a = run(11, &dir_a);
    let b = run(12, &dir_b);
    assert_ne!(a, b, "distinct seeds should give distinct fault patterns");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

//! Archival media models and real-archive presets.
//!
//! Two questions drive the paper's economics: how long does it take to
//! stream an entire archive through its aggregate read bandwidth (§3.2),
//! and what does a byte-century cost on each medium (§4)? The
//! [`MediaProfile`]s here carry the published figures for tape, disk,
//! glass (Project Silica), DNA, and photosensitive film; the
//! [`ArchiveSite`] presets carry the four real systems the paper cites.

/// A class of storage medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaType {
    /// Magnetic tape (LTO-class).
    Tape,
    /// Hard disk drives (Pergamum-style spun-down archival disk).
    Hdd,
    /// Flash SSDs (included for contrast; not archival-economical).
    Ssd,
    /// Fused-silica glass (Project Silica).
    Glass,
    /// Synthetic DNA.
    Dna,
    /// Photosensitive film (Piql / Arctic World Archive).
    Film,
}

impl core::fmt::Display for MediaType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            MediaType::Tape => "tape",
            MediaType::Hdd => "HDD",
            MediaType::Ssd => "SSD",
            MediaType::Glass => "glass",
            MediaType::Dna => "DNA",
            MediaType::Film => "film",
        };
        f.write_str(s)
    }
}

/// Parametric model of one medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediaProfile {
    /// The medium class.
    pub media: MediaType,
    /// Acquisition cost, USD per terabyte.
    pub cost_usd_per_tb: f64,
    /// Annual maintenance (power, cooling, migration labor) as a fraction
    /// of acquisition cost.
    pub annual_maintenance_fraction: f64,
    /// Expected media lifetime before forced migration, years.
    pub lifetime_years: f64,
    /// Sequential read bandwidth per drive/reader, MB/s.
    pub read_mbps_per_drive: f64,
    /// Sequential write bandwidth per drive/writer, MB/s.
    pub write_mbps_per_drive: f64,
    /// Volumetric density, TB per cubic centimeter.
    pub tb_per_cc: f64,
}

impl MediaProfile {
    /// LTO-9-class tape.
    pub fn tape() -> Self {
        MediaProfile {
            media: MediaType::Tape,
            cost_usd_per_tb: 5.0,
            annual_maintenance_fraction: 0.05,
            lifetime_years: 30.0,
            read_mbps_per_drive: 400.0,
            write_mbps_per_drive: 300.0,
            tb_per_cc: 0.05,
        }
    }

    /// Archival (spun-down) HDD.
    pub fn hdd() -> Self {
        MediaProfile {
            media: MediaType::Hdd,
            cost_usd_per_tb: 15.0,
            annual_maintenance_fraction: 0.15,
            lifetime_years: 5.0,
            read_mbps_per_drive: 250.0,
            write_mbps_per_drive: 250.0,
            tb_per_cc: 0.06,
        }
    }

    /// Datacenter SSD (for contrast).
    pub fn ssd() -> Self {
        MediaProfile {
            media: MediaType::Ssd,
            cost_usd_per_tb: 80.0,
            annual_maintenance_fraction: 0.10,
            lifetime_years: 5.0,
            read_mbps_per_drive: 3000.0,
            write_mbps_per_drive: 2000.0,
            tb_per_cc: 0.3,
        }
    }

    /// Project Silica-style fused silica glass: ~429 TB per cubic inch
    /// (≈ 26 TB/cc), millennia of lifetime, negligible maintenance; write
    /// (laser voxel) much slower than read.
    pub fn glass() -> Self {
        MediaProfile {
            media: MediaType::Glass,
            cost_usd_per_tb: 3.0,
            annual_maintenance_fraction: 0.002,
            lifetime_years: 1000.0,
            read_mbps_per_drive: 100.0,
            write_mbps_per_drive: 30.0,
            tb_per_cc: 26.0,
        }
    }

    /// Synthetic DNA: theoretical ~1 EB/mm³ (≈ 10⁶ TB/cc), centuries of
    /// durability, but synthesis/sequencing are slow and costly today.
    pub fn dna() -> Self {
        MediaProfile {
            media: MediaType::Dna,
            cost_usd_per_tb: 100_000.0, // synthesis-dominated (optimistic vs today's $/MB)
            annual_maintenance_fraction: 0.001,
            lifetime_years: 500.0,
            read_mbps_per_drive: 0.01, // sequencing throughput
            write_mbps_per_drive: 0.001,
            tb_per_cc: 1.0e6,
        }
    }

    /// Photosensitive film (Piql): low density but passive and
    /// century-scale.
    pub fn film() -> Self {
        MediaProfile {
            media: MediaType::Film,
            cost_usd_per_tb: 100.0,
            annual_maintenance_fraction: 0.001,
            lifetime_years: 500.0,
            read_mbps_per_drive: 50.0,
            write_mbps_per_drive: 20.0,
            tb_per_cc: 0.001,
        }
    }

    /// All built-in profiles.
    pub fn all() -> Vec<MediaProfile> {
        vec![
            Self::tape(),
            Self::hdd(),
            Self::ssd(),
            Self::glass(),
            Self::dna(),
            Self::film(),
        ]
    }

    /// Total cost of storing `tb` terabytes for `years`, including
    /// periodic re-acquisition every `lifetime_years` and annual
    /// maintenance, in USD.
    pub fn cost_usd(&self, tb: f64, years: f64) -> f64 {
        let generations = (years / self.lifetime_years).ceil().max(1.0);
        let acquisition = self.cost_usd_per_tb * tb * generations;
        let maintenance = self.cost_usd_per_tb * tb * self.annual_maintenance_fraction * years;
        acquisition + maintenance
    }

    /// USD per terabyte-century — the paper's long-horizon comparison
    /// metric.
    pub fn usd_per_tb_century(&self) -> f64 {
        self.cost_usd(1.0, 100.0)
    }
}

/// An archival site: total size plus aggregate streaming bandwidth.
///
/// Presets carry the figures the paper cites for real archives.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveSite {
    /// Human-readable name.
    pub name: String,
    /// Total archived data, terabytes.
    pub capacity_tb: f64,
    /// Aggregate read throughput, terabytes per day.
    pub read_tb_per_day: f64,
    /// Aggregate write throughput, terabytes per day.
    pub write_tb_per_day: f64,
    /// The dominant medium.
    pub media: MediaType,
}

impl ArchiveSite {
    /// Oak Ridge HPSS: 80 PB, 400 TB/day aggregate read.
    pub fn hpss() -> Self {
        ArchiveSite {
            name: "Oak Ridge HPSS".into(),
            capacity_tb: 80_000.0,
            read_tb_per_day: 400.0,
            write_tb_per_day: 200.0,
            media: MediaType::Tape,
        }
    }

    /// ECMWF MARS: 37.9 PB, 120 TB/day.
    pub fn mars() -> Self {
        ArchiveSite {
            name: "ECMWF MARS".into(),
            capacity_tb: 37_900.0,
            read_tb_per_day: 120.0,
            write_tb_per_day: 60.0,
            media: MediaType::Tape,
        }
    }

    /// CERN EOS/CTA: 230 PB, 909 TB/day.
    pub fn eos() -> Self {
        ArchiveSite {
            name: "CERN EOS".into(),
            capacity_tb: 230_000.0,
            read_tb_per_day: 909.0,
            write_tb_per_day: 455.0,
            media: MediaType::Tape,
        }
    }

    /// Pergamum (hypothetical): 10 PB, 5 GB/s ≈ 432 TB/day.
    pub fn pergamum() -> Self {
        ArchiveSite {
            name: "Pergamum".into(),
            capacity_tb: 10_000.0,
            read_tb_per_day: 5.0e9 * 86_400.0 / 1.0e12, // 5 GB/s in TB/day
            write_tb_per_day: 5.0e9 * 86_400.0 / 1.0e12 / 2.0,
            media: MediaType::Hdd,
        }
    }

    /// A forward-looking exabyte archive (the "many exabytes" the paper
    /// envisions): 1 EB at 2 PB/day.
    pub fn exabyte_archive() -> Self {
        ArchiveSite {
            name: "Exabyte archive".into(),
            capacity_tb: 1_000_000.0,
            read_tb_per_day: 2_000.0,
            write_tb_per_day: 1_000.0,
            media: MediaType::Tape,
        }
    }

    /// The four archives cited in §3.2, in paper order.
    pub fn paper_examples() -> Vec<ArchiveSite> {
        vec![Self::hpss(), Self::mars(), Self::eos(), Self::pergamum()]
    }

    /// Days to stream the whole archive once through aggregate read
    /// bandwidth (the paper's conservative lower bound).
    pub fn full_read_days(&self) -> f64 {
        self.capacity_tb / self.read_tb_per_day
    }
}

/// Days per month used for the paper's "months" figures.
pub const DAYS_PER_MONTH: f64 = 30.44;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_read_time_estimates() {
        // §3.2: HPSS 6.75, MARS 10.35, EOS 8.3, Pergamum 0.76 months.
        // Our model reproduces these within rounding (<5%).
        let expect = [
            (ArchiveSite::hpss(), 6.75),
            (ArchiveSite::mars(), 10.35),
            (ArchiveSite::eos(), 8.3),
            (ArchiveSite::pergamum(), 0.76),
        ];
        for (site, months_paper) in expect {
            let months = site.full_read_days() / DAYS_PER_MONTH;
            let err = (months - months_paper).abs() / months_paper;
            assert!(
                err < 0.05,
                "{}: model {months:.2} vs paper {months_paper} ({:.1}% off)",
                site.name,
                err * 100.0
            );
        }
    }

    #[test]
    fn media_cost_ordering_matches_folklore() {
        // Tape and glass are the cheap archival options per TB-century;
        // SSD and DNA are the expensive extremes.
        let tape = MediaProfile::tape().usd_per_tb_century();
        let glass = MediaProfile::glass().usd_per_tb_century();
        let ssd = MediaProfile::ssd().usd_per_tb_century();
        let dna = MediaProfile::dna().usd_per_tb_century();
        assert!(glass < tape, "glass {glass} < tape {tape}");
        assert!(tape < ssd, "tape {tape} < ssd {ssd}");
        assert!(ssd < dna, "ssd {ssd} < dna {dna}");
    }

    #[test]
    fn lifetime_drives_generations() {
        let hdd = MediaProfile::hdd();
        // 100 years / 5-year lifetime = 20 generations of acquisition.
        let cost = hdd.cost_usd(1.0, 100.0);
        let acquisition_only = hdd.cost_usd_per_tb * 20.0;
        assert!(cost >= acquisition_only);
    }

    #[test]
    fn density_ordering() {
        assert!(MediaProfile::dna().tb_per_cc > MediaProfile::glass().tb_per_cc);
        assert!(MediaProfile::glass().tb_per_cc > MediaProfile::tape().tb_per_cc);
        assert!(MediaProfile::tape().tb_per_cc > MediaProfile::film().tb_per_cc);
    }

    #[test]
    fn pergamum_bandwidth_conversion() {
        let p = ArchiveSite::pergamum();
        assert!((p.read_tb_per_day - 432.0).abs() < 1.0);
    }

    #[test]
    fn all_profiles_present() {
        assert_eq!(MediaProfile::all().len(), 6);
        assert_eq!(ArchiveSite::paper_examples().len(), 4);
    }
}

//! Per-node virtual I/O lanes: critical-path time for batch fan-out.
//!
//! The global [`SimClock`] is a single counter, so a batched fetch
//! spread across 12 nodes charges 12 seeks *serially* — pessimistic
//! beyond the paper, because real hardware overlaps independent
//! devices. This module models each node as a **lane**: a virtual
//! timeline tracking that node's next-free instant. A dispatch charges
//! each node's framed transfer to its own lane starting at the
//! dispatch instant, the operation completes at the `max` of lane
//! completions, and the global clock advances **once** to that
//! critical path instead of accumulating the sum.
//!
//! Lane math is order-independent by construction: charges on the same
//! lane within one dispatch add (addition commutes), completions
//! across lanes merge with `max` (max commutes), and the global
//! frontier moves through a single [`SimClock::advance_to`] at
//! [`LaneDispatch::finish`]. Interleaving `charge`'s add with
//! `advance_to`'s max on the global counter does *not* commute — which
//! is why diverted workers never touch the frontier directly (see
//! [`SimClock::divert`]) and why the merge-order proptests in this
//! module exist.
//!
//! [`DispatchPolicy`] selects between the classic sequential model
//! (every charge lands on the global counter in call order — the
//! default wherever golden vectors and chaos digests are pinned) and
//! parallel lanes. Callers never drive lanes by hand: the only
//! entry point is `Cluster::dispatch_lanes`, enforced by the
//! `seam_scan` test in `aeon-core`.

use crate::clock::{SimClock, SimDuration, SimTime};
use crate::node::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How a cluster executes the per-node legs of a batched operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// One node after another; every charge lands on the global clock
    /// in call order. Virtual time for a batch is the **sum** of
    /// per-node costs. The default: pinned golden vectors and chaos
    /// digests were recorded against it.
    #[default]
    Sequential,
    /// Per-node legs fan out on a scoped thread pool and charge
    /// per-node lanes; the batch completes at the **critical path**
    /// (max of lane completions). Payloads, typed failures, and
    /// per-shard attempt schedules are byte-identical to sequential —
    /// only virtual timing differs.
    Parallel {
        /// OS threads driving the fan-out. `1` keeps execution inline
        /// while still pricing lanes in parallel (virtual overlap is
        /// a property of the lane model, not of real threads).
        workers: usize,
    },
}

impl DispatchPolicy {
    /// Parallel dispatch with one worker per available CPU (at least
    /// two, so fan-out is real even on single-core runners).
    #[must_use]
    pub fn parallel() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .max(2);
        DispatchPolicy::Parallel { workers }
    }

    /// Reads the `AEON_FORCE_DISPATCH` override (`sequential` or
    /// `parallel`), used by CI to run the equivalence suites under
    /// forced parallel dispatch without touching call sites.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var("AEON_FORCE_DISPATCH").ok()?.as_str() {
            "sequential" => Some(DispatchPolicy::Sequential),
            "parallel" => Some(DispatchPolicy::parallel()),
            _ => None,
        }
    }

    /// Whether this policy overlaps per-node legs.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        matches!(self, DispatchPolicy::Parallel { .. })
    }
}

/// Per-node lane frontiers over a shared [`SimClock`].
///
/// Cheap to clone: clones share both the lane map and the timeline, so
/// a cluster and its clones price lanes consistently. A lane's
/// recorded frontier may lag the global clock (the lane has been idle);
/// dispatch starts each leg at `max(lane frontier, dispatch instant)`.
#[derive(Debug, Clone)]
pub struct LaneClock {
    clock: SimClock,
    lanes: Arc<Mutex<HashMap<NodeId, u64>>>,
}

impl LaneClock {
    /// Lanes over `clock`'s timeline, all initially free.
    #[must_use]
    pub fn new(clock: SimClock) -> Self {
        LaneClock {
            clock,
            lanes: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The shared global clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The instant `node`'s lane is next free: its recorded frontier,
    /// or the global reading if the lane has been idle since.
    #[must_use]
    pub fn next_free(&self, node: NodeId) -> SimTime {
        let recorded = self.lanes.lock().get(&node).copied().unwrap_or(0);
        SimTime::from_nanos(recorded).max(self.clock.now())
    }

    /// Opens a dispatch anchored at the current global instant. All
    /// legs charged through the returned handle start no earlier than
    /// this anchor; [`LaneDispatch::finish`] advances the global clock
    /// to the critical path across the charged lanes.
    #[must_use]
    pub fn begin(&self) -> LaneDispatch<'_> {
        let t0 = self.clock.now();
        LaneDispatch {
            lanes: self,
            t0,
            peak: AtomicU64::new(t0.as_nanos()),
        }
    }
}

/// One batched operation's view of the lanes: an anchor instant plus
/// the running critical path. Charges may arrive from any thread in
/// any order; the final frontier is the same for a fixed multiset of
/// `(node, cost)` charges (pinned by the merge-order proptest below).
#[derive(Debug)]
pub struct LaneDispatch<'a> {
    lanes: &'a LaneClock,
    t0: SimTime,
    peak: AtomicU64,
}

impl LaneDispatch<'_> {
    /// The dispatch anchor: the global instant this batch started.
    #[must_use]
    pub fn t0(&self) -> SimTime {
        self.t0
    }

    /// Charges `cost` to `node`'s lane. The leg starts at the later of
    /// the lane's frontier and the dispatch anchor, and the lane's
    /// frontier moves to its completion. Returns the completion
    /// instant.
    pub fn charge(&self, node: NodeId, cost: SimDuration) -> SimTime {
        let done = {
            let mut lanes = self.lanes.lanes.lock();
            let frontier = lanes.entry(node).or_insert(0);
            let start = (*frontier).max(self.t0.as_nanos());
            let done = start.saturating_add(cost.as_nanos());
            *frontier = done;
            done
        };
        self.peak.fetch_max(done, Ordering::SeqCst);
        SimTime::from_nanos(done)
    }

    /// The critical path so far: the latest lane completion, or the
    /// anchor if nothing has been charged.
    #[must_use]
    pub fn critical_path(&self) -> SimTime {
        SimTime::from_nanos(self.peak.load(Ordering::SeqCst))
    }

    /// Closes the dispatch: advances the global clock **once** to the
    /// critical path and returns it. This is the only point where lane
    /// time reaches the global frontier, which keeps the add/max
    /// interleaving hazard out of worker threads entirely.
    pub fn finish(self) -> SimTime {
        let peak = self.critical_path();
        self.lanes.clock.advance_to(peak);
        peak
    }
}

/// Runs `job(0..count)` on up to `workers` scoped threads and returns
/// results in index order. With one worker (or one item) execution is
/// inline — parallel *pricing* never requires parallel *execution*.
/// Panics in `job` propagate to the caller when the scope joins.
pub(crate) fn scatter<T: Send>(
    count: usize,
    workers: usize,
    job: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let workers = workers.min(count).max(1);
    if workers == 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let out = job(i);
                *slots[i].lock() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("scatter slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(id: u32) -> NodeId {
        NodeId(id)
    }

    #[test]
    fn lanes_overlap_to_the_critical_path() {
        let clock = SimClock::new();
        let lanes = LaneClock::new(clock.clone());
        let d = lanes.begin();
        d.charge(n(0), SimDuration::from_millis(30));
        d.charge(n(1), SimDuration::from_millis(50));
        d.charge(n(2), SimDuration::from_millis(20));
        let done = d.finish();
        assert_eq!(done.as_millis(), 50, "max of lanes, not the 100ms sum");
        assert_eq!(clock.now().as_millis(), 50);
    }

    #[test]
    fn same_lane_charges_queue_within_a_dispatch() {
        let clock = SimClock::new();
        let lanes = LaneClock::new(clock.clone());
        let d = lanes.begin();
        d.charge(n(7), SimDuration::from_millis(10));
        let done = d.charge(n(7), SimDuration::from_millis(5));
        assert_eq!(done.as_millis(), 15, "one device serializes its legs");
        assert_eq!(d.finish().as_millis(), 15);
    }

    #[test]
    fn busy_lane_delays_the_next_dispatch() {
        let clock = SimClock::new();
        let lanes = LaneClock::new(clock.clone());
        let d1 = lanes.begin();
        d1.charge(n(0), SimDuration::from_millis(100));
        d1.charge(n(1), SimDuration::from_millis(10));
        d1.finish();
        // Frontier is 100ms; node 0's lane is exactly at the frontier,
        // node 1's lane has been idle since 10ms.
        assert_eq!(lanes.next_free(n(0)).as_millis(), 100);
        assert_eq!(
            lanes.next_free(n(1)).as_millis(),
            100,
            "idle lane is free now"
        );
        let d2 = lanes.begin();
        let done = d2.charge(n(1), SimDuration::from_millis(5));
        assert_eq!(
            done.as_millis(),
            105,
            "new dispatch anchors at the frontier"
        );
        d2.finish();
    }

    #[test]
    fn empty_dispatch_leaves_the_clock_alone() {
        let clock = SimClock::new();
        clock.charge(SimDuration::from_millis(42));
        let lanes = LaneClock::new(clock.clone());
        let d = lanes.begin();
        assert_eq!(d.finish().as_millis(), 42);
        assert_eq!(clock.now().as_millis(), 42);
    }

    #[test]
    fn scatter_preserves_index_order() {
        for workers in [1, 2, 4, 9] {
            let out = scatter(23, workers, &|i| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            scatter(8, 4, &|i| {
                if i == 5 {
                    panic!("leg failed");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn dispatch_from_many_threads_is_schedule_independent() {
        // A fixed set of lane completions yields one global frontier
        // regardless of which thread charges which lane when: same-lane
        // costs add, cross-lane completions max. Run the same charge
        // set through racing threads repeatedly and against the
        // single-thread reference.
        let legs: Vec<(NodeId, u64)> =
            [(0, 30), (1, 50), (2, 20), (0, 5), (3, 49), (1, 1), (2, 35)]
                .map(|(id, ms)| (n(id), ms))
                .to_vec();
        let reference = {
            let lanes = LaneClock::new(SimClock::new());
            let d = lanes.begin();
            for &(node, ms) in &legs {
                d.charge(node, SimDuration::from_millis(ms));
            }
            d.finish()
        };
        for _ in 0..16 {
            let clock = SimClock::new();
            let lanes = LaneClock::new(clock.clone());
            let d = lanes.begin();
            let outcomes = scatter(legs.len(), 4, &|i| {
                let (node, ms) = legs[i];
                let ((), cost) = clock.divert(|| {
                    clock.charge(SimDuration::from_millis(ms));
                });
                d.charge(node, cost);
            });
            assert_eq!(outcomes.len(), legs.len());
            assert_eq!(d.finish(), reference);
            assert_eq!(clock.now(), reference);
        }
    }

    proptest! {
        /// Extends the clock's `charges_commute` pin to lanes: any
        /// permutation of a fixed `(lane, cost)` multiset merges to
        /// the same critical path, and the frontier equals the max
        /// over lanes of summed per-lane costs.
        #[test]
        fn lane_merge_order_is_irrelevant(
            raw in proptest::collection::vec((0u32..6, 0u64..1_000_000), 1..24),
            rotation in 0usize..24,
        ) {
            let legs: Vec<(NodeId, u64)> =
                raw.into_iter().map(|(id, ns)| (n(id), ns)).collect();
            let run = |order: &[(NodeId, u64)]| {
                let lanes = LaneClock::new(SimClock::new());
                let d = lanes.begin();
                for &(node, ns) in order {
                    d.charge(node, SimDuration::from_nanos(ns));
                }
                d.finish()
            };
            let forward = run(&legs);
            let mut reversed = legs.clone();
            reversed.reverse();
            let mut rotated = legs.clone();
            rotated.rotate_left(rotation % legs.len());
            prop_assert_eq!(run(&reversed), forward);
            prop_assert_eq!(run(&rotated), forward);
            // Closed form: max over lanes of the lane's summed costs.
            let mut per_lane: HashMap<NodeId, u64> = HashMap::new();
            for &(node, ns) in &legs {
                *per_lane.entry(node).or_insert(0) += ns;
            }
            let expect = per_lane.values().copied().max().unwrap_or(0);
            prop_assert_eq!(forward.as_nanos(), expect);
        }
    }
}

//! Geo-dispersed clusters with anti-affinity placement.

use crate::node::{MemoryNode, NodeError, NodeId, ShardKey, StorageNode};
use std::sync::Arc;

/// Errors from cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Not enough distinct nodes/sites to satisfy placement.
    InsufficientNodes {
        /// Nodes needed.
        needed: usize,
        /// Nodes available.
        available: usize,
    },
    /// All replicas of a shard are unavailable.
    ShardUnavailable {
        /// The affected shard index.
        shard: u32,
    },
    /// An underlying node error that was not recoverable.
    Node(NodeError),
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::InsufficientNodes { needed, available } => {
                write!(f, "need {needed} nodes, only {available} available")
            }
            ClusterError::ShardUnavailable { shard } => write!(f, "shard {shard} unavailable"),
            ClusterError::Node(e) => write!(f, "node error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NodeError> for ClusterError {
    fn from(e: NodeError) -> Self {
        ClusterError::Node(e)
    }
}

/// A set of storage nodes across sites, with spread placement: an
/// object's shards land on distinct nodes, round-robin across sites so
/// that no site holds two shards of the same object when enough sites
/// exist.
///
/// # Examples
///
/// ```
/// use aeon_store::Cluster;
///
/// let cluster = Cluster::in_memory(&["us", "eu", "ap"], 2); // 6 nodes
/// let placement = cluster.place("obj-1", 5).unwrap();
/// assert_eq!(placement.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Arc<dyn StorageNode>>,
}

impl Cluster {
    /// Creates a cluster from existing nodes.
    pub fn new(nodes: Vec<Arc<dyn StorageNode>>) -> Self {
        Cluster { nodes }
    }

    /// Creates an all-in-memory cluster with `per_site` nodes at each
    /// named site.
    pub fn in_memory(sites: &[&str], per_site: usize) -> Self {
        let mut nodes: Vec<Arc<dyn StorageNode>> = Vec::new();
        let mut id = 0u32;
        for &site in sites {
            for _ in 0..per_site {
                nodes.push(Arc::new(MemoryNode::new(id, site)));
                id += 1;
            }
        }
        Cluster { nodes }
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> &[Arc<dyn StorageNode>] {
        &self.nodes
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&Arc<dyn StorageNode>> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Chooses `count` distinct nodes for an object's shards: sites are
    /// visited round-robin, nodes within a site in order. Deterministic
    /// for a given object name (stable placement).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientNodes`] if `count` exceeds the
    /// node population.
    pub fn place(&self, object: &str, count: usize) -> Result<Vec<NodeId>, ClusterError> {
        if count > self.nodes.len() {
            return Err(ClusterError::InsufficientNodes {
                needed: count,
                available: self.nodes.len(),
            });
        }
        // Group nodes by site, preserving order.
        let mut by_site: Vec<(&str, Vec<&Arc<dyn StorageNode>>)> = Vec::new();
        for node in &self.nodes {
            match by_site.iter_mut().find(|(s, _)| *s == node.site()) {
                Some((_, v)) => v.push(node),
                None => by_site.push((node.site(), vec![node])),
            }
        }
        // Start site chosen by a stable hash of the object name so load
        // spreads across sites between objects.
        let start = stable_hash(object) as usize % by_site.len();
        let mut picked = Vec::with_capacity(count);
        let mut depth = 0usize;
        while picked.len() < count {
            let mut progressed = false;
            for s in 0..by_site.len() {
                let (_, nodes) = &by_site[(start + s) % by_site.len()];
                if let Some(node) = nodes.get(depth) {
                    picked.push(node.id());
                    progressed = true;
                    if picked.len() == count {
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
            depth += 1;
        }
        Ok(picked)
    }

    /// Stores an object's shards on a placement.
    ///
    /// # Errors
    ///
    /// Propagates the first node error.
    pub fn put_shards(
        &self,
        object: &str,
        placement: &[NodeId],
        shards: &[Vec<u8>],
    ) -> Result<(), ClusterError> {
        assert_eq!(placement.len(), shards.len(), "placement/shard mismatch");
        for (i, (node_id, shard)) in placement.iter().zip(shards).enumerate() {
            let node = self.node(*node_id).ok_or(ClusterError::InsufficientNodes {
                needed: placement.len(),
                available: self.nodes.len(),
            })?;
            node.put(&ShardKey::new(object, i as u32), shard)?;
        }
        Ok(())
    }

    /// Fetches an object's shards; unavailable shards come back as `None`
    /// rather than failing the whole read (erasure decoding handles
    /// gaps).
    pub fn get_shards(&self, object: &str, placement: &[NodeId]) -> Vec<Option<Vec<u8>>> {
        placement
            .iter()
            .enumerate()
            .map(|(i, node_id)| {
                self.node(*node_id)
                    .and_then(|n| n.get(&ShardKey::new(object, i as u32)).ok())
            })
            .collect()
    }

    /// Deletes an object's shards (best effort).
    pub fn delete_shards(&self, object: &str, placement: &[NodeId]) {
        for (i, node_id) in placement.iter().enumerate() {
            if let Some(node) = self.node(*node_id) {
                let _ = node.delete(&ShardKey::new(object, i as u32));
            }
        }
    }

    /// Total bytes stored across the cluster.
    pub fn total_stored_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.stored_bytes()).sum()
    }

    /// Distinct sites represented in the cluster.
    pub fn sites(&self) -> Vec<String> {
        let mut sites: Vec<String> = Vec::new();
        for n in &self.nodes {
            if !sites.iter().any(|s| s == n.site()) {
                sites.push(n.site().to_string());
            }
        }
        sites
    }
}

fn stable_hash(s: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_handles() -> (Cluster, Vec<MemoryNode>) {
        let handles: Vec<MemoryNode> = (0..6)
            .map(|i| MemoryNode::new(i, ["us", "eu", "ap"][(i % 3) as usize]))
            .collect();
        let nodes: Vec<Arc<dyn StorageNode>> = handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect();
        (Cluster::new(nodes), handles)
    }

    #[test]
    fn placement_is_distinct_and_spread() {
        let cluster = Cluster::in_memory(&["us", "eu", "ap"], 2);
        let placement = cluster.place("obj", 3).unwrap();
        let set: std::collections::HashSet<_> = placement.iter().collect();
        assert_eq!(set.len(), 3, "distinct nodes");
        // First three picks must land on three distinct sites.
        let sites: std::collections::HashSet<&str> = placement
            .iter()
            .map(|id| cluster.node(*id).unwrap().site())
            .collect();
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn placement_deterministic_per_object() {
        let cluster = Cluster::in_memory(&["a", "b"], 3);
        assert_eq!(
            cluster.place("same", 4).unwrap(),
            cluster.place("same", 4).unwrap()
        );
    }

    #[test]
    fn placement_insufficient_nodes() {
        let cluster = Cluster::in_memory(&["solo"], 2);
        assert!(matches!(
            cluster.place("o", 3),
            Err(ClusterError::InsufficientNodes {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn put_get_roundtrip_with_loss() {
        let (cluster, handles) = cluster_with_handles();
        let placement = cluster.place("obj", 4).unwrap();
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        // All present.
        let got = cluster.get_shards("obj", &placement);
        assert!(got.iter().all(|s| s.is_some()));
        // Take one node offline: its shard reads as None.
        let victim = placement[1];
        handles
            .iter()
            .find(|h| h.id() == victim)
            .unwrap()
            .set_offline(true);
        let got = cluster.get_shards("obj", &placement);
        assert!(got[1].is_none());
        assert_eq!(got.iter().flatten().count(), 3);
    }

    #[test]
    fn delete_is_best_effort() {
        let (cluster, handles) = cluster_with_handles();
        let placement = cluster.place("obj", 3).unwrap();
        let shards: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        handles
            .iter()
            .find(|h| h.id() == placement[0])
            .unwrap()
            .set_offline(true);
        cluster.delete_shards("obj", &placement); // must not panic
        handles
            .iter()
            .find(|h| h.id() == placement[0])
            .unwrap()
            .set_offline(false);
        let got = cluster.get_shards("obj", &placement);
        // Shard 0 survived (node was offline during delete); 1, 2 gone.
        assert!(got[0].is_some());
        assert!(got[1].is_none());
        assert!(got[2].is_none());
    }

    #[test]
    fn accounting() {
        let cluster = Cluster::in_memory(&["x", "y"], 1);
        let placement = cluster.place("o", 2).unwrap();
        cluster
            .put_shards("o", &placement, &[vec![0; 100], vec![0; 50]])
            .unwrap();
        assert_eq!(cluster.total_stored_bytes(), 150);
        assert_eq!(cluster.sites(), vec!["x".to_string(), "y".to_string()]);
    }
}

//! Geo-dispersed clusters with anti-affinity placement.
//!
//! A [`Cluster`] is the raw shard store: placement, batched get/put
//! with bounded retry, deletion, accounting. It is policy-blind — it
//! never sees plaintext, codecs, or manifests. In `aeon-core` every
//! access to a cluster is funneled through the `PlanExecutor` so the
//! archive has exactly one node-I/O seam; callers embedding this crate
//! directly get the same primitives without that discipline.

use crate::clock::SimClock;
use crate::lane::{scatter, DispatchPolicy, LaneClock};
use crate::node::{MemoryNode, NodeError, NodeId, ShardKey, StorageNode};
use crate::retry::{run_with_retry, RetryPolicy};
use aeon_crypto::CryptoRng;
use std::sync::Arc;

/// Errors from cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Not enough distinct nodes/sites to satisfy placement.
    InsufficientNodes {
        /// Nodes needed.
        needed: usize,
        /// Nodes available.
        available: usize,
    },
    /// All replicas of a shard are unavailable.
    ShardUnavailable {
        /// The affected shard index.
        shard: u32,
    },
    /// An underlying node error that was not recoverable.
    Node(NodeError),
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::InsufficientNodes { needed, available } => {
                write!(f, "need {needed} nodes, only {available} available")
            }
            ClusterError::ShardUnavailable { shard } => write!(f, "shard {shard} unavailable"),
            ClusterError::Node(e) => write!(f, "node error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NodeError> for ClusterError {
    fn from(e: NodeError) -> Self {
        ClusterError::Node(e)
    }
}

/// Outcome of one shard's fan-out leg in a retried read or write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttempt {
    /// Shard index within the object.
    pub shard: u32,
    /// The node the shard lives on.
    pub node: NodeId,
    /// Attempts actually made against the node. Backoff time between
    /// attempts is charged to the cluster's [`SimClock`], not tallied
    /// here.
    pub attempts: u32,
    /// The final error, if the shard stayed unavailable.
    pub error: Option<NodeError>,
}

/// Per-shard transfer accounting — one record per placement entry, in
/// either direction: reads ([`Cluster::get_shards_retrying`],
/// [`Cluster::get_shards_batched_retrying`]) and writes
/// ([`Cluster::put_shards_retrying`],
/// [`Cluster::put_shards_batched_retrying`]) share the shape, because
/// both are per-shard fan-outs with bounded retry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferReport {
    /// One record per placement entry, in shard order.
    pub attempts: Vec<ShardAttempt>,
}

impl TransferReport {
    /// Attempts made against `node` across all shards.
    pub fn attempts_for(&self, node: NodeId) -> u32 {
        self.attempts
            .iter()
            .filter(|a| a.node == node)
            .map(|a| a.attempts)
            .sum()
    }

    /// Total attempts across the fan-out.
    pub fn total_attempts(&self) -> u32 {
        self.attempts.iter().map(|a| a.attempts).sum()
    }

    /// Shards that ended in an error.
    pub fn failed_shards(&self) -> Vec<u32> {
        self.attempts
            .iter()
            .filter(|a| a.error.is_some())
            .map(|a| a.shard)
            .collect()
    }
}

/// A set of storage nodes across sites, with spread placement: an
/// object's shards land on distinct nodes, round-robin across sites so
/// that no site holds two shards of the same object when enough sites
/// exist.
///
/// # Examples
///
/// ```
/// use aeon_store::Cluster;
///
/// let cluster = Cluster::in_memory(&["us", "eu", "ap"], 2); // 6 nodes
/// let placement = cluster.place("obj-1", 5).unwrap();
/// assert_eq!(placement.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Arc<dyn StorageNode>>,
    clock: SimClock,
    lanes: LaneClock,
    dispatch: DispatchPolicy,
}

impl Cluster {
    /// Creates a cluster from existing nodes, with a fresh virtual
    /// clock. When the nodes are time-charging decorators
    /// ([`crate::throughput::ThroughputNode`], [`crate::faults::FaultyNode`]),
    /// install their shared clock with [`Cluster::with_clock`] so retry
    /// backoff lands on the same timeline.
    ///
    /// Dispatch defaults to [`DispatchPolicy::Sequential`] unless the
    /// `AEON_FORCE_DISPATCH` environment override is set (the CI hook
    /// that reruns the equivalence suites under parallel lanes).
    pub fn new(nodes: Vec<Arc<dyn StorageNode>>) -> Self {
        let clock = SimClock::new();
        Cluster {
            nodes,
            lanes: LaneClock::new(clock.clone()),
            clock,
            dispatch: DispatchPolicy::from_env().unwrap_or_default(),
        }
    }

    /// Creates an all-in-memory cluster with `per_site` nodes at each
    /// named site.
    pub fn in_memory(sites: &[&str], per_site: usize) -> Self {
        let mut nodes: Vec<Arc<dyn StorageNode>> = Vec::new();
        let mut id = 0u32;
        for &site in sites {
            for _ in 0..per_site {
                nodes.push(Arc::new(MemoryNode::new(id, site)));
                id += 1;
            }
        }
        Cluster::new(nodes)
    }

    /// Replaces the cluster's clock with a shared handle (builder
    /// style). Cloning the cluster keeps sharing this timeline. Lane
    /// frontiers are rebuilt over the new timeline.
    #[must_use]
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.lanes = LaneClock::new(clock.clone());
        self.clock = clock;
        self
    }

    /// Selects how batched operations execute their per-node legs
    /// (builder style). Sequential is the default; see
    /// [`DispatchPolicy`] for the trade.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The dispatch policy in effect for batched operations.
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        self.dispatch
    }

    /// The per-node lane frontiers (parallel dispatch accounting).
    pub fn lane_clock(&self) -> &LaneClock {
        &self.lanes
    }

    /// The virtual clock that retry backoff (and any time-charging node
    /// decorators built with the same handle) advance.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Runs one closure per entry of `lane_nodes` and returns results
    /// in index order. This is the **only** lane-dispatch seam: under
    /// [`DispatchPolicy::Sequential`] the closures run in order on the
    /// caller's thread, charging the global clock exactly as the
    /// pre-lane code did; under [`DispatchPolicy::Parallel`] they fan
    /// out on a scoped thread pool with charges diverted per thread
    /// ([`SimClock::divert`]) and replayed onto each node's lane, and
    /// the global clock advances once to the critical path.
    ///
    /// `op` must be pure modulo node I/O — results are merged by index,
    /// so outputs are independent of thread interleaving as long as
    /// each closure touches only its own node (the grouping invariant
    /// of the batched ops).
    pub fn dispatch_lanes<T: Send, F>(&self, lane_nodes: &[NodeId], op: F) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
    {
        match self.dispatch {
            DispatchPolicy::Sequential => (0..lane_nodes.len()).map(op).collect(),
            DispatchPolicy::Parallel { workers } => {
                let dispatch = self.lanes.begin();
                let out = scatter(lane_nodes.len(), workers, &|i| {
                    let (out, cost) = self.clock.divert(|| op(i));
                    dispatch.charge(lane_nodes[i], cost);
                    out
                });
                dispatch.finish();
                out
            }
        }
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> &[Arc<dyn StorageNode>] {
        &self.nodes
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&Arc<dyn StorageNode>> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Chooses `count` distinct nodes for an object's shards: sites are
    /// visited round-robin, nodes within a site in order. Deterministic
    /// for a given object name (stable placement).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InsufficientNodes`] if `count` exceeds the
    /// node population.
    pub fn place(&self, object: &str, count: usize) -> Result<Vec<NodeId>, ClusterError> {
        if count > self.nodes.len() {
            return Err(ClusterError::InsufficientNodes {
                needed: count,
                available: self.nodes.len(),
            });
        }
        // Group nodes by site, preserving order.
        let mut by_site: Vec<(&str, Vec<&Arc<dyn StorageNode>>)> = Vec::new();
        for node in &self.nodes {
            match by_site.iter_mut().find(|(s, _)| *s == node.site()) {
                Some((_, v)) => v.push(node),
                None => by_site.push((node.site(), vec![node])),
            }
        }
        // Start site chosen by a stable hash of the object name so load
        // spreads across sites between objects.
        let start = stable_hash(object) as usize % by_site.len();
        let mut picked = Vec::with_capacity(count);
        let mut depth = 0usize;
        while picked.len() < count {
            let mut progressed = false;
            for s in 0..by_site.len() {
                let (_, nodes) = &by_site[(start + s) % by_site.len()];
                if let Some(node) = nodes.get(depth) {
                    picked.push(node.id());
                    progressed = true;
                    if picked.len() == count {
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
            depth += 1;
        }
        Ok(picked)
    }

    /// Stores an object's shards on a placement.
    ///
    /// # Errors
    ///
    /// Propagates the first node error.
    pub fn put_shards(
        &self,
        object: &str,
        placement: &[NodeId],
        shards: &[Vec<u8>],
    ) -> Result<(), ClusterError> {
        assert_eq!(placement.len(), shards.len(), "placement/shard mismatch");
        for (i, (node_id, shard)) in placement.iter().zip(shards).enumerate() {
            let node = self.node(*node_id).ok_or(ClusterError::InsufficientNodes {
                needed: placement.len(),
                available: self.nodes.len(),
            })?;
            node.put(&ShardKey::new(object, i as u32), shard)?;
        }
        Ok(())
    }

    /// Fetches an object's shards; unavailable shards come back as `None`
    /// rather than failing the whole read (erasure decoding handles
    /// gaps).
    pub fn get_shards(&self, object: &str, placement: &[NodeId]) -> Vec<Option<Vec<u8>>> {
        placement
            .iter()
            .enumerate()
            .map(|(i, node_id)| {
                self.node(*node_id)
                    .and_then(|n| n.get(&ShardKey::new(object, i as u32)).ok())
            })
            .collect()
    }

    /// Fetches an object's shards with bounded retry per node. Each
    /// shard is attempted up to `retry.max_attempts` times (transient
    /// errors and offline nodes only — a missing shard is permanent);
    /// unavailable shards come back as `None` plus a per-shard
    /// [`ShardAttempt`] record, so callers can both decode degraded and
    /// audit exactly how often each node was hammered.
    pub fn get_shards_retrying<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        retry: &RetryPolicy,
        rng: &mut R,
    ) -> (Vec<Option<Vec<u8>>>, TransferReport) {
        let mut shards = Vec::with_capacity(placement.len());
        let mut attempts = Vec::with_capacity(placement.len());
        for (i, node_id) in placement.iter().enumerate() {
            let key = ShardKey::new(object, i as u32);
            let Some(node) = self.node(*node_id) else {
                shards.push(None);
                attempts.push(ShardAttempt {
                    shard: i as u32,
                    node: *node_id,
                    attempts: 0,
                    error: Some(NodeError::Io("placement references unknown node".into())),
                });
                continue;
            };
            let (result, stats) = run_with_retry(retry, &self.clock, rng, || node.get(&key));
            let (shard, error) = match result {
                Ok(bytes) => (Some(bytes), None),
                Err(e) => (None, Some(e)),
            };
            shards.push(shard);
            attempts.push(ShardAttempt {
                shard: i as u32,
                node: *node_id,
                attempts: stats.attempts,
                error,
            });
        }
        (shards, TransferReport { attempts })
    }

    /// Stores an object's shards with bounded retry per node, tolerating
    /// per-shard failures: every write is attempted, failures are
    /// recorded instead of aborting the fan-out (the shard stays missing
    /// and is a repair's problem). Returns the number of shards durably
    /// written plus the per-shard report.
    pub fn put_shards_retrying<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        shards: &[Vec<u8>],
        retry: &RetryPolicy,
        rng: &mut R,
    ) -> (usize, TransferReport) {
        assert_eq!(placement.len(), shards.len(), "placement/shard mismatch");
        let mut written = 0usize;
        let mut attempts = Vec::with_capacity(placement.len());
        for (i, (node_id, shard)) in placement.iter().zip(shards).enumerate() {
            let key = ShardKey::new(object, i as u32);
            let Some(node) = self.node(*node_id) else {
                attempts.push(ShardAttempt {
                    shard: i as u32,
                    node: *node_id,
                    attempts: 0,
                    error: Some(NodeError::Io("placement references unknown node".into())),
                });
                continue;
            };
            let (result, stats) = run_with_retry(retry, &self.clock, rng, || node.put(&key, shard));
            let error = match result {
                Ok(()) => {
                    written += 1;
                    None
                }
                Err(e) => Some(e),
            };
            attempts.push(ShardAttempt {
                shard: i as u32,
                node: *node_id,
                attempts: stats.attempts,
                error,
            });
        }
        (written, TransferReport { attempts })
    }

    /// Stores shards with the same tolerance and per-shard accounting
    /// as [`Cluster::put_shards_retrying`], but coalesces the first
    /// attempt: shards are grouped by target node and each group ships
    /// as **one** [`StorageNode::put_batch`] call (one framed transfer,
    /// one seek on media-priced nodes). Entries that fail retryably are
    /// then retried *individually* with the remaining attempt budget,
    /// so every key sees exactly `retry.max_attempts` total attempts —
    /// the same per-key attempt schedule as the sequential path, which
    /// is what keeps stored bytes and typed failures byte-identical
    /// under deterministic fault injection. Only backoff *timing* and
    /// jitter draw order differ (clock-only effects).
    ///
    /// Under [`DispatchPolicy::Parallel`] the per-node first-attempt
    /// frames overlap on virtual lanes (and real threads) and the
    /// batch costs the critical path instead of the sum; retries stay
    /// sequential in placement order so attempt schedules and rng draw
    /// order match the sequential path exactly.
    pub fn put_shards_batched_retrying<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        shards: &[Vec<u8>],
        retry: &RetryPolicy,
        rng: &mut R,
    ) -> (usize, TransferReport) {
        assert_eq!(placement.len(), shards.len(), "placement/shard mismatch");
        let mut written = 0usize;
        let mut slots: Vec<Option<ShardAttempt>> = vec![None; placement.len()];
        let groups = group_by_node(placement);
        let lane_nodes: Vec<NodeId> = groups.iter().map(|(id, _)| *id).collect();
        // First attempt for every entry: one coalesced frame per node,
        // all frames dispatched at once (overlapped under parallel
        // lanes, in placement order under sequential dispatch).
        let first: Vec<Option<Vec<Result<(), NodeError>>>> =
            self.dispatch_lanes(&lane_nodes, |g| {
                let (node_id, idxs) = &groups[g];
                let node = self.node(*node_id)?;
                let entries: Vec<(ShardKey, &[u8])> = idxs
                    .iter()
                    .map(|&i| (ShardKey::new(object, i as u32), shards[i].as_slice()))
                    .collect();
                Some(node.put_batch(&entries))
            });
        // Resolve in group order: record outcomes and spend the
        // remaining attempt budget individually, so the per-key attempt
        // count matches the sequential path.
        for ((node_id, idxs), outcome) in groups.iter().zip(first) {
            let Some(results) = outcome else {
                for &i in idxs {
                    slots[i] = Some(ShardAttempt {
                        shard: i as u32,
                        node: *node_id,
                        attempts: 0,
                        error: Some(NodeError::Io("placement references unknown node".into())),
                    });
                }
                continue;
            };
            let node = self.node(*node_id).expect("checked in dispatch");
            for (&i, result) in idxs.iter().zip(results) {
                let (mut attempts, mut error) = match result {
                    Ok(()) => {
                        written += 1;
                        (1, None)
                    }
                    Err(e) => (1, Some(e)),
                };
                if let Some(e) = error.take() {
                    if RetryPolicy::is_retryable(&e) && retry.max_attempts > 1 {
                        let rest = retry.clone().with_attempts(retry.max_attempts - 1);
                        let key = ShardKey::new(object, i as u32);
                        let (result, stats) =
                            run_with_retry(&rest, &self.clock, rng, || node.put(&key, &shards[i]));
                        attempts += stats.attempts;
                        error = match result {
                            Ok(()) => {
                                written += 1;
                                None
                            }
                            Err(e) => Some(e),
                        };
                    } else {
                        error = Some(e);
                    }
                }
                slots[i] = Some(ShardAttempt {
                    shard: i as u32,
                    node: *node_id,
                    attempts,
                    error,
                });
            }
        }
        let attempts = slots.into_iter().map(|s| s.expect("slot filled")).collect();
        (written, TransferReport { attempts })
    }

    /// Fetches shards with the same tolerance and per-shard accounting
    /// as [`Cluster::get_shards_retrying`], but coalesces the first
    /// attempt: keys are grouped by source node and each group ships as
    /// **one** [`StorageNode::get_batch`] call (one framed response,
    /// one seek on media-priced nodes). Keys that fail retryably are
    /// then retried *individually* with the remaining attempt budget,
    /// so every key sees exactly `retry.max_attempts` total attempts —
    /// the same per-key attempt schedule as the sequential path, which
    /// is what keeps returned bytes and typed failures byte-identical
    /// under deterministic fault injection. Only backoff *timing* and
    /// jitter draw order differ (clock-only effects).
    ///
    /// Under [`DispatchPolicy::Parallel`] the per-node first-attempt
    /// frames overlap on virtual lanes (and real threads) and the
    /// batch costs the critical path instead of the sum; retries stay
    /// sequential in placement order so attempt schedules and rng draw
    /// order match the sequential path exactly.
    #[allow(clippy::type_complexity)]
    pub fn get_shards_batched_retrying<R: CryptoRng + ?Sized>(
        &self,
        object: &str,
        placement: &[NodeId],
        retry: &RetryPolicy,
        rng: &mut R,
    ) -> (Vec<Option<Vec<u8>>>, TransferReport) {
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; placement.len()];
        let mut slots: Vec<Option<ShardAttempt>> = vec![None; placement.len()];
        let groups = group_by_node(placement);
        let lane_nodes: Vec<NodeId> = groups.iter().map(|(id, _)| *id).collect();
        // First attempt for every key: one coalesced frame per node,
        // all frames dispatched at once (overlapped under parallel
        // lanes, in placement order under sequential dispatch).
        let first: Vec<Option<Vec<Result<Vec<u8>, NodeError>>>> =
            self.dispatch_lanes(&lane_nodes, |g| {
                let (node_id, idxs) = &groups[g];
                let node = self.node(*node_id)?;
                let keys: Vec<ShardKey> = idxs
                    .iter()
                    .map(|&i| ShardKey::new(object, i as u32))
                    .collect();
                Some(node.get_batch(&keys))
            });
        // Resolve in group order: record outcomes and spend the
        // remaining attempt budget individually, so the per-key attempt
        // count matches the sequential path.
        for ((node_id, idxs), outcome) in groups.iter().zip(first) {
            let Some(results) = outcome else {
                for &i in idxs {
                    slots[i] = Some(ShardAttempt {
                        shard: i as u32,
                        node: *node_id,
                        attempts: 0,
                        error: Some(NodeError::Io("placement references unknown node".into())),
                    });
                }
                continue;
            };
            let node = self.node(*node_id).expect("checked in dispatch");
            for (&i, result) in idxs.iter().zip(results) {
                let (mut attempts, mut error) = match result {
                    Ok(bytes) => {
                        shards[i] = Some(bytes);
                        (1, None)
                    }
                    Err(e) => (1, Some(e)),
                };
                // Spend the remaining attempt budget individually, so
                // the per-key attempt count matches the sequential path.
                if let Some(e) = error.take() {
                    if RetryPolicy::is_retryable(&e) && retry.max_attempts > 1 {
                        let rest = retry.clone().with_attempts(retry.max_attempts - 1);
                        let key = ShardKey::new(object, i as u32);
                        let (result, stats) =
                            run_with_retry(&rest, &self.clock, rng, || node.get(&key));
                        attempts += stats.attempts;
                        error = match result {
                            Ok(bytes) => {
                                shards[i] = Some(bytes);
                                None
                            }
                            Err(e) => Some(e),
                        };
                    } else {
                        error = Some(e);
                    }
                }
                slots[i] = Some(ShardAttempt {
                    shard: i as u32,
                    node: *node_id,
                    attempts,
                    error,
                });
            }
        }
        let attempts = slots.into_iter().map(|s| s.expect("slot filled")).collect();
        (shards, TransferReport { attempts })
    }

    /// Deletes an object's shards (best effort).
    pub fn delete_shards(&self, object: &str, placement: &[NodeId]) {
        for (i, node_id) in placement.iter().enumerate() {
            if let Some(node) = self.node(*node_id) {
                let _ = node.delete(&ShardKey::new(object, i as u32));
            }
        }
    }

    /// Total bytes stored across the cluster.
    pub fn total_stored_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.stored_bytes()).sum()
    }

    /// Distinct sites represented in the cluster.
    pub fn sites(&self) -> Vec<String> {
        let mut sites: Vec<String> = Vec::new();
        for n in &self.nodes {
            if !sites.iter().any(|s| s == n.site()) {
                sites.push(n.site().to_string());
            }
        }
        sites
    }
}

/// Groups shard indices by node, groups ordered by first occurrence in
/// the placement (deterministic, and the invariant the parallel
/// dispatch relies on: each node appears in exactly one group, so
/// concurrent first-attempt frames never touch the same node).
fn group_by_node(placement: &[NodeId]) -> Vec<(NodeId, Vec<usize>)> {
    let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
    for (i, node_id) in placement.iter().enumerate() {
        match groups.iter_mut().find(|(id, _)| id == node_id) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((*node_id, vec![i])),
        }
    }
    groups
}

fn stable_hash(s: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use crate::throughput::{throughput_in_memory_cluster, ThroughputProfile};

    fn cluster_with_handles() -> (Cluster, Vec<MemoryNode>) {
        let handles: Vec<MemoryNode> = (0..6)
            .map(|i| MemoryNode::new(i, ["us", "eu", "ap"][(i % 3) as usize]))
            .collect();
        let nodes: Vec<Arc<dyn StorageNode>> = handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect();
        (Cluster::new(nodes), handles)
    }

    #[test]
    fn placement_is_distinct_and_spread() {
        let cluster = Cluster::in_memory(&["us", "eu", "ap"], 2);
        let placement = cluster.place("obj", 3).unwrap();
        let set: std::collections::HashSet<_> = placement.iter().collect();
        assert_eq!(set.len(), 3, "distinct nodes");
        // First three picks must land on three distinct sites.
        let sites: std::collections::HashSet<&str> = placement
            .iter()
            .map(|id| cluster.node(*id).unwrap().site())
            .collect();
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn placement_deterministic_per_object() {
        let cluster = Cluster::in_memory(&["a", "b"], 3);
        assert_eq!(
            cluster.place("same", 4).unwrap(),
            cluster.place("same", 4).unwrap()
        );
    }

    #[test]
    fn placement_insufficient_nodes() {
        let cluster = Cluster::in_memory(&["solo"], 2);
        assert!(matches!(
            cluster.place("o", 3),
            Err(ClusterError::InsufficientNodes {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn put_get_roundtrip_with_loss() {
        let (cluster, handles) = cluster_with_handles();
        let placement = cluster.place("obj", 4).unwrap();
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        // All present.
        let got = cluster.get_shards("obj", &placement);
        assert!(got.iter().all(|s| s.is_some()));
        // Take one node offline: its shard reads as None.
        let victim = placement[1];
        handles
            .iter()
            .find(|h| h.id() == victim)
            .unwrap()
            .set_offline(true);
        let got = cluster.get_shards("obj", &placement);
        assert!(got[1].is_none());
        assert_eq!(got.iter().flatten().count(), 3);
    }

    #[test]
    fn delete_is_best_effort() {
        let (cluster, handles) = cluster_with_handles();
        let placement = cluster.place("obj", 3).unwrap();
        let shards: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        handles
            .iter()
            .find(|h| h.id() == placement[0])
            .unwrap()
            .set_offline(true);
        cluster.delete_shards("obj", &placement); // must not panic
        handles
            .iter()
            .find(|h| h.id() == placement[0])
            .unwrap()
            .set_offline(false);
        let got = cluster.get_shards("obj", &placement);
        // Shard 0 survived (node was offline during delete); 1, 2 gone.
        assert!(got[0].is_some());
        assert!(got[1].is_none());
        assert!(got[2].is_none());
    }

    #[test]
    fn retrying_read_bounds_attempts_on_dead_nodes() {
        use aeon_crypto::ChaChaDrbg;
        let (cluster, handles) = cluster_with_handles();
        let placement = cluster.place("obj", 4).unwrap();
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        let dead = placement[2];
        handles
            .iter()
            .find(|h| h.id() == dead)
            .unwrap()
            .set_offline(true);
        let retry = crate::retry::RetryPolicy::default().with_attempts(3);
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let (got, report) = cluster.get_shards_retrying("obj", &placement, &retry, &mut rng);
        assert_eq!(got.iter().flatten().count(), 3);
        assert!(got[2].is_none());
        assert_eq!(report.attempts_for(dead), 3, "dead node retried to cap");
        for id in placement.iter().filter(|&&id| id != dead) {
            assert_eq!(report.attempts_for(*id), 1, "healthy nodes hit once");
        }
        assert_eq!(report.failed_shards(), vec![2]);
        assert!(
            cluster.clock().now().as_millis() > 0,
            "retry backoff was charged to the cluster clock"
        );
    }

    #[test]
    fn retrying_put_tolerates_partial_failure() {
        use aeon_crypto::ChaChaDrbg;
        let (cluster, handles) = cluster_with_handles();
        let placement = cluster.place("obj", 3).unwrap();
        handles
            .iter()
            .find(|h| h.id() == placement[0])
            .unwrap()
            .set_offline(true);
        let shards: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4]).collect();
        let retry = crate::retry::RetryPolicy::default().with_attempts(2);
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let (written, report) =
            cluster.put_shards_retrying("obj", &placement, &shards, &retry, &mut rng);
        assert_eq!(written, 2, "fan-out continued past the dead node");
        assert_eq!(report.failed_shards(), vec![0]);
        assert_eq!(report.attempts_for(placement[0]), 2);
    }

    #[test]
    fn batched_put_matches_sequential_outcome() {
        use aeon_crypto::ChaChaDrbg;
        let (cluster_a, handles_a) = cluster_with_handles();
        let (cluster_b, handles_b) = cluster_with_handles();
        let placement = cluster_a.place("obj", 4).unwrap();
        assert_eq!(placement, cluster_b.place("obj", 4).unwrap());
        // Same node offline in both worlds.
        for handles in [&handles_a, &handles_b] {
            handles
                .iter()
                .find(|h| h.id() == placement[1])
                .unwrap()
                .set_offline(true);
        }
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
        let retry = crate::retry::RetryPolicy::default().with_attempts(3);
        let mut rng_a = ChaChaDrbg::from_u64_seed(7);
        let mut rng_b = ChaChaDrbg::from_u64_seed(7);
        let (w_seq, r_seq) =
            cluster_a.put_shards_retrying("obj", &placement, &shards, &retry, &mut rng_a);
        let (w_bat, r_bat) =
            cluster_b.put_shards_batched_retrying("obj", &placement, &shards, &retry, &mut rng_b);
        assert_eq!(w_seq, w_bat);
        assert_eq!(r_seq.failed_shards(), r_bat.failed_shards());
        for (a, b) in r_seq.attempts.iter().zip(&r_bat.attempts) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.node, b.node);
            assert_eq!(a.attempts, b.attempts, "per-key attempt schedule matches");
            assert_eq!(a.error, b.error, "typed failures match");
        }
        // Stored bytes identical node by node.
        assert_eq!(
            cluster_a.get_shards("obj", &placement),
            cluster_b.get_shards("obj", &placement)
        );
    }

    #[test]
    fn batched_put_groups_by_node() {
        use aeon_crypto::ChaChaDrbg;
        // Place 4 shards on 2 nodes (repeat nodes in the placement):
        // each node must receive one batch covering its shards.
        let cluster = Cluster::in_memory(&["x"], 2);
        let ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id()).collect();
        let placement = vec![ids[0], ids[1], ids[0], ids[1]];
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let (written, report) = cluster.put_shards_batched_retrying(
            "obj",
            &placement,
            &shards,
            &crate::retry::RetryPolicy::none(),
            &mut rng,
        );
        assert_eq!(written, 4);
        assert!(report.failed_shards().is_empty());
        // Report stays in shard order even though execution grouped.
        let order: Vec<u32> = report.attempts.iter().map(|a| a.shard).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(cluster
            .get_shards("obj", &placement)
            .iter()
            .all(|s| s.is_some()));
    }

    #[test]
    fn batched_get_matches_sequential_outcome() {
        use aeon_crypto::ChaChaDrbg;
        let (cluster_a, handles_a) = cluster_with_handles();
        let (cluster_b, handles_b) = cluster_with_handles();
        let placement = cluster_a.place("obj", 4).unwrap();
        assert_eq!(placement, cluster_b.place("obj", 4).unwrap());
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
        for cluster in [&cluster_a, &cluster_b] {
            cluster.put_shards("obj", &placement, &shards).unwrap();
        }
        // Same node offline in both worlds.
        for handles in [&handles_a, &handles_b] {
            handles
                .iter()
                .find(|h| h.id() == placement[1])
                .unwrap()
                .set_offline(true);
        }
        let retry = crate::retry::RetryPolicy::default().with_attempts(3);
        let mut rng_a = ChaChaDrbg::from_u64_seed(7);
        let mut rng_b = ChaChaDrbg::from_u64_seed(7);
        let (s_seq, r_seq) = cluster_a.get_shards_retrying("obj", &placement, &retry, &mut rng_a);
        let (s_bat, r_bat) =
            cluster_b.get_shards_batched_retrying("obj", &placement, &retry, &mut rng_b);
        assert_eq!(s_seq, s_bat, "returned bytes identical slot by slot");
        assert_eq!(r_seq.failed_shards(), r_bat.failed_shards());
        for (a, b) in r_seq.attempts.iter().zip(&r_bat.attempts) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.node, b.node);
            assert_eq!(a.attempts, b.attempts, "per-key attempt schedule matches");
            assert_eq!(a.error, b.error, "typed failures match");
        }
    }

    #[test]
    fn batched_get_groups_by_node() {
        use aeon_crypto::ChaChaDrbg;
        // Place 4 shards on 2 nodes (repeat nodes in the placement):
        // each node must serve one batch covering its shards.
        let cluster = Cluster::in_memory(&["x"], 2);
        let ids: Vec<NodeId> = cluster.nodes().iter().map(|n| n.id()).collect();
        let placement = vec![ids[0], ids[1], ids[0], ids[1]];
        let shards: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let (got, report) = cluster.get_shards_batched_retrying(
            "obj",
            &placement,
            &crate::retry::RetryPolicy::none(),
            &mut rng,
        );
        assert_eq!(
            got,
            shards.iter().cloned().map(Some).collect::<Vec<_>>(),
            "payloads come back in shard order despite grouped execution"
        );
        assert!(report.failed_shards().is_empty());
        // Report stays in shard order even though execution grouped.
        let order: Vec<u32> = report.attempts.iter().map(|a| a.shard).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn batched_get_missing_shard_is_not_retried() {
        use aeon_crypto::ChaChaDrbg;
        let (cluster, _handles) = cluster_with_handles();
        let placement = cluster.place("obj", 3).unwrap();
        let shards: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4]).collect();
        cluster.put_shards("obj", &placement, &shards).unwrap();
        cluster
            .node(placement[2])
            .unwrap()
            .delete(&ShardKey::new("obj", 2))
            .unwrap();
        let retry = crate::retry::RetryPolicy::default().with_attempts(5);
        let mut rng = ChaChaDrbg::from_u64_seed(9);
        let (got, report) =
            cluster.get_shards_batched_retrying("obj", &placement, &retry, &mut rng);
        assert!(got[2].is_none());
        assert_eq!(report.attempts[2].attempts, 1, "NotFound is permanent");
        assert_eq!(report.attempts[2].error, Some(NodeError::NotFound));
    }

    #[test]
    fn accounting() {
        let cluster = Cluster::in_memory(&["x", "y"], 1);
        let placement = cluster.place("o", 2).unwrap();
        cluster
            .put_shards("o", &placement, &[vec![0; 100], vec![0; 50]])
            .unwrap();
        assert_eq!(cluster.total_stored_bytes(), 150);
        assert_eq!(cluster.sites(), vec!["x".to_string(), "y".to_string()]);
    }

    /// One seek-dominated throughput cluster per dispatch mode, with a
    /// balanced placement of one shard per node.
    fn seek_heavy_pair(n: usize) -> (Cluster, Cluster, Vec<NodeId>, Vec<Vec<u8>>) {
        let profile = ThroughputProfile::new(SimDuration::from_secs(30), 1e9, 1e9);
        let sites: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        let site_refs: Vec<&str> = sites.iter().map(|s| s.as_str()).collect();
        let (seq, _) = throughput_in_memory_cluster(&site_refs, 1, &profile);
        let (par, _) = throughput_in_memory_cluster(&site_refs, 1, &profile);
        let par = par.with_dispatch(DispatchPolicy::Parallel { workers: 4 });
        let placement = seq.place("obj", n).unwrap();
        assert_eq!(par.place("obj", n).unwrap(), placement);
        let shards: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 512]).collect();
        (seq, par, placement, shards)
    }

    /// The pinned lane-charge contract: an n-node balanced batch under
    /// parallel dispatch costs the critical path (~1/n of the
    /// sequential sum), while bytes and reports stay identical.
    #[test]
    fn parallel_balanced_batch_costs_one_nth_of_sequential() {
        use aeon_crypto::ChaChaDrbg;
        let n = 6;
        let (seq, par, placement, shards) = seek_heavy_pair(n);
        let retry = crate::retry::RetryPolicy::default();

        let t0 = seq.clock().now();
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let (w_seq, rep_seq) =
            seq.put_shards_batched_retrying("obj", &placement, &shards, &retry, &mut rng);
        let seq_put = seq.clock().now() - t0;

        let t0 = par.clock().now();
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let (w_par, rep_par) =
            par.put_shards_batched_retrying("obj", &placement, &shards, &retry, &mut rng);
        let par_put = par.clock().now() - t0;

        assert_eq!(w_seq, w_par);
        assert_eq!(rep_seq, rep_par, "accounting identical across dispatch");
        // Sequential charges n seeks back to back; parallel overlaps
        // them, so the batch costs one seek (plus the tiny transfer).
        let ratio = seq_put.as_secs_f64() / par_put.as_secs_f64();
        assert!(
            (ratio - n as f64).abs() < 0.01,
            "put speedup {ratio:.3}, want ~{n}"
        );

        let t0 = seq.clock().now();
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let (got_seq, grep_seq) =
            seq.get_shards_batched_retrying("obj", &placement, &retry, &mut rng);
        let seq_get = seq.clock().now() - t0;

        let t0 = par.clock().now();
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let (got_par, grep_par) =
            par.get_shards_batched_retrying("obj", &placement, &retry, &mut rng);
        let par_get = par.clock().now() - t0;

        assert_eq!(got_seq, got_par, "payloads byte-identical");
        assert_eq!(grep_seq, grep_par);
        let ratio = seq_get.as_secs_f64() / par_get.as_secs_f64();
        assert!(
            (ratio - n as f64).abs() < 0.01,
            "get speedup {ratio:.3}, want ~{n}"
        );
    }

    /// Worker count changes wall-clock execution only: virtual elapsed
    /// time, payloads, and reports are worker-count independent.
    #[test]
    fn parallel_virtual_time_is_worker_count_independent() {
        use aeon_crypto::ChaChaDrbg;
        let n = 5;
        let mut elapsed = Vec::new();
        for workers in [1usize, 2, 8] {
            let (_, par, placement, shards) = seek_heavy_pair(n);
            let par = par.with_dispatch(DispatchPolicy::Parallel { workers });
            let retry = crate::retry::RetryPolicy::default();
            let mut rng = ChaChaDrbg::from_u64_seed(3);
            par.put_shards_batched_retrying("obj", &placement, &shards, &retry, &mut rng);
            let (got, rep) = par.get_shards_batched_retrying("obj", &placement, &retry, &mut rng);
            assert!(got.iter().all(Option::is_some));
            assert_eq!(rep.total_attempts(), n as u32);
            elapsed.push(par.clock().now());
        }
        assert_eq!(elapsed[0], elapsed[1]);
        assert_eq!(elapsed[1], elapsed[2]);
    }
}

//! Maintenance-campaign simulation: the §3.2 re-encryption analysis.
//!
//! When a cipher falls, every byte it protects must be read, transformed,
//! and written back. The paper's argument is that at archive scale this
//! takes *months to years*, during which the un-migrated remainder is
//! exposed. [`ReencryptionModel`] reproduces the closed-form estimate
//! (size ÷ aggregate bandwidth, with write-back and reserved-capacity
//! penalties); [`simulate_campaign`] runs the same scenario day by day
//! with ongoing ingest competing for bandwidth, which is where the
//! closed-form estimate turns out to be optimistic.

use crate::faults::{roll, FaultPlan, OpKind};
use crate::media::{ArchiveSite, DAYS_PER_MONTH};
use crate::node::ShardKey;

/// Errors from campaign simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// Ingest consumes all write bandwidth, so migration never finishes.
    Saturated {
        /// Ongoing ingest, TB/day.
        ingest_tb_per_day: f64,
        /// The site's total write bandwidth, TB/day.
        write_tb_per_day: f64,
    },
}

impl core::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CampaignError::Saturated {
                ingest_tb_per_day,
                write_tb_per_day,
            } => write!(
                f,
                "ingest ({ingest_tb_per_day} TB/day) saturates write bandwidth \
                 ({write_tb_per_day} TB/day); campaign cannot progress"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Closed-form re-encryption duration model.
#[derive(Debug, Clone, PartialEq)]
pub struct ReencryptionModel {
    /// The archive being migrated.
    pub site: ArchiveSite,
    /// Multiplier on total work for writing re-encrypted data back
    /// (writes are slower than reads and must be verified). The paper
    /// argues "at least double".
    pub write_penalty: f64,
    /// Fraction of bandwidth reserved for foreground work (ingest and
    /// reads). The paper argues this "can easily double" the duration,
    /// i.e. a reservation of 0.5.
    pub reserved_fraction: f64,
}

/// The model's outputs, in months.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReencryptionEstimate {
    /// Pure read-once lower bound.
    pub read_only_months: f64,
    /// With the write-back penalty.
    pub with_write_months: f64,
    /// With write-back and reserved capacity — the realistic figure.
    pub realistic_months: f64,
}

impl ReencryptionModel {
    /// The paper's assumptions: write-back doubles the work, foreground
    /// reservation halves available bandwidth.
    pub fn paper_assumptions(site: ArchiveSite) -> Self {
        ReencryptionModel {
            site,
            write_penalty: 2.0,
            reserved_fraction: 0.5,
        }
    }

    /// Computes the three duration figures.
    pub fn estimate(&self) -> ReencryptionEstimate {
        let read_days = self.site.full_read_days();
        let with_write = read_days * self.write_penalty;
        let realistic = with_write / (1.0 - self.reserved_fraction).max(1e-9);
        ReencryptionEstimate {
            read_only_months: read_days / DAYS_PER_MONTH,
            with_write_months: with_write / DAYS_PER_MONTH,
            realistic_months: realistic / DAYS_PER_MONTH,
        }
    }
}

/// Day-by-day campaign simulation state.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Days until every byte was migrated.
    pub days: f64,
    /// Terabytes migrated.
    pub migrated_tb: f64,
    /// Terabytes of *new* data ingested during the campaign (which also
    /// needed migration if ingested under the old scheme — here new data
    /// arrives already re-encrypted).
    pub ingested_tb: f64,
    /// Fraction of the archive that was still exposed (un-migrated) at
    /// the campaign's halfway point in time.
    pub exposed_fraction_at_halfway: f64,
    /// Terabytes re-read / re-written due to injected faults (0 for a
    /// fault-free campaign).
    pub retried_tb: f64,
}

/// Simulates a re-encryption campaign day by day.
///
/// Each day the archive has `read_tb_per_day` of read bandwidth and
/// `write_tb_per_day` of write bandwidth. Ongoing ingest consumes
/// `ingest_tb_per_day` of write bandwidth with priority; the campaign
/// gets what is left, bounded by both read and write sides (a migrated
/// terabyte must be read once and written once).
///
/// Returns the duration and exposure profile.
///
/// # Errors
///
/// Returns [`CampaignError::Saturated`] if the campaign cannot progress
/// because ingest consumes all write bandwidth.
pub fn simulate_campaign(
    site: &ArchiveSite,
    ingest_tb_per_day: f64,
) -> Result<CampaignOutcome, CampaignError> {
    let write_available = site.write_tb_per_day - ingest_tb_per_day;
    if write_available <= 0.0 {
        return Err(CampaignError::Saturated {
            ingest_tb_per_day,
            write_tb_per_day: site.write_tb_per_day,
        });
    }
    let mut remaining = site.capacity_tb;
    let mut days = 0.0f64;
    let mut ingested = 0.0f64;
    let total = site.capacity_tb;
    let mut exposed_at_halfway = 1.0f64;
    // Closed-form pace per day lets us jump in whole days then finish
    // fractionally; exposure is tracked at the projected halfway time.
    let daily = site.read_tb_per_day.min(write_available);
    let duration = total / daily;
    loop {
        if days >= duration / 2.0 && exposed_at_halfway == 1.0 {
            exposed_at_halfway = remaining / total;
        }
        if remaining <= daily {
            days += remaining / daily;
            ingested += ingest_tb_per_day * remaining / daily;
            break;
        }
        remaining -= daily;
        ingested += ingest_tb_per_day;
        days += 1.0;
    }
    if exposed_at_halfway == 1.0 {
        exposed_at_halfway = 0.5; // degenerate one-day campaigns
    }
    Ok(CampaignOutcome {
        days,
        migrated_tb: total,
        ingested_tb: ingested,
        exposed_fraction_at_halfway: exposed_at_halfway,
        retried_tb: 0.0,
    })
}

/// [`simulate_campaign`] under injected faults, driven by the standard
/// [`FaultPlan`] substrate: the plan's `transient_io_rate` is the mean
/// fraction of a day's volume that fails verification and is
/// re-read/re-written (drawn per day from the plan's
/// [`FaultPlan::decision_rng`] — the same pure
/// `(seed, op, key, nth)` construction [`crate::faults::FaultyNode`]
/// uses, keyed here by campaign day — uniformly from
/// `[0, 2 * rate]`, clamped at 0.95), so forward progress that day is
/// only `bandwidth * (1 - loss)`. With a zero rate the outcome matches
/// the fault-free simulation. The same plan seed reproduces the
/// identical day-by-day trajectory.
///
/// # Errors
///
/// Returns [`CampaignError::Saturated`] if ingest consumes all write
/// bandwidth.
pub fn simulate_campaign_faulty(
    site: &ArchiveSite,
    ingest_tb_per_day: f64,
    plan: &FaultPlan,
) -> Result<CampaignOutcome, CampaignError> {
    let write_available = site.write_tb_per_day - ingest_tb_per_day;
    if write_available <= 0.0 {
        return Err(CampaignError::Saturated {
            ingest_tb_per_day,
            write_tb_per_day: site.write_tb_per_day,
        });
    }
    let daily = site.read_tb_per_day.min(write_available);
    let total = site.capacity_tb;
    let rate = plan.transient_io_rate;
    let mut remaining = total;
    let mut days = 0.0f64;
    let mut ingested = 0.0f64;
    let mut retried = 0.0f64;
    // Remaining volume at the start of each day, for the halfway-point
    // exposure lookup after the (fault-dependent) duration is known.
    let mut trajectory = Vec::new();
    loop {
        trajectory.push(remaining);
        let loss = if rate > 0.0 {
            let day = days as u32;
            let mut rng = plan.decision_rng(OpKind::Get, &ShardKey::new("campaign-day", day), 0);
            (2.0 * rate * roll(&mut rng)).min(0.95)
        } else {
            0.0
        };
        let progress = daily * (1.0 - loss);
        if remaining <= progress {
            let fraction = remaining / progress;
            days += fraction;
            ingested += ingest_tb_per_day * fraction;
            retried += daily * loss * fraction;
            break;
        }
        remaining -= progress;
        ingested += ingest_tb_per_day;
        retried += daily * loss;
        days += 1.0;
    }
    let exposed_fraction_at_halfway = if days <= 2.0 {
        0.5 // degenerate short campaigns, matching the fault-free model
    } else {
        trajectory[(days / 2.0) as usize] / total
    };
    Ok(CampaignOutcome {
        days,
        migrated_tb: total,
        ingested_tb: ingested,
        exposed_fraction_at_halfway,
        retried_tb: retried,
    })
}

/// Generic bulk-maintenance estimator, used for proactive-refresh
/// campaigns: given `objects` objects of `object_bytes` each and a
/// per-object protocol cost of `protocol_bytes_per_object` moved over a
/// network of `network_tb_per_day`, how many months does one full pass
/// take?
pub fn protocol_campaign_months(
    objects: u64,
    protocol_bytes_per_object: u64,
    network_tb_per_day: f64,
) -> f64 {
    let total_tb = (objects as f64) * (protocol_bytes_per_object as f64) / 1.0e12;
    total_tb / network_tb_per_day / DAYS_PER_MONTH
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::ArchiveSite;

    #[test]
    fn paper_assumptions_multiply_out() {
        let m = ReencryptionModel::paper_assumptions(ArchiveSite::hpss());
        let e = m.estimate();
        // Read-only ≈ 6.6 months; ×2 write-back; ×2 reservation.
        assert!(
            (e.read_only_months - 6.57).abs() < 0.1,
            "{}",
            e.read_only_months
        );
        assert!((e.with_write_months - 2.0 * e.read_only_months).abs() < 1e-9);
        assert!((e.realistic_months - 4.0 * e.read_only_months).abs() < 1e-9);
        // "The practical time could turn into many years": > 2 years.
        assert!(e.realistic_months > 24.0);
    }

    #[test]
    fn all_paper_archives_take_months() {
        for site in ArchiveSite::paper_examples() {
            let e = ReencryptionModel::paper_assumptions(site.clone()).estimate();
            if site.name == "Pergamum" {
                assert!(e.read_only_months < 1.0);
            } else {
                assert!(
                    e.read_only_months > 6.0,
                    "{}: {}",
                    site.name,
                    e.read_only_months
                );
            }
        }
    }

    #[test]
    fn exabyte_archive_takes_years() {
        let e = ReencryptionModel::paper_assumptions(ArchiveSite::exabyte_archive()).estimate();
        assert!(e.realistic_months > 60.0, "{}", e.realistic_months); // 5+ years
    }

    #[test]
    fn simulation_matches_closed_form_without_ingest() {
        let site = ArchiveSite {
            name: "toy".into(),
            capacity_tb: 1000.0,
            read_tb_per_day: 10.0,
            write_tb_per_day: 20.0,
            media: crate::media::MediaType::Tape,
        };
        let out = simulate_campaign(&site, 0.0).expect("no ingest");
        // Bounded by reads: 100 days.
        assert!((out.days - 100.0).abs() < 1.0);
        assert!((out.exposed_fraction_at_halfway - 0.5).abs() < 0.02);
    }

    #[test]
    fn ingest_slows_campaign() {
        let site = ArchiveSite {
            name: "toy".into(),
            capacity_tb: 1000.0,
            read_tb_per_day: 20.0,
            write_tb_per_day: 20.0,
            media: crate::media::MediaType::Tape,
        };
        let idle = simulate_campaign(&site, 0.0).expect("idle");
        let busy = simulate_campaign(&site, 10.0).expect("half bandwidth left");
        assert!(
            busy.days > idle.days * 1.9,
            "{} vs {}",
            busy.days,
            idle.days
        );
        assert!(busy.ingested_tb > 0.0);
    }

    #[test]
    fn saturated_ingest_is_typed_error() {
        let site = ArchiveSite {
            name: "toy".into(),
            capacity_tb: 100.0,
            read_tb_per_day: 10.0,
            write_tb_per_day: 5.0,
            media: crate::media::MediaType::Tape,
        };
        // Exactly saturated and over-saturated both report the error
        // instead of panicking mid-simulation.
        for ingest in [5.0, 7.5] {
            match simulate_campaign(&site, ingest) {
                Err(CampaignError::Saturated {
                    ingest_tb_per_day,
                    write_tb_per_day,
                }) => {
                    assert_eq!(ingest_tb_per_day, ingest);
                    assert_eq!(write_tb_per_day, 5.0);
                }
                other => panic!("expected Saturated error, got {other:?}"),
            }
        }
        let msg = simulate_campaign(&site, 5.0).unwrap_err().to_string();
        assert!(msg.contains("saturates write bandwidth"), "{msg}");
    }

    #[test]
    fn fault_rate_slows_campaign_deterministically() {
        let site = ArchiveSite {
            name: "toy".into(),
            capacity_tb: 1000.0,
            read_tb_per_day: 10.0,
            write_tb_per_day: 20.0,
            media: crate::media::MediaType::Tape,
        };
        let clean = simulate_campaign(&site, 0.0).expect("no ingest");
        let zero = simulate_campaign_faulty(&site, 0.0, &FaultPlan::new(1)).expect("no ingest");
        assert!((zero.days - clean.days).abs() < 1.0);
        assert_eq!(zero.retried_tb, 0.0);

        let plan = |seed, rate| FaultPlan::new(seed).with_transient_io_rate(rate);
        let faulty = simulate_campaign_faulty(&site, 0.0, &plan(1, 0.2)).expect("no ingest");
        assert!(
            faulty.days > clean.days * 1.1,
            "{} vs {}",
            faulty.days,
            clean.days
        );
        assert!(faulty.retried_tb > 0.0);
        // Heavier faults: slower still.
        let heavier = simulate_campaign_faulty(&site, 0.0, &plan(1, 0.4)).expect("no ingest");
        assert!(heavier.days > faulty.days);
        // Same seed, same trajectory; different seed, different days.
        let again = simulate_campaign_faulty(&site, 0.0, &plan(1, 0.2)).unwrap();
        assert_eq!(again.days, faulty.days);
        assert_eq!(again.retried_tb, faulty.retried_tb);
        let other = simulate_campaign_faulty(&site, 0.0, &plan(2, 0.2)).unwrap();
        assert_ne!(other.days, faulty.days);
    }

    #[test]
    fn faulty_campaign_still_detects_saturation() {
        let site = ArchiveSite {
            name: "toy".into(),
            capacity_tb: 100.0,
            read_tb_per_day: 10.0,
            write_tb_per_day: 5.0,
            media: crate::media::MediaType::Tape,
        };
        assert!(matches!(
            simulate_campaign_faulty(&site, 5.0, &FaultPlan::new(3).with_transient_io_rate(0.1)),
            Err(CampaignError::Saturated { .. })
        ));
    }

    #[test]
    fn protocol_campaign_scaling() {
        // 1e9 objects × 1 MB of refresh traffic over 100 TB/day ≈ 10 days.
        let months = protocol_campaign_months(1_000_000_000, 1_000_000, 100.0);
        assert!((months * DAYS_PER_MONTH - 10.0).abs() < 0.1);
        // Quadratic blowup with n shows up through bytes/object.
        let m_n5 = protocol_campaign_months(1_000_000, 5 * 4 * 1_000_000, 100.0);
        let m_n10 = protocol_campaign_months(1_000_000, 10 * 9 * 1_000_000, 100.0);
        assert!(m_n10 / m_n5 > 4.0);
    }
}

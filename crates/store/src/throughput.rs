//! Throughput-charged storage nodes: the §3.2 cost model on the wire.
//!
//! The paper's central measurement is that maintenance campaigns are
//! **throughput-bound**: re-encrypting an archive takes months because
//! every byte must cross the media's bandwidth, twice. [`ThroughputNode`]
//! makes that cost observable on the real data path — it wraps any
//! [`StorageNode`] and charges `seek + bytes / bandwidth` of virtual
//! time to a shared [`SimClock`] per `get`/`put`, from the same
//! [`MediaProfile`] numbers the closed-form model uses. Campaigns run
//! through the unchanged Codec→Plan→Executor path; the clock reading at
//! the end *is* the measurement.

use crate::clock::{SimClock, SimDuration};
use crate::cluster::Cluster;
use crate::media::{ArchiveSite, MediaProfile, MediaType};
use crate::node::{MemoryNode, NodeError, NodeId, ShardKey, StorageNode};
use std::sync::Arc;

/// The virtual-time price list of one storage device (or one site's
/// aggregate array): a per-operation positioning cost plus a streaming
/// rate per direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputProfile {
    /// Charged once per `get`/`put`/`delete`, before any bytes move —
    /// robot load + positioning for tape, head seek for disk, spin-up
    /// for MAID-style archives.
    pub seek: SimDuration,
    /// Sustained read rate in bytes per virtual second. `0.0` means the
    /// device cannot be read (offline); transfers saturate rather than
    /// complete. Prefer [`ThroughputProfile::new`], which normalizes
    /// negative and non-finite rates to this sentinel.
    pub read_bytes_per_sec: f64,
    /// Sustained write rate in bytes per virtual second, with the same
    /// `0.0` = offline semantics as `read_bytes_per_sec`.
    pub write_bytes_per_sec: f64,
}

impl ThroughputProfile {
    /// Builds a profile, sanitizing the rates: a rate that is zero,
    /// negative, or non-finite (a fully offline site, a degenerate
    /// `read_tb_per_day = 0`, a NaN from upstream division) is
    /// normalized to exactly `0.0`, which [`Self::read_charge`] and
    /// [`Self::write_charge`] price as an *unreachable* device — the
    /// transfer saturates at the top of the virtual timeline instead of
    /// completing instantly. Every constructor routes through here.
    #[must_use]
    pub fn new(seek: SimDuration, read_bytes_per_sec: f64, write_bytes_per_sec: f64) -> Self {
        ThroughputProfile {
            seek,
            read_bytes_per_sec: sanitize_rate(read_bytes_per_sec),
            write_bytes_per_sec: sanitize_rate(write_bytes_per_sec),
        }
    }

    /// The price list of a single drive of the given media class. Seek
    /// costs are representative per-op positioning figures for the
    /// class (tape robot + wind, disk seek, spin-up for archival HDD).
    #[must_use]
    pub fn from_media(media: &MediaProfile) -> Self {
        let seek_secs = match media.media {
            MediaType::Tape => 30.0,
            MediaType::Hdd => 0.015,
            MediaType::Ssd => 0.000_1,
            MediaType::Glass => 10.0,
            MediaType::Dna => 3_600.0, // retrieval prep dominates
            MediaType::Film => 60.0,
        };
        ThroughputProfile::new(
            SimDuration::from_secs_f64(seek_secs),
            media.read_mbps_per_drive * 1e6,
            media.write_mbps_per_drive * 1e6,
        )
    }

    /// The aggregate streaming profile of a whole archive site, for
    /// measured §3.2 campaigns: zero per-op seek (a bulk campaign
    /// streams; positioning amortizes to nothing against the transfer)
    /// and the site's total read rate in both directions. Write-back is
    /// provisioned at the aggregate *read* rate because that is exactly
    /// the paper's ×2 write-back factor — re-writing every byte doubles
    /// the campaign against the read-only bound. (The site's separate
    /// `write_tb_per_day` figure models ingest contention in
    /// [`crate::campaign::simulate_campaign`], not this factor.)
    #[must_use]
    pub fn from_site_aggregate(site: &ArchiveSite) -> Self {
        let read = site.read_tb_per_day * 1e12 / 86_400.0;
        ThroughputProfile::new(SimDuration::ZERO, read, read)
    }

    /// Virtual cost of reading `bytes` through this profile.
    #[must_use]
    pub fn read_charge(&self, bytes: usize) -> SimDuration {
        self.seek + transfer(bytes, self.read_bytes_per_sec)
    }

    /// Virtual cost of writing `bytes` through this profile.
    #[must_use]
    pub fn write_charge(&self, bytes: usize) -> SimDuration {
        self.seek + transfer(bytes, self.write_bytes_per_sec)
    }
}

/// Normalizes a configured rate: only a finite, strictly positive rate
/// can move bytes; everything else (zero, negative, NaN, ±inf) means
/// the device is offline and collapses to exactly `0.0`.
fn sanitize_rate(rate: f64) -> f64 {
    if rate.is_finite() && rate > 0.0 {
        rate
    } else {
        0.0
    }
}

fn transfer(bytes: usize, bytes_per_sec: f64) -> SimDuration {
    // The guard must reject NaN as well as zero/negative rates: NaN
    // fails `<= 0.0`, so an unsanitized profile would feed
    // `bytes / NaN = NaN` to `SimDuration::from_secs_f64`, whose
    // non-finite clamp silently prices the transfer at *zero* — an
    // offline site whose reads complete instantly. A rate that cannot
    // move bytes instead saturates at the top of the virtual timeline:
    // the transfer never finishes, and campaign arithmetic sees that.
    if !(bytes_per_sec.is_finite() && bytes_per_sec > 0.0) {
        return if bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(u64::MAX)
        };
    }
    SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
}

/// A decorator that prices every shard operation on the virtual clock.
///
/// Wraps any [`StorageNode`]; bytes pass through untouched (the clock
/// charges time, never changes data), so golden vectors and fault
/// decisions are identical with or without the decorator. Metadata
/// operations (`keys`, `stored_bytes`) are free — they model catalog
/// lookups, not media transfers.
///
/// # Examples
///
/// ```
/// use aeon_store::clock::SimClock;
/// use aeon_store::media::MediaProfile;
/// use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
/// use aeon_store::throughput::{ThroughputNode, ThroughputProfile};
/// use std::sync::Arc;
///
/// let clock = SimClock::new();
/// let profile = ThroughputProfile::from_media(&MediaProfile::tape());
/// let node = ThroughputNode::new(
///     Arc::new(MemoryNode::new(0, "us-east")),
///     profile,
///     clock.clone(),
/// );
/// node.put(&ShardKey::new("obj", 0), &[0u8; 1_000_000])?;
/// // 30 s robot/seek + 1 MB at 300 MB/s of virtual time, no wall time.
/// assert!(clock.now().as_secs_f64() > 30.0);
/// # Ok::<(), aeon_store::node::NodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputNode {
    inner: Arc<dyn StorageNode>,
    profile: ThroughputProfile,
    clock: SimClock,
}

impl ThroughputNode {
    /// Wraps `inner`, charging operations through `profile` to `clock`.
    pub fn new(inner: Arc<dyn StorageNode>, profile: ThroughputProfile, clock: SimClock) -> Self {
        ThroughputNode {
            inner,
            profile,
            clock,
        }
    }

    /// The clock this node charges.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The price list in effect.
    #[must_use]
    pub fn profile(&self) -> &ThroughputProfile {
        &self.profile
    }
}

impl StorageNode for ThroughputNode {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn site(&self) -> &str {
        self.inner.site()
    }

    fn put(&self, key: &ShardKey, data: &[u8]) -> Result<(), NodeError> {
        // The device does the positioning and the transfer whether or
        // not the write ultimately succeeds, so the charge is
        // unconditional.
        self.clock.charge(self.profile.write_charge(data.len()));
        self.inner.put(key, data)
    }

    fn get(&self, key: &ShardKey) -> Result<Vec<u8>, NodeError> {
        match self.inner.get(key) {
            Ok(data) => {
                self.clock.charge(self.profile.read_charge(data.len()));
                Ok(data)
            }
            Err(e) => {
                // A failed read still paid the positioning cost.
                self.clock.charge(self.profile.seek);
                Err(e)
            }
        }
    }

    fn put_batch(&self, entries: &[(ShardKey, &[u8])]) -> Vec<Result<(), NodeError>> {
        // A coalesced batch is one positioning operation plus one framed
        // transfer — the whole point of batching on seek-dominated
        // media. Charge the frame once, then delegate to the inner
        // node's batch (NOT to `self.put`, which would re-charge a seek
        // per entry), so per-key outcomes are exactly the inner node's.
        self.clock
            .charge(self.profile.write_charge(crate::batch::framed_len(entries)));
        self.inner.put_batch(entries)
    }

    fn get_batch(&self, keys: &[ShardKey]) -> Vec<Result<Vec<u8>, NodeError>> {
        // One positioning operation plus one framed response transfer,
        // priced from the response frame the inner node actually
        // produced (hits carry their payload, misses a status byte).
        // Delegate to the inner node's batch (NOT to `self.get`, which
        // would re-charge a seek per key), so per-key outcomes are
        // exactly the inner node's.
        let results = self.inner.get_batch(keys);
        let response: Vec<(ShardKey, Option<&[u8]>)> = keys
            .iter()
            .zip(&results)
            .map(|(k, r)| (k.clone(), r.as_ref().ok().map(|d| d.as_slice())))
            .collect();
        self.clock.charge(
            self.profile
                .read_charge(crate::batch::read_framed_len(&response)),
        );
        results
    }

    fn delete(&self, key: &ShardKey) -> Result<(), NodeError> {
        // Deletion is a catalog update plus positioning; no transfer.
        self.clock.charge(self.profile.seek);
        self.inner.delete(key)
    }

    fn keys(&self) -> Vec<ShardKey> {
        self.inner.keys()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }
}

/// Builds an in-memory cluster whose every node charges `profile` to
/// one shared clock (also installed as the cluster's clock, so retry
/// backoff lands on the same timeline). Returns the cluster and a
/// handle to the clock.
#[must_use]
pub fn throughput_in_memory_cluster(
    sites: &[&str],
    nodes_per_site: usize,
    profile: &ThroughputProfile,
) -> (Cluster, SimClock) {
    let clock = SimClock::new();
    let mut nodes: Vec<Arc<dyn StorageNode>> = Vec::new();
    let mut id = 0;
    for site in sites {
        for _ in 0..nodes_per_site {
            nodes.push(Arc::new(ThroughputNode::new(
                Arc::new(MemoryNode::new(id, *site)),
                *profile,
                clock.clone(),
            )));
            id += 1;
        }
    }
    let cluster = Cluster::new(nodes).with_clock(clock.clone());
    (cluster, clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimTime;

    fn flat_profile(bps: f64) -> ThroughputProfile {
        ThroughputProfile {
            seek: SimDuration::from_millis(10),
            read_bytes_per_sec: bps,
            write_bytes_per_sec: bps / 2.0,
        }
    }

    #[test]
    fn charges_seek_plus_transfer() {
        let clock = SimClock::new();
        let node = ThroughputNode::new(
            Arc::new(MemoryNode::new(0, "a")),
            flat_profile(1e6),
            clock.clone(),
        );
        let key = ShardKey::new("o", 0);
        node.put(&key, &[7u8; 500_000]).unwrap();
        // 10 ms seek + 0.5 MB at 0.5 MB/s = 1.010 s.
        assert_eq!(clock.now().as_millis(), 1_010);
        node.get(&key).unwrap();
        // + 10 ms seek + 0.5 MB at 1 MB/s = 0.510 s.
        assert_eq!(clock.now().as_millis(), 1_520);
    }

    #[test]
    fn failed_get_charges_only_seek() {
        let clock = SimClock::new();
        let node = ThroughputNode::new(
            Arc::new(MemoryNode::new(0, "a")),
            flat_profile(1e6),
            clock.clone(),
        );
        assert!(node.get(&ShardKey::new("missing", 0)).is_err());
        assert_eq!(clock.now().as_millis(), 10);
    }

    #[test]
    fn metadata_is_free() {
        let clock = SimClock::new();
        let node = ThroughputNode::new(
            Arc::new(MemoryNode::new(0, "a")),
            flat_profile(1e6),
            clock.clone(),
        );
        let _ = node.keys();
        let _ = node.stored_bytes();
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn batched_put_charges_one_seek_for_the_frame() {
        let clock = SimClock::new();
        let node = ThroughputNode::new(
            Arc::new(MemoryNode::new(0, "a")),
            flat_profile(1e6),
            clock.clone(),
        );
        let keys: Vec<ShardKey> = (0..8u32).map(|i| ShardKey::new("o", i)).collect();
        let data = [9u8; 1_000];
        let entries: Vec<(ShardKey, &[u8])> = keys.iter().map(|k| (k.clone(), &data[..])).collect();
        let results = node.put_batch(&entries);
        assert!(results.iter().all(|r| r.is_ok()));
        let batched = clock.now();
        // One seek for the whole frame, versus eight for sequential puts.
        let frame = crate::batch::framed_len(&entries);
        let expected = flat_profile(1e6).write_charge(frame);
        assert_eq!(batched, SimTime::ZERO + expected);
        let seq_clock = SimClock::new();
        let seq = ThroughputNode::new(
            Arc::new(MemoryNode::new(1, "a")),
            flat_profile(1e6),
            seq_clock.clone(),
        );
        for k in &keys {
            seq.put(k, &data).unwrap();
        }
        assert!(
            batched < seq_clock.now(),
            "coalesced frame amortizes seeks: {batched:?} vs {:?}",
            seq_clock.now()
        );
        // The stored bytes are identical either way.
        for k in &keys {
            assert_eq!(node.get(k).unwrap(), seq.get(k).unwrap());
        }
    }

    #[test]
    fn get_charges_are_pinned_seek_plus_bytes() {
        // Pin the read price list exactly: a hit costs one seek plus
        // the payload over the read rate; a miss costs the bare seek.
        let profile = flat_profile(1e6);
        let clock = SimClock::new();
        let node = ThroughputNode::new(Arc::new(MemoryNode::new(0, "a")), profile, clock.clone());
        let key = ShardKey::new("o", 0);
        node.put(&key, &[5u8; 250_000]).unwrap();
        let after_put = clock.now();
        node.get(&key).unwrap();
        // 10 ms seek + 250 KB at 1 MB/s = 260 ms.
        assert_eq!(clock.now(), after_put + SimDuration::from_millis(260));
        assert!(node.get(&ShardKey::new("missing", 0)).is_err());
        assert_eq!(
            clock.now(),
            after_put + SimDuration::from_millis(270),
            "a miss pays exactly the 10 ms positioning cost"
        );
    }

    #[test]
    fn batched_get_charges_one_seek_for_the_frame() {
        let clock = SimClock::new();
        let node = ThroughputNode::new(
            Arc::new(MemoryNode::new(0, "a")),
            flat_profile(1e6),
            clock.clone(),
        );
        let keys: Vec<ShardKey> = (0..8u32).map(|i| ShardKey::new("o", i)).collect();
        let data = [9u8; 1_000];
        for k in &keys {
            node.put(k, &data).unwrap();
        }
        let after_writes = clock.now();
        let results = node.get_batch(&keys);
        assert!(results.iter().all(|r| r.is_ok()));
        let batched = clock.now().since(after_writes);
        // One seek for the whole response frame, versus eight for
        // sequential gets.
        let response: Vec<(ShardKey, Option<&[u8]>)> =
            keys.iter().map(|k| (k.clone(), Some(&data[..]))).collect();
        let frame = crate::batch::read_framed_len(&response);
        assert_eq!(batched, flat_profile(1e6).read_charge(frame));
        let seq_clock = SimClock::new();
        let seq = ThroughputNode::new(
            Arc::new(MemoryNode::new(1, "a")),
            flat_profile(1e6),
            seq_clock.clone(),
        );
        for k in &keys {
            seq.put(k, &data).unwrap();
        }
        let seq_start = seq_clock.now();
        for k in &keys {
            seq.get(k).unwrap();
        }
        let sequential = seq_clock.now().since(seq_start);
        assert!(
            batched < sequential,
            "coalesced response amortizes seeks: {batched:?} vs {sequential:?}"
        );
        // N sequential gets pay exactly N seeks plus N transfers.
        let mut expected_seq = SimDuration::ZERO;
        for _ in 0..keys.len() {
            expected_seq += flat_profile(1e6).read_charge(data.len());
        }
        assert_eq!(sequential, expected_seq);
    }

    #[test]
    fn batched_get_prices_misses_as_status_bytes() {
        // A miss in the batch contributes only its entry header to the
        // frame — no payload bytes — and per-key errors pass through.
        let clock = SimClock::new();
        let node = ThroughputNode::new(
            Arc::new(MemoryNode::new(0, "a")),
            flat_profile(1e6),
            clock.clone(),
        );
        let present = ShardKey::new("o", 0);
        node.put(&present, &[1u8; 100]).unwrap();
        let start = clock.now();
        let keys = vec![present.clone(), ShardKey::new("o", 1)];
        let results = node.get_batch(&keys);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(NodeError::NotFound));
        let response: Vec<(ShardKey, Option<&[u8]>)> = vec![
            (present, Some(&[1u8; 100][..])),
            (ShardKey::new("o", 1), None),
        ];
        let frame = crate::batch::read_framed_len(&response);
        assert_eq!(
            clock.now().since(start),
            flat_profile(1e6).read_charge(frame)
        );
    }

    #[test]
    fn zero_rate_saturates_both_directions() {
        // A fully offline site (read_tb_per_day = 0) must price
        // transfers as never-finishing, not free: before the guard, the
        // zero-rate path returned SimDuration::ZERO and a campaign
        // against an offline site measured as instantaneous.
        let mut site = ArchiveSite::hpss();
        site.read_tb_per_day = 0.0;
        let p = ThroughputProfile::from_site_aggregate(&site);
        assert_eq!(p.read_bytes_per_sec, 0.0);
        assert_eq!(
            p.read_charge(1).as_nanos(),
            u64::MAX,
            "offline read saturates"
        );
        assert_eq!(
            p.write_charge(1).as_nanos(),
            u64::MAX,
            "offline write saturates"
        );
        // Zero bytes still cost only the (zero) seek.
        assert_eq!(p.read_charge(0), SimDuration::ZERO);
    }

    #[test]
    fn nan_and_negative_rates_are_sanitized_at_construction() {
        // NaN passes a naive `<= 0.0` guard and used to flow through
        // `bytes / NaN` into `from_secs_f64`'s non-finite clamp,
        // pricing the transfer at zero. Both constructor sanitization
        // and the transfer guard must catch it, in both directions.
        let p = ThroughputProfile::new(SimDuration::ZERO, f64::NAN, -3.0);
        assert_eq!(p.read_bytes_per_sec, 0.0);
        assert_eq!(p.write_bytes_per_sec, 0.0);
        assert_eq!(p.read_charge(1024).as_nanos(), u64::MAX);
        assert_eq!(p.write_charge(1024).as_nanos(), u64::MAX);
        // A literal-constructed profile (pub fields) gets the same
        // protection from the transfer guard itself.
        let literal = ThroughputProfile {
            seek: SimDuration::ZERO,
            read_bytes_per_sec: f64::NAN,
            write_bytes_per_sec: f64::INFINITY,
        };
        assert_eq!(literal.read_charge(1).as_nanos(), u64::MAX);
        assert_eq!(literal.write_charge(1).as_nanos(), u64::MAX);
    }

    #[test]
    fn site_aggregate_profile_matches_closed_form_rate() {
        let site = ArchiveSite::hpss();
        let p = ThroughputProfile::from_site_aggregate(&site);
        // Reading the whole archive must take exactly the closed-form
        // read-only bound: capacity / daily read rate.
        let bytes = site.capacity_tb * 1e12;
        let days = p.read_charge(bytes as usize).as_days_f64();
        assert!((days - site.capacity_tb / site.read_tb_per_day).abs() < 1e-6);
        assert_eq!(p.seek, SimDuration::ZERO);
        assert_eq!(p.read_bytes_per_sec, p.write_bytes_per_sec);
    }

    #[test]
    fn cluster_helper_shares_one_clock() {
        let profile = ThroughputProfile::from_media(&MediaProfile::hdd());
        let (cluster, clock) = throughput_in_memory_cluster(&["a", "b"], 2, &profile);
        assert_eq!(cluster.nodes().len(), 4);
        assert!(clock.same_clock(cluster.clock()));
        cluster.nodes()[0]
            .put(&ShardKey::new("o", 0), &[1u8; 1024])
            .unwrap();
        assert!(clock.now() > SimTime::ZERO);
    }
}

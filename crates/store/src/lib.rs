//! Simulated archival storage substrate.
//!
//! The paper assumes (as all of its surveyed systems do) an archive
//! spanning geographically dispersed storage nodes on cheap, mostly
//! offline media. This crate supplies that world in simulation:
//!
//! * [`node`] — the [`node::StorageNode`] trait with in-memory and
//!   file-backed implementations, plus failure and corruption injection
//!   for adversary experiments.
//! * [`cluster`] — a geo-dispersed cluster that places shards across
//!   sites with anti-affinity (no two shards of an object on one site).
//! * [`media`] — parametric media models (tape, HDD, SSD, glass, DNA,
//!   film): cost, density, lifetime, throughput; plus presets for the
//!   real archives the paper cites (Oak Ridge HPSS, ECMWF MARS, CERN
//!   EOS, Pergamum).
//! * [`durability`] — Monte-Carlo object-loss estimation per `(n, k)`
//!   layout under node failures and repair delays.
//! * [`campaign`] — the §3.2 analysis engine: how long does it take to
//!   read, re-encrypt, and write back an entire archive, under write
//!   penalties and reserved foreground capacity? Both closed-form and
//!   discrete-event variants.
//! * [`faults`] — seeded, deterministic fault injection: a
//!   [`faults::FaultyNode`] decorator applying a [`faults::FaultPlan`]
//!   (transient I/O errors, persistent bit flips, torn writes, simulated
//!   latency, scheduled offline windows) to any inner node.
//! * [`retry`] — bounded retry with exponential backoff and
//!   deterministic jitter, shared by every consumer of node I/O.
//! * [`clock`] — the virtual-time engine: a shared [`clock::SimClock`]
//!   of monotonic virtual nanoseconds that every time-costing layer
//!   charges, and the single [`clock::EpochSchedule`] mapping epoch
//!   numbers onto the timeline.
//! * [`throughput`] — [`throughput::ThroughputNode`], a decorator
//!   charging `seek + bytes/bandwidth` virtual time per operation from
//!   the [`media`] models, so campaigns over the real data path
//!   *measure* the paper's §3.2 costs instead of citing them.
//! * [`batch`] — wire framing for coalesced shard-write batches: one
//!   framed transfer (one seek) per node per batch instead of one seek
//!   per shard, without changing what any node stores.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod batch;
pub mod campaign;
pub mod clock;
pub mod cluster;
pub mod durability;
pub mod faults;
pub mod lane;
pub mod media;
pub mod node;
pub mod retry;
pub mod throughput;

pub use clock::{EpochSchedule, SimClock, SimDuration, SimTime};
pub use cluster::Cluster;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultyNode};
pub use lane::{DispatchPolicy, LaneClock, LaneDispatch};
pub use media::{ArchiveSite, MediaProfile, MediaType};
pub use node::{MemoryNode, NodeError, NodeId, StorageNode};
pub use retry::{RetryPolicy, RetryStats};
pub use throughput::{ThroughputNode, ThroughputProfile};

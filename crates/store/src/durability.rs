//! Durability simulation: object-loss probability under node failures.
//!
//! Availability is the third leg of the CIA triad — "much better
//! understood" per the paper, but the policy choice still moves it: an
//! `[n, k]` encoding loses an object only when more than `n - k` of its
//! nodes are simultaneously dead. This Monte-Carlo engine estimates
//! annual object-loss probability for any `(n, k)` under a per-node
//! annual failure rate and a mean repair time, so policy comparisons
//! (Figure 1's cost axis) can carry a durability column too.

use aeon_crypto::{ChaChaDrbg, CryptoRng};

/// Parameters of a durability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityParams {
    /// Shards per object (`n`).
    pub shards: usize,
    /// Shards needed to read (`k`).
    pub read_threshold: usize,
    /// Probability a given node fails in a given day.
    pub daily_failure_prob: f64,
    /// Days to detect and repair (re-replicate) a failed shard.
    pub repair_days: u32,
    /// Days simulated (365 = annual figure).
    pub horizon_days: u32,
}

impl DurabilityParams {
    /// A policy's shard layout with typical archival hardware figures
    /// (AFR ≈ 2%/year, one-week repair).
    pub fn archival(shards: usize, read_threshold: usize) -> Self {
        DurabilityParams {
            shards,
            read_threshold,
            daily_failure_prob: 0.02 / 365.0,
            repair_days: 7,
            horizon_days: 365,
        }
    }
}

/// Result of a durability estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityEstimate {
    /// Fraction of simulated objects that were ever unreadable
    /// (insufficient live shards at some instant).
    pub unavailability_events: f64,
    /// Fraction permanently lost (unreadable with zero live shards —
    /// nothing left to repair from).
    pub loss_probability: f64,
    /// Simulated object-years.
    pub object_years: f64,
}

/// Runs a Monte-Carlo durability estimate over `objects` independent
/// objects.
///
/// Each day each live shard fails independently with
/// `daily_failure_prob`; failed shards are repaired `repair_days` later
/// *if* the object is still readable (repairs read the surviving shards).
/// An object with fewer than `read_threshold` live shards is unavailable;
/// if additionally no shard survives until repair completes, it is lost.
///
/// # Panics
///
/// Panics if `read_threshold > shards` or `shards == 0`.
pub fn simulate(params: DurabilityParams, objects: u32, seed: u64) -> DurabilityEstimate {
    assert!(params.shards > 0, "need at least one shard");
    assert!(
        params.read_threshold <= params.shards,
        "threshold exceeds shard count"
    );
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut unavailable = 0u32;
    let mut lost = 0u32;
    let scaled_p = (params.daily_failure_prob * u64::MAX as f64) as u64;

    for _ in 0..objects {
        // days_until_repaired[i] == 0 means shard i is live.
        let mut repair_timer = vec![0u32; params.shards];
        let mut was_unavailable = false;
        let mut was_lost = false;
        for _day in 0..params.horizon_days {
            // Failures.
            for timer in repair_timer.iter_mut() {
                if *timer == 0 && rng.next_u64() < scaled_p {
                    *timer = params.repair_days;
                }
            }
            let live = repair_timer.iter().filter(|&&t| t == 0).count();
            if live < params.read_threshold {
                was_unavailable = true;
                if live == 0 {
                    was_lost = true;
                    break;
                }
            }
            // Repairs tick down only while the object is readable (a
            // repair needs `read_threshold` sources).
            if live >= params.read_threshold {
                for timer in repair_timer.iter_mut() {
                    if *timer > 0 {
                        *timer -= 1;
                    }
                }
            }
        }
        unavailable += was_unavailable as u32;
        lost += was_lost as u32;
    }
    DurabilityEstimate {
        unavailability_events: unavailable as f64 / objects as f64,
        loss_probability: lost as f64 / objects as f64,
        object_years: objects as f64 * params.horizon_days as f64 / 365.0,
    }
}

/// Closed-form steady-state approximation: probability that more than
/// `n - k` shards are simultaneously down, with per-shard downtime
/// fraction `q = daily_failure_prob × repair_days` (binomial tail).
pub fn analytic_unavailability(params: DurabilityParams) -> f64 {
    let q = (params.daily_failure_prob * params.repair_days as f64).min(1.0);
    let n = params.shards;
    let tolerable = n - params.read_threshold;
    // P(more than `tolerable` down) = Σ_{j>tolerable} C(n,j) q^j (1-q)^(n-j)
    let mut p = 0.0;
    for j in tolerable + 1..=n {
        p += binomial(n, j) * q.powi(j as i32) * (1.0 - q).powi((n - j) as i32);
    }
    // Per-day instantaneous probability → approximate horizon-days union.
    1.0 - (1.0 - p).powi(params.horizon_days as i32)
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (k - i) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_parity_means_more_durable() {
        let base = DurabilityParams {
            shards: 4,
            read_threshold: 4,
            daily_failure_prob: 0.01,
            repair_days: 3,
            horizon_days: 120,
        };
        let fragile = simulate(base, 400, 1);
        let sturdy = simulate(
            DurabilityParams {
                shards: 6,
                read_threshold: 4,
                ..base
            },
            400,
            1,
        );
        assert!(
            sturdy.unavailability_events < fragile.unavailability_events,
            "parity must reduce unavailability: {} vs {}",
            sturdy.unavailability_events,
            fragile.unavailability_events
        );
    }

    #[test]
    fn zero_failure_rate_is_perfect() {
        let params = DurabilityParams {
            shards: 3,
            read_threshold: 2,
            daily_failure_prob: 0.0,
            repair_days: 7,
            horizon_days: 365,
        };
        let est = simulate(params, 100, 2);
        assert_eq!(est.unavailability_events, 0.0);
        assert_eq!(est.loss_probability, 0.0);
    }

    #[test]
    fn certain_failure_loses_everything() {
        let params = DurabilityParams {
            shards: 3,
            read_threshold: 2,
            daily_failure_prob: 1.0,
            repair_days: 7,
            horizon_days: 10,
        };
        let est = simulate(params, 50, 3);
        assert_eq!(est.loss_probability, 1.0);
    }

    #[test]
    fn faster_repair_helps() {
        let slow = DurabilityParams {
            shards: 5,
            read_threshold: 3,
            daily_failure_prob: 0.02,
            repair_days: 20,
            horizon_days: 365,
        };
        let fast = DurabilityParams {
            repair_days: 1,
            ..slow
        };
        let est_slow = simulate(slow, 300, 4);
        let est_fast = simulate(fast, 300, 4);
        assert!(est_fast.unavailability_events <= est_slow.unavailability_events);
    }

    #[test]
    fn analytic_tracks_simulation_order_of_magnitude() {
        let params = DurabilityParams {
            shards: 4,
            read_threshold: 3,
            daily_failure_prob: 0.005,
            repair_days: 5,
            horizon_days: 365,
        };
        let sim = simulate(params, 3000, 5);
        let analytic = analytic_unavailability(params);
        // Loose agreement: within a factor of ~4 (the analytic model
        // ignores repair-blocking correlations).
        if sim.unavailability_events > 0.0 {
            let ratio = analytic / sim.unavailability_events;
            assert!(
                (0.2..5.0).contains(&ratio),
                "analytic {analytic} vs sim {}",
                sim.unavailability_events
            );
        }
    }

    #[test]
    fn archival_preset_sane() {
        let p = DurabilityParams::archival(6, 4);
        assert_eq!(p.shards, 6);
        assert!(p.daily_failure_prob > 0.0 && p.daily_failure_prob < 1e-3);
    }

    #[test]
    #[should_panic(expected = "threshold exceeds")]
    fn bad_threshold_panics() {
        let p = DurabilityParams {
            shards: 2,
            read_threshold: 3,
            daily_failure_prob: 0.0,
            repair_days: 1,
            horizon_days: 1,
        };
        let _ = simulate(p, 1, 0);
    }
}

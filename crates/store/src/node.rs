//! Storage nodes: the unit of trust, failure, and compromise.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Identifies a storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A shard key: object identifier plus shard index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// The object this shard belongs to.
    pub object: String,
    /// Which shard of the object.
    pub shard: u32,
}

impl ShardKey {
    /// Creates a shard key.
    pub fn new(object: impl Into<String>, shard: u32) -> Self {
        ShardKey {
            object: object.into(),
            shard,
        }
    }
}

/// Errors from node operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The shard does not exist on this node.
    NotFound,
    /// The node is offline (failure injection).
    Offline,
    /// An I/O error from the backing store.
    Io(String),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::NotFound => write!(f, "shard not found"),
            NodeError::Offline => write!(f, "node offline"),
            NodeError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// A storage node holding shard blobs.
///
/// Implementations must be thread-safe; the cluster fans out to nodes
/// concurrently during campaign simulations.
pub trait StorageNode: Send + Sync + fmt::Debug {
    /// This node's identity.
    fn id(&self) -> NodeId;

    /// The site (failure/compromise domain) the node lives in.
    fn site(&self) -> &str;

    /// Stores a shard.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Offline`] under failure injection or
    /// [`NodeError::Io`] from the backing store.
    fn put(&self, key: &ShardKey, data: &[u8]) -> Result<(), NodeError>;

    /// Stores a batch of shards destined for this node in one call —
    /// the coalescing hook for fleet-scale batched plan execution. One
    /// `Result` per entry, in order.
    ///
    /// The default delegates to [`StorageNode::put`] per entry, so
    /// fault-injecting decorators keep their exact per-key semantics
    /// (each entry is that key's next `put` access). Media decorators
    /// override this to charge one seek for the whole frame instead of
    /// one per shard.
    fn put_batch(&self, entries: &[(ShardKey, &[u8])]) -> Vec<Result<(), NodeError>> {
        entries.iter().map(|(k, d)| self.put(k, d)).collect()
    }

    /// Retrieves a shard.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::NotFound`], [`NodeError::Offline`], or
    /// [`NodeError::Io`].
    fn get(&self, key: &ShardKey) -> Result<Vec<u8>, NodeError>;

    /// Retrieves a batch of shards from this node in one call — the
    /// read-side coalescing hook mirroring [`StorageNode::put_batch`].
    /// One `Result` per key, in order.
    ///
    /// The default delegates to [`StorageNode::get`] per key, so
    /// fault-injecting decorators keep their exact per-key semantics
    /// (each key is that key's next `get` access). Media decorators
    /// override this to charge one seek for the whole response frame
    /// instead of one per shard.
    fn get_batch(&self, keys: &[ShardKey]) -> Vec<Result<Vec<u8>, NodeError>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Deletes a shard (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Offline`] under failure injection.
    fn delete(&self, key: &ShardKey) -> Result<(), NodeError>;

    /// Lists all shard keys on this node.
    fn keys(&self) -> Vec<ShardKey>;

    /// Bytes stored on this node.
    fn stored_bytes(&self) -> u64;
}

/// Shared failure/compromise state, attachable to any node implementation.
#[derive(Debug, Default)]
struct Injection {
    offline: bool,
    /// Keys whose contents are silently corrupted on read.
    corrupted: HashMap<ShardKey, Vec<u8>>,
}

/// An in-memory storage node with failure and corruption injection.
///
/// # Examples
///
/// ```
/// use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
///
/// let node = MemoryNode::new(0, "us-east");
/// let key = ShardKey::new("obj-1", 0);
/// node.put(&key, b"shard bytes")?;
/// assert_eq!(node.get(&key)?, b"shard bytes");
/// # Ok::<(), aeon_store::node::NodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryNode {
    inner: Arc<MemoryNodeInner>,
}

#[derive(Debug)]
struct MemoryNodeInner {
    id: NodeId,
    site: String,
    blobs: RwLock<HashMap<ShardKey, Vec<u8>>>,
    injection: RwLock<Injection>,
}

impl MemoryNode {
    /// Creates a node at the given site.
    pub fn new(id: u32, site: impl Into<String>) -> Self {
        MemoryNode {
            inner: Arc::new(MemoryNodeInner {
                id: NodeId(id),
                site: site.into(),
                blobs: RwLock::new(HashMap::new()),
                injection: RwLock::new(Injection::default()),
            }),
        }
    }

    /// Takes the node offline (reads and writes fail) or back online.
    pub fn set_offline(&self, offline: bool) {
        self.inner.injection.write().offline = offline;
    }

    /// Returns `true` if the node is currently offline.
    pub fn is_offline(&self) -> bool {
        self.inner.injection.read().offline
    }

    /// Silently corrupts a stored shard: subsequent reads return the given
    /// bytes instead of the stored ones (bit-rot / malicious modification).
    pub fn corrupt(&self, key: &ShardKey, replacement: Vec<u8>) {
        self.inner
            .injection
            .write()
            .corrupted
            .insert(key.clone(), replacement);
    }

    /// Adversary hook: dumps every blob on the node (a total compromise).
    pub fn exfiltrate_all(&self) -> Vec<(ShardKey, Vec<u8>)> {
        self.inner
            .blobs
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

impl StorageNode for MemoryNode {
    fn id(&self) -> NodeId {
        self.inner.id
    }

    fn site(&self) -> &str {
        &self.inner.site
    }

    fn put(&self, key: &ShardKey, data: &[u8]) -> Result<(), NodeError> {
        if self.is_offline() {
            return Err(NodeError::Offline);
        }
        self.inner.blobs.write().insert(key.clone(), data.to_vec());
        Ok(())
    }

    fn get(&self, key: &ShardKey) -> Result<Vec<u8>, NodeError> {
        if self.is_offline() {
            return Err(NodeError::Offline);
        }
        if let Some(corrupt) = self.inner.injection.read().corrupted.get(key) {
            return Ok(corrupt.clone());
        }
        self.inner
            .blobs
            .read()
            .get(key)
            .cloned()
            .ok_or(NodeError::NotFound)
    }

    fn delete(&self, key: &ShardKey) -> Result<(), NodeError> {
        if self.is_offline() {
            return Err(NodeError::Offline);
        }
        self.inner.blobs.write().remove(key);
        Ok(())
    }

    fn keys(&self) -> Vec<ShardKey> {
        self.inner.blobs.read().keys().cloned().collect()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner
            .blobs
            .read()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }
}

/// A file-backed storage node: each shard is a file under the node's root
/// directory. Used by durability-oriented integration tests.
#[derive(Debug)]
pub struct FileNode {
    id: NodeId,
    site: String,
    root: PathBuf,
    injection: RwLock<Injection>,
}

impl FileNode {
    /// Creates a node rooted at `root` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the directory cannot be created.
    pub fn create(id: u32, site: impl Into<String>, root: PathBuf) -> Result<Self, NodeError> {
        std::fs::create_dir_all(&root).map_err(|e| NodeError::Io(e.to_string()))?;
        Ok(FileNode {
            id: NodeId(id),
            site: site.into(),
            root,
            injection: RwLock::new(Injection::default()),
        })
    }

    /// Takes the node offline or back online.
    pub fn set_offline(&self, offline: bool) {
        self.injection.write().offline = offline;
    }

    /// Returns `true` if the node is currently offline.
    pub fn is_offline(&self) -> bool {
        self.injection.read().offline
    }

    /// Silently corrupts a stored shard: subsequent reads return the
    /// given bytes instead of the on-disk ones (bit-rot / malicious
    /// modification), matching [`MemoryNode::corrupt`].
    pub fn corrupt(&self, key: &ShardKey, replacement: Vec<u8>) {
        self.injection
            .write()
            .corrupted
            .insert(key.clone(), replacement);
    }

    fn path_for(&self, key: &ShardKey) -> PathBuf {
        // Object ids are caller-controlled: encode to a safe filename.
        let safe: String = key
            .object
            .bytes()
            .map(|b| {
                if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' {
                    (b as char).to_string()
                } else {
                    format!("%{b:02x}")
                }
            })
            .collect();
        self.root.join(format!("{safe}.{}", key.shard))
    }
}

impl StorageNode for FileNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn site(&self) -> &str {
        &self.site
    }

    fn put(&self, key: &ShardKey, data: &[u8]) -> Result<(), NodeError> {
        if self.injection.read().offline {
            return Err(NodeError::Offline);
        }
        std::fs::write(self.path_for(key), data).map_err(|e| NodeError::Io(e.to_string()))
    }

    fn get(&self, key: &ShardKey) -> Result<Vec<u8>, NodeError> {
        if self.injection.read().offline {
            return Err(NodeError::Offline);
        }
        if let Some(corrupt) = self.injection.read().corrupted.get(key) {
            return Ok(corrupt.clone());
        }
        match std::fs::read(self.path_for(key)) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(NodeError::NotFound),
            Err(e) => Err(NodeError::Io(e.to_string())),
        }
    }

    fn delete(&self, key: &ShardKey) -> Result<(), NodeError> {
        if self.injection.read().offline {
            return Err(NodeError::Offline);
        }
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(NodeError::Io(e.to_string())),
        }
    }

    fn keys(&self) -> Vec<ShardKey> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let (obj, shard) = name.rsplit_once('.')?;
                // Decode percent-encoding.
                let mut decoded = Vec::new();
                let bytes = obj.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    if bytes[i] == b'%' && i + 2 < bytes.len() {
                        let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
                        decoded.push(u8::from_str_radix(hex, 16).ok()?);
                        i += 3;
                    } else {
                        decoded.push(bytes[i]);
                        i += 1;
                    }
                }
                Some(ShardKey {
                    object: String::from_utf8(decoded).ok()?,
                    shard: shard.parse().ok()?,
                })
            })
            .collect()
    }

    fn stored_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_node_crud() {
        let node = MemoryNode::new(1, "eu-west");
        let key = ShardKey::new("obj", 3);
        assert_eq!(node.get(&key).unwrap_err(), NodeError::NotFound);
        node.put(&key, b"data").unwrap();
        assert_eq!(node.get(&key).unwrap(), b"data");
        assert_eq!(node.stored_bytes(), 4);
        node.delete(&key).unwrap();
        assert_eq!(node.get(&key).unwrap_err(), NodeError::NotFound);
        assert_eq!(node.stored_bytes(), 0);
    }

    #[test]
    fn memory_node_offline_injection() {
        let node = MemoryNode::new(2, "ap-south");
        let key = ShardKey::new("o", 0);
        node.put(&key, b"x").unwrap();
        node.set_offline(true);
        assert_eq!(node.get(&key).unwrap_err(), NodeError::Offline);
        assert_eq!(node.put(&key, b"y").unwrap_err(), NodeError::Offline);
        node.set_offline(false);
        assert_eq!(node.get(&key).unwrap(), b"x");
    }

    #[test]
    fn memory_node_corruption_injection() {
        let node = MemoryNode::new(3, "us-west");
        let key = ShardKey::new("o", 1);
        node.put(&key, b"clean").unwrap();
        node.corrupt(&key, b"dirty".to_vec());
        assert_eq!(node.get(&key).unwrap(), b"dirty");
    }

    #[test]
    fn memory_node_exfiltration() {
        let node = MemoryNode::new(4, "x");
        node.put(&ShardKey::new("a", 0), b"1").unwrap();
        node.put(&ShardKey::new("b", 0), b"2").unwrap();
        let dump = node.exfiltrate_all();
        assert_eq!(dump.len(), 2);
    }

    #[test]
    fn file_node_crud_and_listing() {
        let dir = std::env::temp_dir().join(format!("aeon-node-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let node = FileNode::create(5, "dc-1", dir.clone()).unwrap();
        let key = ShardKey::new("obj/with:odd chars", 7);
        node.put(&key, b"persisted").unwrap();
        assert_eq!(node.get(&key).unwrap(), b"persisted");
        let keys = node.keys();
        assert_eq!(keys, vec![key.clone()]);
        assert_eq!(node.stored_bytes(), 9);
        node.delete(&key).unwrap();
        assert_eq!(node.get(&key).unwrap_err(), NodeError::NotFound);
        node.delete(&key).unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_key_equality() {
        assert_eq!(ShardKey::new("a", 1), ShardKey::new("a", 1));
        assert_ne!(ShardKey::new("a", 1), ShardKey::new("a", 2));
        assert_ne!(ShardKey::new("a", 1), ShardKey::new("b", 1));
    }
}

//! Seeded, deterministic fault injection for storage nodes.
//!
//! Long-term reliability claims are worthless unless they are validated
//! against *injected* latent faults (Baker et al.; PASIS): real archival
//! media produce transient I/O errors, silent bit rot, torn writes, and
//! long scheduled offline windows, and the read/repair machinery above
//! them must degrade inside the redundancy budget instead of aborting.
//! [`FaultyNode`] decorates any [`StorageNode`] with a [`FaultPlan`] of
//! such faults, fully reproducible from a `u64` seed.
//!
//! # Determinism contract
//!
//! Every fault decision is a **pure function of
//! `(seed, operation kind, shard key, nth access of that pair)`** — the
//! per-decision randomness is a ChaCha DRBG seeded from the SHA-256 of
//! exactly those inputs. Interleaving operations on *different* keys,
//! changing thread scheduling, or reordering unrelated traffic does not
//! change which faults a given operation sequence experiences; two runs
//! that issue the same per-key operation sequences observe identical
//! faults and identical [`FaultEvent`] logs. Offline windows are keyed
//! to epochs of the shared virtual clock (via the single
//! [`EpochSchedule`] conversion) and use no randomness at all.
//!
//! Latency is *virtual*: the decorator charges the milliseconds a real
//! device would have stalled to its [`SimClock`] (see
//! [`FaultyNode::clock`]) without sleeping, so chaos campaigns over
//! thousands of epochs run in test time. The clock charges time and
//! never touches shard bytes, so fault decisions — and therefore event
//! logs and golden vectors — are independent of it.

use crate::clock::{EpochSchedule, SimClock, SimDuration};
use crate::node::{NodeError, NodeId, ShardKey, StorageNode};
use aeon_crypto::{ChaChaDrbg, CryptoRng, Sha256};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The taxonomy of injected faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation failed with a transient I/O error; a later attempt
    /// on the same key draws fresh randomness and may succeed.
    TransientIo,
    /// A stored bit flipped (latent sector corruption). The flip is
    /// persisted back to the inner node: every subsequent read sees the
    /// corrupted bytes until a repair rewrites the shard.
    BitFlip {
        /// Which bit of the blob was flipped.
        bit: u64,
    },
    /// A write was torn: only a prefix of the data reached the medium
    /// and the operation reported failure.
    TornWrite {
        /// Bytes that actually landed.
        kept: usize,
    },
    /// The operation stalled for simulated `ms` milliseconds before
    /// proceeding normally.
    Latency {
        /// Simulated stall in milliseconds.
        ms: u64,
    },
    /// The node was inside a scheduled offline window.
    Offline,
}

/// Which node operation an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A shard read.
    Get,
    /// A shard write.
    Put,
    /// A shard delete.
    Delete,
}

impl OpKind {
    fn tag(self) -> u8 {
        match self {
            OpKind::Get => 0x01,
            OpKind::Put => 0x02,
            OpKind::Delete => 0x03,
        }
    }
}

/// One injected fault, in injection order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Monotonic per-node sequence number.
    pub seq: u64,
    /// Epoch clock value when the fault fired.
    pub epoch: u64,
    /// The operation that was faulted.
    pub op: OpKind,
    /// The shard key the operation targeted.
    pub key: ShardKey,
    /// What was injected.
    pub fault: FaultKind,
}

/// A seeded recipe of faults to inject.
///
/// Rates are per-operation probabilities in `[0, 1]`. The default plan
/// (any seed, all rates zero, no windows) injects nothing, so a
/// [`FaultyNode`] with it is a transparent wrapper.
///
/// # Examples
///
/// ```
/// use aeon_store::faults::FaultPlan;
///
/// let plan = FaultPlan::new(0x5EED)
///     .with_transient_io_rate(0.1)
///     .with_bit_flip_rate(0.01)
///     .with_offline_window(10, 20);
/// assert!(plan.offline_at(15) && !plan.offline_at(20));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Probability that any operation fails with a transient I/O error.
    pub transient_io_rate: f64,
    /// Probability that a successful read flips (and persists) one bit.
    pub bit_flip_rate: f64,
    /// Probability that a write is torn: a prefix lands, the op errors.
    pub torn_write_rate: f64,
    /// Mean simulated per-operation latency; each op draws uniformly
    /// from `[0, 2 * mean]` milliseconds. `0` disables latency.
    pub mean_latency_ms: u64,
    /// Half-open `[start, end)` epoch windows during which the node is
    /// offline (every operation fails with [`NodeError::Offline`]).
    pub offline_windows: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// A benign plan: nothing is injected until rates are raised.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_io_rate: 0.0,
            bit_flip_rate: 0.0,
            torn_write_rate: 0.0,
            mean_latency_ms: 0,
            offline_windows: Vec::new(),
        }
    }

    /// Sets the transient I/O failure rate.
    pub fn with_transient_io_rate(mut self, rate: f64) -> Self {
        self.transient_io_rate = rate;
        self
    }

    /// Sets the persistent bit-flip rate on reads.
    pub fn with_bit_flip_rate(mut self, rate: f64) -> Self {
        self.bit_flip_rate = rate;
        self
    }

    /// Sets the torn-write rate.
    pub fn with_torn_write_rate(mut self, rate: f64) -> Self {
        self.torn_write_rate = rate;
        self
    }

    /// Sets the mean simulated per-operation latency.
    pub fn with_mean_latency_ms(mut self, ms: u64) -> Self {
        self.mean_latency_ms = ms;
        self
    }

    /// Adds a scheduled offline window over epochs `[start, end)`.
    pub fn with_offline_window(mut self, start: u64, end: u64) -> Self {
        self.offline_windows.push((start, end));
        self
    }

    /// Whether the plan schedules the node offline at `epoch`.
    pub fn offline_at(&self, epoch: u64) -> bool {
        self.offline_windows
            .iter()
            .any(|&(s, e)| epoch >= s && epoch < e)
    }

    /// Derives an independent per-node plan: same rates and windows,
    /// seed mixed with the node id so sibling nodes fault independently
    /// while the whole cluster stays reproducible from one seed.
    pub fn for_node(&self, node: NodeId) -> FaultPlan {
        let mut plan = self.clone();
        plan.seed = splitmix(self.seed ^ ((node.0 as u64) << 32 | 0xFA_u64));
        plan
    }

    /// The determinism contract's per-decision DRBG: the SHA-256 of
    /// `(seed, operation kind, shard key, nth access)` seeds a private
    /// ChaCha stream. [`FaultyNode`] draws every fault decision from
    /// this, and campaign-level fault models
    /// ([`crate::campaign::simulate_campaign_faulty`]) reuse it, so the
    /// workspace has exactly one fault-decision construction.
    pub fn decision_rng(&self, op: OpKind, key: &ShardKey, access: u64) -> ChaChaDrbg {
        let mut h = Sha256::new();
        h.update(&self.seed.to_le_bytes());
        h.update(&[op.tag()]);
        h.update(&(key.object.len() as u64).to_le_bytes());
        h.update(key.object.as_bytes());
        h.update(&key.shard.to_le_bytes());
        h.update(&access.to_le_bytes());
        ChaChaDrbg::from_seed(h.finalize())
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct FaultState {
    seq: u64,
    /// nth-access counters per (operation tag, key) — the determinism
    /// contract's third input.
    access: HashMap<(u8, ShardKey), u64>,
    events: Vec<FaultEvent>,
}

/// A decorator injecting a [`FaultPlan`]'s faults into any inner
/// [`StorageNode`].
///
/// # Examples
///
/// ```
/// use aeon_store::faults::{FaultPlan, FaultyNode};
/// use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
/// use std::sync::Arc;
///
/// let inner = Arc::new(MemoryNode::new(0, "us"));
/// let node = FaultyNode::new(inner, FaultPlan::new(42)); // benign plan
/// let key = ShardKey::new("obj", 0);
/// node.put(&key, b"bytes")?;
/// assert_eq!(node.get(&key)?, b"bytes");
/// assert!(node.events().is_empty());
/// # Ok::<(), aeon_store::node::NodeError>(())
/// ```
pub struct FaultyNode {
    inner: Arc<dyn StorageNode>,
    plan: FaultPlan,
    clock: SimClock,
    epochs: EpochSchedule,
    state: Mutex<FaultState>,
}

impl fmt::Debug for FaultyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyNode")
            .field("inner", &self.inner.id())
            .field("plan", &self.plan)
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl FaultyNode {
    /// Wraps `inner` with `plan` on a private virtual clock (default
    /// epoch schedule). Use [`FaultyNode::with_clock`] to share a
    /// timeline across a cluster.
    pub fn new(inner: Arc<dyn StorageNode>, plan: FaultPlan) -> Self {
        FaultyNode::with_clock(inner, plan, SimClock::new(), EpochSchedule::default())
    }

    /// Wraps `inner` with `plan`, charging latency to the shared
    /// `clock` and deriving offline-window epochs from it through
    /// `epochs`.
    pub fn with_clock(
        inner: Arc<dyn StorageNode>,
        plan: FaultPlan,
        clock: SimClock,
        epochs: EpochSchedule,
    ) -> Self {
        FaultyNode {
            inner,
            plan,
            clock,
            epochs,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The virtual clock this node charges latency to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The `Epoch ↔ SimTime` conversion in effect.
    pub fn epoch_schedule(&self) -> &EpochSchedule {
        &self.epochs
    }

    /// The current epoch, derived from the virtual clock (no separate
    /// epoch counter exists).
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch_of(self.clock.now())
    }

    /// Advances the clock to the start of `epoch` (offline windows are
    /// keyed to clock epochs). The clock is monotone: moving to an
    /// epoch that already started is a no-op.
    pub fn set_epoch(&self, epoch: u64) {
        self.clock.advance_to(self.epochs.start_of(epoch));
    }

    /// Advances the clock to the start of the next epoch.
    pub fn advance_epoch(&self) {
        self.set_epoch(self.epoch() + 1);
    }

    /// Whether the node is inside a scheduled offline window right now.
    pub fn is_offline_now(&self) -> bool {
        self.plan.offline_at(self.epoch())
    }

    /// The injected-fault log, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.lock().events.clone()
    }

    /// Clears and returns the injected-fault log.
    pub fn take_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.state.lock().events)
    }

    /// Common preamble: bump the access counter, apply offline windows
    /// and latency, and roll for a transient failure. Returns the op's
    /// DRBG for any further decisions on success.
    fn begin(&self, op: OpKind, key: &ShardKey) -> Result<ChaChaDrbg, NodeError> {
        let access = {
            let mut st = self.state.lock();
            *st.access
                .entry((op.tag(), key.clone()))
                .and_modify(|c| *c += 1)
                .or_insert(0)
        };
        if self.plan.offline_at(self.epoch()) {
            self.record(op, key, FaultKind::Offline);
            return Err(NodeError::Offline);
        }
        let mut rng = self.plan.decision_rng(op, key, access);
        if self.plan.mean_latency_ms > 0 {
            let ms = rng.gen_range(2 * self.plan.mean_latency_ms + 1);
            if ms > 0 {
                // The stall is charged as virtual time, never slept.
                self.clock.charge(SimDuration::from_millis(ms));
                self.record(op, key, FaultKind::Latency { ms });
            }
        }
        if roll(&mut rng) < self.plan.transient_io_rate {
            self.record(op, key, FaultKind::TransientIo);
            return Err(NodeError::Io("injected transient fault".into()));
        }
        Ok(rng)
    }

    fn record(&self, op: OpKind, key: &ShardKey, fault: FaultKind) {
        let epoch = self.epoch();
        let mut st = self.state.lock();
        let seq = st.seq;
        st.seq += 1;
        st.events.push(FaultEvent {
            seq,
            epoch,
            op,
            key: key.clone(),
            fault,
        });
    }
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
pub(crate) fn roll<R: CryptoRng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl StorageNode for FaultyNode {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn site(&self) -> &str {
        self.inner.site()
    }

    fn put(&self, key: &ShardKey, data: &[u8]) -> Result<(), NodeError> {
        let mut rng = self.begin(OpKind::Put, key)?;
        if roll(&mut rng) < self.plan.torn_write_rate && !data.is_empty() {
            let kept = rng.gen_range(data.len() as u64) as usize;
            // The prefix lands on the medium; the caller sees a failure
            // and must retry (a fresh put overwrites the torn blob).
            let _ = self.inner.put(key, &data[..kept]);
            self.record(OpKind::Put, key, FaultKind::TornWrite { kept });
            return Err(NodeError::Io("injected torn write".into()));
        }
        self.inner.put(key, data)
    }

    fn get(&self, key: &ShardKey) -> Result<Vec<u8>, NodeError> {
        let mut rng = self.begin(OpKind::Get, key)?;
        let data = self.inner.get(key)?;
        if roll(&mut rng) < self.plan.bit_flip_rate && !data.is_empty() {
            let bit = rng.gen_range(data.len() as u64 * 8);
            let mut flipped = data;
            flipped[(bit / 8) as usize] ^= 1 << (bit % 8);
            // Latent corruption is persistent: write the rot back so
            // every later read sees it until a repair rewrites the shard.
            let _ = self.inner.put(key, &flipped);
            self.record(OpKind::Get, key, FaultKind::BitFlip { bit });
            return Ok(flipped);
        }
        Ok(data)
    }

    fn delete(&self, key: &ShardKey) -> Result<(), NodeError> {
        self.begin(OpKind::Delete, key)?;
        self.inner.delete(key)
    }

    fn keys(&self) -> Vec<ShardKey> {
        self.inner.keys()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }
}

/// Builds an in-memory cluster whose nodes are all wrapped in
/// [`FaultyNode`]s with per-node plans derived from `plan` (see
/// [`FaultPlan::for_node`]), all sharing one virtual clock — which is
/// also installed as the cluster's clock, so injected latency and retry
/// backoff land on the same timeline. Returns the cluster plus handles
/// for epoch control and event-log inspection.
pub fn faulty_in_memory_cluster(
    sites: &[&str],
    per_site: usize,
    plan: &FaultPlan,
) -> (crate::cluster::Cluster, Vec<Arc<FaultyNode>>) {
    let clock = SimClock::new();
    let epochs = EpochSchedule::default();
    let mut handles = Vec::new();
    let mut nodes: Vec<Arc<dyn StorageNode>> = Vec::new();
    let mut id = 0u32;
    for &site in sites {
        for _ in 0..per_site {
            let inner = Arc::new(crate::node::MemoryNode::new(id, site));
            let node = Arc::new(FaultyNode::with_clock(
                inner,
                plan.for_node(NodeId(id)),
                clock.clone(),
                epochs,
            ));
            handles.push(node.clone());
            nodes.push(node);
            id += 1;
        }
    }
    (
        crate::cluster::Cluster::new(nodes).with_clock(clock),
        handles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::MemoryNode;

    fn wrapped(plan: FaultPlan) -> (Arc<MemoryNode>, FaultyNode) {
        let inner = Arc::new(MemoryNode::new(0, "site"));
        let node = FaultyNode::new(inner.clone(), plan);
        (inner, node)
    }

    #[test]
    fn benign_plan_is_transparent() {
        let (_, node) = wrapped(FaultPlan::new(1));
        let key = ShardKey::new("o", 0);
        node.put(&key, b"data").unwrap();
        assert_eq!(node.get(&key).unwrap(), b"data");
        node.delete(&key).unwrap();
        assert!(node.events().is_empty());
        assert_eq!(node.clock().now(), crate::clock::SimTime::ZERO);
    }

    #[test]
    fn same_seed_same_event_log() {
        let run = || {
            let (_, node) = wrapped(
                FaultPlan::new(77)
                    .with_transient_io_rate(0.5)
                    .with_bit_flip_rate(0.3)
                    .with_torn_write_rate(0.4)
                    .with_mean_latency_ms(5),
            );
            let mut outcomes = Vec::new();
            for i in 0..20u32 {
                let key = ShardKey::new("obj", i % 4);
                outcomes.push(node.put(&key, &[i as u8; 16]).is_ok());
                outcomes.push(node.get(&key).is_ok());
            }
            (outcomes, node.events())
        };
        let (out_a, ev_a) = run();
        let (out_b, ev_b) = run();
        assert_eq!(out_a, out_b);
        assert_eq!(ev_a, ev_b);
        assert!(!ev_a.is_empty(), "rates this high must fire");
    }

    #[test]
    fn decisions_are_per_key_not_global() {
        // Interleaving unrelated traffic must not change which faults a
        // key's own operation sequence sees.
        let plan = FaultPlan::new(123)
            .with_transient_io_rate(0.5)
            .with_bit_flip_rate(0.2);
        let probe = |with_noise: bool| {
            let (_, node) = wrapped(plan.clone());
            let key = ShardKey::new("probe", 0);
            let mut results = Vec::new();
            for i in 0..10u8 {
                if with_noise {
                    let noise_key = ShardKey::new("noise", i as u32);
                    let _ = node.put(&noise_key, &[i; 4]);
                    let _ = node.get(&noise_key);
                }
                results.push(node.put(&key, &[i; 8]).is_ok());
                results.push(node.get(&key).is_ok());
            }
            results
        };
        assert_eq!(probe(false), probe(true));
    }

    #[test]
    fn transient_faults_heal_on_retry() {
        // Rate 0.5: over 8 accesses of the same key some succeed.
        let (_, node) = wrapped(FaultPlan::new(9).with_transient_io_rate(0.5));
        let key = ShardKey::new("k", 0);
        let mut ok = 0;
        for i in 0..8 {
            if node.put(&key, &[i; 4]).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0 && ok < 8, "got {ok}/8 successes at rate 0.5");
    }

    #[test]
    fn bit_flips_are_persistent_and_logged() {
        let (inner, node) = wrapped(FaultPlan::new(31).with_bit_flip_rate(1.0));
        let key = ShardKey::new("rot", 0);
        node.put(&key, &[0u8; 32]).unwrap();
        let first = node.get(&key).unwrap();
        assert_ne!(first, vec![0u8; 32], "bit must have flipped");
        // The rot landed on the inner medium.
        assert_eq!(inner.get(&key).unwrap(), first);
        let events = node.events();
        assert!(matches!(
            events[0],
            FaultEvent {
                fault: FaultKind::BitFlip { .. },
                op: OpKind::Get,
                ..
            }
        ));
    }

    #[test]
    fn torn_writes_leave_prefix_and_error() {
        let (inner, node) = wrapped(FaultPlan::new(8).with_torn_write_rate(1.0));
        let key = ShardKey::new("torn", 0);
        let data = vec![0xAB; 64];
        assert!(matches!(node.put(&key, &data), Err(NodeError::Io(_))));
        let landed = inner.get(&key).unwrap_or_default();
        assert!(landed.len() < data.len());
        assert_eq!(&landed[..], &data[..landed.len()], "prefix of the data");
        assert!(matches!(
            node.events()[0].fault,
            FaultKind::TornWrite { .. }
        ));
    }

    #[test]
    fn offline_windows_follow_the_epoch_clock() {
        let (_, node) = wrapped(FaultPlan::new(2).with_offline_window(3, 6));
        let key = ShardKey::new("w", 0);
        node.put(&key, b"x").unwrap();
        node.set_epoch(3);
        assert!(node.is_offline_now());
        assert_eq!(node.get(&key).unwrap_err(), NodeError::Offline);
        assert_eq!(node.put(&key, b"y").unwrap_err(), NodeError::Offline);
        node.set_epoch(6);
        assert!(!node.is_offline_now());
        assert_eq!(node.get(&key).unwrap(), b"x", "window did not clobber");
    }

    #[test]
    fn latency_is_charged_to_the_clock_not_slept() {
        let (_, node) = wrapped(FaultPlan::new(4).with_mean_latency_ms(10));
        let key = ShardKey::new("slow", 0);
        let start = std::time::Instant::now();
        for i in 0..50u8 {
            node.put(&key, &[i]).unwrap();
        }
        let virtual_ms = node.clock().now().as_millis();
        assert!(virtual_ms > 0, "stalls advanced the virtual clock");
        assert!(
            start.elapsed().as_millis() < (virtual_ms as u128).max(100),
            "latency must be virtual, not slept"
        );
        // Every charged stall also shows up in the event log.
        let logged: u64 = node
            .events()
            .iter()
            .filter_map(|e| match e.fault {
                FaultKind::Latency { ms } => Some(ms),
                _ => None,
            })
            .sum();
        assert_eq!(logged, virtual_ms);
    }

    #[test]
    fn epoch_is_derived_from_the_clock() {
        let (_, node) = wrapped(FaultPlan::new(11));
        assert_eq!(node.epoch(), 0);
        node.set_epoch(5);
        assert_eq!(node.epoch(), 5);
        assert_eq!(
            node.clock().now(),
            node.epoch_schedule().start_of(5),
            "set_epoch jumps the clock to the epoch boundary"
        );
        node.advance_epoch();
        assert_eq!(node.epoch(), 6);
        node.set_epoch(2);
        assert_eq!(node.epoch(), 6, "the clock never rewinds");
    }

    #[test]
    fn per_node_plans_differ_but_derive_deterministically() {
        let base = FaultPlan::new(55).with_transient_io_rate(0.5);
        let a = base.for_node(NodeId(0));
        let b = base.for_node(NodeId(1));
        assert_ne!(a.seed, b.seed);
        assert_eq!(a, base.for_node(NodeId(0)));
        assert_eq!(a.transient_io_rate, base.transient_io_rate);
    }

    #[test]
    fn faulty_cluster_wires_epoch_handles() {
        let plan = FaultPlan::new(6).with_offline_window(1, 2);
        let (cluster, handles) = faulty_in_memory_cluster(&["us", "eu"], 2, &plan);
        assert_eq!(cluster.nodes().len(), 4);
        assert_eq!(handles.len(), 4);
        for h in &handles {
            h.set_epoch(1);
            assert!(h.is_offline_now());
        }
        let seeds: std::collections::HashSet<u64> = handles.iter().map(|h| h.plan().seed).collect();
        assert_eq!(seeds.len(), 4, "per-node seeds are distinct");
    }
}

//! Wire framing for coalesced shard-write batches and the matching
//! read-response frames.
//!
//! Batched plan execution groups per-object shard writes by target node
//! and ships each group as **one** framed transfer, so seek-dominated
//! media (tape, optical, spun-down disk) charge a single positioning
//! delay for the whole batch instead of one per shard. The frame format
//! here is the accounting unit for that transfer: media decorators
//! charge [`framed_len`] bytes for a batch, and the roundtrip encoders
//! exist so the frame is a real, testable wire artifact rather than a
//! number pulled from the air.
//!
//! Write-batch layout (all integers little-endian):
//!
//! ```text
//! "AEONBAT1"                                  8-byte magic
//! u32 entry count
//! per entry:
//!   u32 object-name length | object-name bytes (UTF-8)
//!   u32 shard index
//!   u32 data length        | data bytes
//! ```
//!
//! The read side mirrors this with a *response* frame: a batched get
//! ships one request per node and the node answers with one
//! `"AEONBAR1"` frame carrying every hit and miss. A miss still
//! occupies an entry (status byte 0, no payload) so the response stays
//! positionally aligned with the request and the per-key error
//! semantics of individual gets survive coalescing:
//!
//! ```text
//! "AEONBAR1"                                  8-byte magic
//! u32 entry count
//! per entry:
//!   u32 object-name length | object-name bytes (UTF-8)
//!   u32 shard index
//!   u8  status (1 = present, 0 = absent)
//!   if present: u32 data length | data bytes
//! ```
//!
//! Framing is *transport* accounting only — it never changes what each
//! node stores. A decoded frame applies entry by entry with exactly the
//! per-key semantics of individual puts, which is what makes batched
//! execution byte-identical to sequential execution.

use crate::node::ShardKey;

/// Magic prefix identifying a v1 batch frame.
pub const BATCH_MAGIC: &[u8; 8] = b"AEONBAT1";

/// Bytes of frame overhead per batch (magic + entry count).
const HEADER_LEN: usize = 8 + 4;

/// Bytes of frame overhead per entry (name length + shard + data length).
const ENTRY_OVERHEAD: usize = 4 + 4 + 4;

/// The exact encoded size of a batch frame for `entries`, computed
/// without materializing the frame. Media decorators use this as the
/// transfer size of a coalesced write.
///
/// # Examples
///
/// ```
/// use aeon_store::batch::{encode_batch_frame, framed_len};
/// use aeon_store::node::ShardKey;
///
/// let key = ShardKey::new("obj", 0);
/// let entries = vec![(key, &[1u8, 2, 3][..])];
/// assert_eq!(framed_len(&entries), encode_batch_frame(&entries).len());
/// ```
pub fn framed_len(entries: &[(ShardKey, &[u8])]) -> usize {
    HEADER_LEN
        + entries
            .iter()
            .map(|(key, data)| ENTRY_OVERHEAD + key.object.len() + data.len())
            .sum::<usize>()
}

/// Encodes `entries` into a v1 batch frame.
pub fn encode_batch_frame(entries: &[(ShardKey, &[u8])]) -> Vec<u8> {
    let mut out = Vec::with_capacity(framed_len(entries));
    out.extend_from_slice(BATCH_MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, data) in entries {
        out.extend_from_slice(&(key.object.len() as u32).to_le_bytes());
        out.extend_from_slice(key.object.as_bytes());
        out.extend_from_slice(&key.shard.to_le_bytes());
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Decodes a v1 batch frame back into owned `(key, data)` entries.
///
/// # Errors
///
/// Returns a description of the first structural violation: bad magic,
/// truncated field, non-UTF-8 object name, or trailing garbage.
pub fn decode_batch_frame(frame: &[u8]) -> Result<Vec<(ShardKey, Vec<u8>)>, String> {
    let mut rest = frame;
    let magic = take(&mut rest, 8).ok_or("frame shorter than magic")?;
    if magic != BATCH_MAGIC {
        return Err("bad batch magic".into());
    }
    let count = take_u32(&mut rest).ok_or("truncated entry count")? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let name_len = take_u32(&mut rest)
            .ok_or_else(|| format!("entry {i}: truncated name length"))?
            as usize;
        let name = take(&mut rest, name_len).ok_or_else(|| format!("entry {i}: truncated name"))?;
        let object = core::str::from_utf8(name)
            .map_err(|_| format!("entry {i}: object name is not UTF-8"))?
            .to_string();
        let shard =
            take_u32(&mut rest).ok_or_else(|| format!("entry {i}: truncated shard index"))?;
        let data_len = take_u32(&mut rest)
            .ok_or_else(|| format!("entry {i}: truncated data length"))?
            as usize;
        let data = take(&mut rest, data_len)
            .ok_or_else(|| format!("entry {i}: truncated data"))?
            .to_vec();
        entries.push((ShardKey { object, shard }, data));
    }
    if !rest.is_empty() {
        return Err(format!("{} trailing bytes after last entry", rest.len()));
    }
    Ok(entries)
}

/// Magic prefix identifying a v1 batched-read response frame.
pub const READ_MAGIC: &[u8; 8] = b"AEONBAR1";

/// Bytes of read-frame overhead per entry that is always present
/// (name length + shard + status byte).
const READ_ENTRY_OVERHEAD: usize = 4 + 4 + 1;

/// The exact encoded size of a read-response frame for `entries`
/// (`None` marks a key the node could not serve), computed without
/// materializing the frame. Media decorators use this as the transfer
/// size of a coalesced read.
///
/// # Examples
///
/// ```
/// use aeon_store::batch::{encode_read_frame, read_framed_len};
/// use aeon_store::node::ShardKey;
///
/// let key = ShardKey::new("obj", 0);
/// let entries = vec![(key, Some(&[1u8, 2, 3][..]))];
/// assert_eq!(read_framed_len(&entries), encode_read_frame(&entries).len());
/// ```
pub fn read_framed_len(entries: &[(ShardKey, Option<&[u8]>)]) -> usize {
    HEADER_LEN
        + entries
            .iter()
            .map(|(key, data)| {
                READ_ENTRY_OVERHEAD + key.object.len() + data.map_or(0, |d| 4 + d.len())
            })
            .sum::<usize>()
}

/// Encodes `entries` into a v1 read-response frame.
pub fn encode_read_frame(entries: &[(ShardKey, Option<&[u8]>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(read_framed_len(entries));
    out.extend_from_slice(READ_MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, data) in entries {
        out.extend_from_slice(&(key.object.len() as u32).to_le_bytes());
        out.extend_from_slice(key.object.as_bytes());
        out.extend_from_slice(&key.shard.to_le_bytes());
        match data {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&(d.len() as u32).to_le_bytes());
                out.extend_from_slice(d);
            }
            None => out.push(0),
        }
    }
    out
}

/// Decodes a v1 read-response frame back into owned `(key, payload)`
/// entries, `None` marking keys the node could not serve.
///
/// # Errors
///
/// Returns a description of the first structural violation: bad magic,
/// truncated field, non-UTF-8 object name, invalid status byte, or
/// trailing garbage.
#[allow(clippy::type_complexity)]
pub fn decode_read_frame(frame: &[u8]) -> Result<Vec<(ShardKey, Option<Vec<u8>>)>, String> {
    let mut rest = frame;
    let magic = take(&mut rest, 8).ok_or("frame shorter than magic")?;
    if magic != READ_MAGIC {
        return Err("bad read-frame magic".into());
    }
    let count = take_u32(&mut rest).ok_or("truncated entry count")? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let name_len = take_u32(&mut rest)
            .ok_or_else(|| format!("entry {i}: truncated name length"))?
            as usize;
        let name = take(&mut rest, name_len).ok_or_else(|| format!("entry {i}: truncated name"))?;
        let object = core::str::from_utf8(name)
            .map_err(|_| format!("entry {i}: object name is not UTF-8"))?
            .to_string();
        let shard =
            take_u32(&mut rest).ok_or_else(|| format!("entry {i}: truncated shard index"))?;
        let status = take(&mut rest, 1).ok_or_else(|| format!("entry {i}: truncated status"))?[0];
        let data = match status {
            0 => None,
            1 => {
                let data_len = take_u32(&mut rest)
                    .ok_or_else(|| format!("entry {i}: truncated data length"))?
                    as usize;
                Some(
                    take(&mut rest, data_len)
                        .ok_or_else(|| format!("entry {i}: truncated data"))?
                        .to_vec(),
                )
            }
            other => return Err(format!("entry {i}: invalid status byte {other}")),
        };
        entries.push((ShardKey { object, shard }, data));
    }
    if !rest.is_empty() {
        return Err(format!("{} trailing bytes after last entry", rest.len()));
    }
    Ok(entries)
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if rest.len() < n {
        return None;
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Some(head)
}

fn take_u32(rest: &mut &[u8]) -> Option<u32> {
    take(rest, 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(ShardKey, Vec<u8>)> {
        vec![
            (ShardKey::new("obj-000001", 0), vec![1, 2, 3, 4]),
            (ShardKey::new("obj-000001", 3), vec![]),
            (ShardKey::new("blk-deadbeef", 7), vec![0xff; 257]),
        ]
    }

    fn borrow(entries: &[(ShardKey, Vec<u8>)]) -> Vec<(ShardKey, &[u8])> {
        entries
            .iter()
            .map(|(k, d)| (k.clone(), d.as_slice()))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_entries_and_order() {
        let entries = sample_entries();
        let frame = encode_batch_frame(&borrow(&entries));
        let decoded = decode_batch_frame(&frame).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn framed_len_matches_encoded_length() {
        let entries = sample_entries();
        let borrowed = borrow(&entries);
        assert_eq!(framed_len(&borrowed), encode_batch_frame(&borrowed).len());
        assert_eq!(framed_len(&[]), encode_batch_frame(&[]).len());
    }

    #[test]
    fn empty_frame_roundtrips() {
        let frame = encode_batch_frame(&[]);
        assert_eq!(decode_batch_frame(&frame).unwrap(), vec![]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = encode_batch_frame(&[]);
        frame[0] ^= 0xff;
        assert!(decode_batch_frame(&frame).unwrap_err().contains("magic"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let entries = sample_entries();
        let frame = encode_batch_frame(&borrow(&entries));
        for cut in 0..frame.len() {
            assert!(
                decode_batch_frame(&frame[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let entries = sample_entries();
        let mut frame = encode_batch_frame(&borrow(&entries));
        frame.push(0);
        assert!(decode_batch_frame(&frame).unwrap_err().contains("trailing"));
    }

    fn sample_read_entries() -> Vec<(ShardKey, Option<Vec<u8>>)> {
        vec![
            (ShardKey::new("obj-000001", 0), Some(vec![1, 2, 3, 4])),
            (ShardKey::new("obj-000001", 3), None),
            (ShardKey::new("blk-deadbeef", 7), Some(vec![])),
            (ShardKey::new("blk-deadbeef", 8), Some(vec![0xff; 257])),
        ]
    }

    fn borrow_read(entries: &[(ShardKey, Option<Vec<u8>>)]) -> Vec<(ShardKey, Option<&[u8]>)> {
        entries
            .iter()
            .map(|(k, d)| (k.clone(), d.as_deref()))
            .collect()
    }

    #[test]
    fn read_frame_roundtrip_preserves_hits_and_misses() {
        let entries = sample_read_entries();
        let frame = encode_read_frame(&borrow_read(&entries));
        let decoded = decode_read_frame(&frame).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn read_framed_len_matches_encoded_length() {
        let entries = sample_read_entries();
        let borrowed = borrow_read(&entries);
        assert_eq!(
            read_framed_len(&borrowed),
            encode_read_frame(&borrowed).len()
        );
        assert_eq!(read_framed_len(&[]), encode_read_frame(&[]).len());
    }

    #[test]
    fn read_frame_rejects_bad_magic_and_status() {
        let mut frame = encode_read_frame(&[]);
        frame[0] ^= 0xff;
        assert!(decode_read_frame(&frame).unwrap_err().contains("magic"));
        // A write frame is not a read frame.
        let write = encode_batch_frame(&[]);
        assert!(decode_read_frame(&write).unwrap_err().contains("magic"));
        // Corrupt the status byte of a single-entry frame.
        let key = ShardKey::new("o", 0);
        let mut frame = encode_read_frame(&[(key.clone(), None)]);
        let status_at = frame.len() - 1;
        frame[status_at] = 2;
        assert!(decode_read_frame(&frame).unwrap_err().contains("status"));
    }

    #[test]
    fn read_frame_rejects_truncation_at_every_length() {
        let entries = sample_read_entries();
        let frame = encode_read_frame(&borrow_read(&entries));
        for cut in 0..frame.len() {
            assert!(
                decode_read_frame(&frame[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut frame = frame;
        frame.push(0);
        assert!(decode_read_frame(&frame).unwrap_err().contains("trailing"));
    }

    mod read_frame_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_entry() -> impl Strategy<Value = (ShardKey, Option<Vec<u8>>)> {
            (
                "[a-z0-9-]{0,24}",
                any::<u32>(),
                any::<bool>(),
                proptest::collection::vec(any::<u8>(), 0..300),
            )
                .prop_map(|(object, shard, present, data)| {
                    (ShardKey { object, shard }, present.then_some(data))
                })
        }

        proptest! {
            /// Any mix of hits and misses survives the frame roundtrip
            /// with order, keys, and payloads intact, and the computed
            /// frame length always matches the encoded frame.
            #[test]
            fn roundtrip_and_length(entries in proptest::collection::vec(arb_entry(), 0..12)) {
                let borrowed = borrow_read(&entries);
                let frame = encode_read_frame(&borrowed);
                prop_assert_eq!(frame.len(), read_framed_len(&borrowed));
                let decoded = decode_read_frame(&frame).unwrap();
                prop_assert_eq!(decoded, entries);
            }
        }
    }
}

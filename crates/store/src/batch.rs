//! Wire framing for coalesced shard-write batches.
//!
//! Batched plan execution groups per-object shard writes by target node
//! and ships each group as **one** framed transfer, so seek-dominated
//! media (tape, optical, spun-down disk) charge a single positioning
//! delay for the whole batch instead of one per shard. The frame format
//! here is the accounting unit for that transfer: media decorators
//! charge [`framed_len`] bytes for a batch, and the roundtrip encoders
//! exist so the frame is a real, testable wire artifact rather than a
//! number pulled from the air.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "AEONBAT1"                                  8-byte magic
//! u32 entry count
//! per entry:
//!   u32 object-name length | object-name bytes (UTF-8)
//!   u32 shard index
//!   u32 data length        | data bytes
//! ```
//!
//! Framing is *transport* accounting only — it never changes what each
//! node stores. A decoded frame applies entry by entry with exactly the
//! per-key semantics of individual puts, which is what makes batched
//! execution byte-identical to sequential execution.

use crate::node::ShardKey;

/// Magic prefix identifying a v1 batch frame.
pub const BATCH_MAGIC: &[u8; 8] = b"AEONBAT1";

/// Bytes of frame overhead per batch (magic + entry count).
const HEADER_LEN: usize = 8 + 4;

/// Bytes of frame overhead per entry (name length + shard + data length).
const ENTRY_OVERHEAD: usize = 4 + 4 + 4;

/// The exact encoded size of a batch frame for `entries`, computed
/// without materializing the frame. Media decorators use this as the
/// transfer size of a coalesced write.
///
/// # Examples
///
/// ```
/// use aeon_store::batch::{encode_batch_frame, framed_len};
/// use aeon_store::node::ShardKey;
///
/// let key = ShardKey::new("obj", 0);
/// let entries = vec![(key, &[1u8, 2, 3][..])];
/// assert_eq!(framed_len(&entries), encode_batch_frame(&entries).len());
/// ```
pub fn framed_len(entries: &[(ShardKey, &[u8])]) -> usize {
    HEADER_LEN
        + entries
            .iter()
            .map(|(key, data)| ENTRY_OVERHEAD + key.object.len() + data.len())
            .sum::<usize>()
}

/// Encodes `entries` into a v1 batch frame.
pub fn encode_batch_frame(entries: &[(ShardKey, &[u8])]) -> Vec<u8> {
    let mut out = Vec::with_capacity(framed_len(entries));
    out.extend_from_slice(BATCH_MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, data) in entries {
        out.extend_from_slice(&(key.object.len() as u32).to_le_bytes());
        out.extend_from_slice(key.object.as_bytes());
        out.extend_from_slice(&key.shard.to_le_bytes());
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Decodes a v1 batch frame back into owned `(key, data)` entries.
///
/// # Errors
///
/// Returns a description of the first structural violation: bad magic,
/// truncated field, non-UTF-8 object name, or trailing garbage.
pub fn decode_batch_frame(frame: &[u8]) -> Result<Vec<(ShardKey, Vec<u8>)>, String> {
    let mut rest = frame;
    let magic = take(&mut rest, 8).ok_or("frame shorter than magic")?;
    if magic != BATCH_MAGIC {
        return Err("bad batch magic".into());
    }
    let count = take_u32(&mut rest).ok_or("truncated entry count")? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let name_len = take_u32(&mut rest)
            .ok_or_else(|| format!("entry {i}: truncated name length"))?
            as usize;
        let name = take(&mut rest, name_len).ok_or_else(|| format!("entry {i}: truncated name"))?;
        let object = core::str::from_utf8(name)
            .map_err(|_| format!("entry {i}: object name is not UTF-8"))?
            .to_string();
        let shard =
            take_u32(&mut rest).ok_or_else(|| format!("entry {i}: truncated shard index"))?;
        let data_len = take_u32(&mut rest)
            .ok_or_else(|| format!("entry {i}: truncated data length"))?
            as usize;
        let data = take(&mut rest, data_len)
            .ok_or_else(|| format!("entry {i}: truncated data"))?
            .to_vec();
        entries.push((ShardKey { object, shard }, data));
    }
    if !rest.is_empty() {
        return Err(format!("{} trailing bytes after last entry", rest.len()));
    }
    Ok(entries)
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if rest.len() < n {
        return None;
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Some(head)
}

fn take_u32(rest: &mut &[u8]) -> Option<u32> {
    take(rest, 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<(ShardKey, Vec<u8>)> {
        vec![
            (ShardKey::new("obj-000001", 0), vec![1, 2, 3, 4]),
            (ShardKey::new("obj-000001", 3), vec![]),
            (ShardKey::new("blk-deadbeef", 7), vec![0xff; 257]),
        ]
    }

    fn borrow(entries: &[(ShardKey, Vec<u8>)]) -> Vec<(ShardKey, &[u8])> {
        entries
            .iter()
            .map(|(k, d)| (k.clone(), d.as_slice()))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_entries_and_order() {
        let entries = sample_entries();
        let frame = encode_batch_frame(&borrow(&entries));
        let decoded = decode_batch_frame(&frame).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn framed_len_matches_encoded_length() {
        let entries = sample_entries();
        let borrowed = borrow(&entries);
        assert_eq!(framed_len(&borrowed), encode_batch_frame(&borrowed).len());
        assert_eq!(framed_len(&[]), encode_batch_frame(&[]).len());
    }

    #[test]
    fn empty_frame_roundtrips() {
        let frame = encode_batch_frame(&[]);
        assert_eq!(decode_batch_frame(&frame).unwrap(), vec![]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = encode_batch_frame(&[]);
        frame[0] ^= 0xff;
        assert!(decode_batch_frame(&frame).unwrap_err().contains("magic"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let entries = sample_entries();
        let frame = encode_batch_frame(&borrow(&entries));
        for cut in 0..frame.len() {
            assert!(
                decode_batch_frame(&frame[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let entries = sample_entries();
        let mut frame = encode_batch_frame(&borrow(&entries));
        frame.push(0);
        assert!(decode_batch_frame(&frame).unwrap_err().contains("trailing"));
    }
}

//! The virtual-time engine: one clock for the whole workspace.
//!
//! Everything in `aeon` that used to keep its own notion of time —
//! epoch counters on fault windows, per-op latency accounting in
//! [`crate::faults::FaultyNode`], millisecond backoff tallies in retry
//! reports — now reads and charges a single [`SimClock`]. The clock is
//! **virtual**: it holds monotonic virtual nanoseconds that advance
//! only when a charged operation happens (a throughput-priced transfer,
//! a fault-injected stall, a retry backoff). Wall time never moves it,
//! so a century-scale maintenance campaign simulates in milliseconds
//! and a given seed always reproduces the same timeline.
//!
//! The contract has three roles:
//!
//! * **Chargers** — node decorators ([`crate::throughput::ThroughputNode`],
//!   [`crate::faults::FaultyNode`]) and [`crate::retry::run_with_retry`]
//!   call [`SimClock::charge`] with the virtual cost of each operation.
//! * **Readers** — campaigns and tests snapshot [`SimClock::now`] around
//!   phases; elapsed virtual time is the difference of two readings.
//! * **Epoch mapping** — anything epoch-driven (fault offline windows,
//!   proactive-refresh cadence, adversary rounds) converts through one
//!   [`EpochSchedule`]; no other epoch arithmetic exists.
//!
//! Charges are commutative additions on an atomic counter, so the total
//! elapsed time of a fixed operation multiset is independent of worker
//! count and thread interleaving — a property the clock tests pin.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

/// Virtual nanoseconds in one simulated day (24 h).
pub const NANOS_PER_DAY: u64 = 86_400 * NANOS_PER_SEC;
/// Virtual nanoseconds in one simulated second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Mean days per month used throughout §3.2 (365.25 / 12).
pub const DAYS_PER_MONTH: f64 = 30.44;

/// An instant on the virtual timeline, as nanoseconds since the
/// simulation origin. Obtained from [`SimClock::now`] or
/// [`EpochSchedule::start_of`]; never from wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw virtual nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw virtual nanoseconds since the origin.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole virtual milliseconds since the origin (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Virtual seconds since the origin.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Virtual days since the origin.
    #[must_use]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_DAY as f64
    }

    /// Virtual months since the origin (30.44-day months, as in §3.2).
    #[must_use]
    pub fn as_months_f64(self) -> f64 {
        self.as_days_f64() / DAYS_PER_MONTH
    }

    /// Elapsed duration since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// A span of virtual time. The unit every charge is denominated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-cost duration (metadata operations charge this).
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of raw virtual nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A duration of virtual milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// A duration of virtual seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(NANOS_PER_SEC))
    }

    /// A duration of virtual days.
    #[must_use]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d.saturating_mul(NANOS_PER_DAY))
    }

    /// A duration of fractional virtual seconds, rounded to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw virtual nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole virtual milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional virtual seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional virtual days.
    #[must_use]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_DAY as f64
    }

    /// Fractional virtual months (30.44-day months, as in §3.2).
    #[must_use]
    pub fn as_months_f64(self) -> f64 {
        self.as_days_f64() / DAYS_PER_MONTH
    }

    /// Scales the duration by `factor`, rounding to the nearest
    /// nanosecond. Negative or non-finite factors clamp to zero.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Shared state behind every handle onto one timeline.
///
/// `ns` is the global frontier. `diversions`/`lanes` implement
/// [`SimClock::divert`]: threads listed in `lanes` have their charges
/// captured into a per-thread accumulator instead of the global
/// counter, so a parallel lane dispatcher can replay them onto
/// per-node lanes and advance the frontier by the critical path rather
/// than the sum. `diversions` is a fast-path gate — when zero (the
/// overwhelmingly common case) `charge`/`now`/`advance_to` never touch
/// the mutex.
#[derive(Debug, Default)]
struct ClockInner {
    ns: AtomicU64,
    diversions: AtomicU64,
    lanes: Mutex<HashMap<ThreadId, DivertFrame>>,
}

/// One thread's active charge diversion. `base` is the global reading
/// when the diversion began; `accum` the virtual cost captured since.
/// `outer` stacks nested diversions (inner captures win; the outer
/// frame resumes untouched when the inner one ends).
#[derive(Debug)]
struct DivertFrame {
    base: u64,
    accum: u64,
    outer: Option<Box<DivertFrame>>,
}

/// The shared virtual clock.
///
/// A `SimClock` is a cheap-to-clone handle onto one atomic counter of
/// virtual nanoseconds: cloning shares the timeline, so a cluster, its
/// node decorators, and the retry layer all observe the same `now()`.
/// The counter is **monotone by construction** — [`charge`](Self::charge)
/// adds, [`advance_to`](Self::advance_to) takes a max — and is advanced
/// only by simulated work, never by wall time.
///
/// [`divert`](Self::divert) layers a per-thread capture mode on top:
/// inside a diversion, charges accumulate locally (the thread sees its
/// own lane-local `now()`) and the global frontier is untouched until
/// the dispatcher decides how to merge the captured costs. This is the
/// primitive the parallel lane model is built on.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<ClockInner>,
}

impl SimClock {
    /// A fresh clock at the simulation origin.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Runs `f` on the current thread's diversion frame, if one is
    /// active. The atomic gate keeps the non-diverted path lock-free.
    fn with_frame<R>(&self, f: impl FnOnce(&mut DivertFrame) -> R) -> Option<R> {
        if self.inner.diversions.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let tid = std::thread::current().id();
        let mut lanes = self.inner.lanes.lock();
        lanes.get_mut(&tid).map(f)
    }

    /// The current virtual instant. Inside a [`divert`](Self::divert)
    /// this is lane-local: the instant the diversion began plus the
    /// cost captured so far on this thread.
    #[must_use]
    pub fn now(&self) -> SimTime {
        if let Some(local) = self.with_frame(|fr| fr.base.saturating_add(fr.accum)) {
            return SimTime(local);
        }
        SimTime(self.inner.ns.load(Ordering::SeqCst))
    }

    /// Charges `cost` of virtual time to the clock and returns the new
    /// reading. Charges are commutative additions, so the final reading
    /// of a fixed set of charges is independent of the order (and the
    /// thread) they arrive in. The addition saturates at the top of the
    /// range: a plain `fetch_add` would wrap the counter and let the
    /// timeline run backwards when a saturated duration (an offline
    /// device, a pathological backoff) is charged near `u64::MAX`.
    ///
    /// Inside a [`divert`](Self::divert), the cost is captured into the
    /// thread's accumulator instead and the reading returned is
    /// lane-local.
    pub fn charge(&self, cost: SimDuration) -> SimTime {
        if let Some(local) = self.with_frame(|fr| {
            fr.accum = fr.accum.saturating_add(cost.0);
            fr.base.saturating_add(fr.accum)
        }) {
            return SimTime(local);
        }
        let mut cur = self.inner.ns.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(cost.0);
            match self
                .inner
                .ns
                .compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return SimTime(next),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Advances the clock to `instant` if it is ahead of the current
    /// reading; otherwise does nothing (the clock never moves
    /// backwards). Used by epoch-driven schedules to jump to the start
    /// of a later epoch.
    ///
    /// Inside a [`divert`](Self::divert) the jump is captured into the
    /// thread's accumulator (as a charge up to `instant`), never
    /// written to the global frontier — a diverted worker cannot leak
    /// time onto other lanes. That confinement is what makes a fixed
    /// set of lane completions merge to one frontier regardless of
    /// thread interleaving; `fetch_max` and `charge`'s add do not
    /// commute with each other, so letting workers mix them on the
    /// global counter would make elapsed time schedule-dependent.
    pub fn advance_to(&self, instant: SimTime) {
        if self
            .with_frame(|fr| {
                let target = instant.0.saturating_sub(fr.base);
                fr.accum = fr.accum.max(target);
            })
            .is_some()
        {
            return;
        }
        self.inner.ns.fetch_max(instant.0, Ordering::SeqCst);
    }

    /// Runs `f` with this thread's charges diverted into a local
    /// accumulator, returning `f`'s result and the total virtual cost
    /// it charged. The global frontier does not move; the caller
    /// decides how the captured cost lands (e.g. on a per-node lane,
    /// with the frontier advanced once to the critical path).
    ///
    /// Diversion is keyed by thread: other threads charging the same
    /// clock are unaffected. Nested diversions stack — the inner frame
    /// captures, the outer resumes unchanged when it ends. If `f`
    /// panics, the frame is unwound (the captured cost is dropped with
    /// the panic).
    pub fn divert<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let tid = std::thread::current().id();
        let base = self.inner.ns.load(Ordering::SeqCst);
        {
            let mut lanes = self.inner.lanes.lock();
            let outer = lanes.remove(&tid).map(Box::new);
            lanes.insert(
                tid,
                DivertFrame {
                    base,
                    accum: 0,
                    outer,
                },
            );
        }
        self.inner.diversions.fetch_add(1, Ordering::SeqCst);
        let guard = DivertGuard {
            inner: &self.inner,
            tid,
            armed: true,
        };
        let out = f();
        let captured = guard.finish();
        (out, SimDuration(captured))
    }

    /// Whether two handles share one timeline.
    #[must_use]
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Unwinds a diversion frame even if the diverted closure panics, so a
/// panicking worker cannot leave its thread permanently diverted (the
/// OS may reuse thread ids).
struct DivertGuard<'a> {
    inner: &'a ClockInner,
    tid: ThreadId,
    armed: bool,
}

impl DivertGuard<'_> {
    fn pop(&self) -> u64 {
        let mut lanes = self.inner.lanes.lock();
        let frame = lanes.remove(&self.tid).expect("diversion frame present");
        if let Some(outer) = frame.outer {
            lanes.insert(self.tid, *outer);
        }
        drop(lanes);
        self.inner.diversions.fetch_sub(1, Ordering::SeqCst);
        frame.accum
    }

    fn finish(mut self) -> u64 {
        self.armed = false;
        self.pop()
    }
}

impl Drop for DivertGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.pop();
        }
    }
}

/// The single `Epoch ↔ SimTime` conversion.
///
/// Every epoch-driven mechanism — fault offline windows, proactive
/// refresh cadence, mobile-adversary rounds — maps its epoch numbers
/// onto the virtual timeline through one of these. An epoch `e` covers
/// the half-open interval `[start_of(e), start_of(e + 1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSchedule {
    epoch: SimDuration,
}

impl EpochSchedule {
    /// A schedule with the given epoch length (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero — a zero-length epoch cannot partition
    /// the timeline.
    #[must_use]
    pub fn new(epoch: SimDuration) -> Self {
        assert!(epoch.0 > 0, "epoch length must be non-zero");
        EpochSchedule { epoch }
    }

    /// The epoch length.
    #[must_use]
    pub fn epoch_len(&self) -> SimDuration {
        self.epoch
    }

    /// The instant epoch `e` begins.
    #[must_use]
    pub fn start_of(&self, epoch: u64) -> SimTime {
        SimTime(epoch.saturating_mul(self.epoch.0))
    }

    /// The epoch containing `instant`.
    #[must_use]
    pub fn epoch_of(&self, instant: SimTime) -> u64 {
        instant.0 / self.epoch.0
    }
}

impl Default for EpochSchedule {
    /// One virtual day per epoch — long enough that the ms-scale
    /// latency and backoff charges of a campaign never push an
    /// operation across an epoch boundary on their own, so epoch-keyed
    /// fault logs are stable under the clock refactor.
    fn default() -> Self {
        EpochSchedule::new(SimDuration::from_days(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_is_monotone() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        let t1 = clock.charge(SimDuration::from_millis(5));
        let t2 = clock.charge(SimDuration::from_nanos(1));
        assert_eq!(t1.as_nanos(), 5_000_000);
        assert_eq!(t2.as_nanos(), 5_000_001);
        assert_eq!(clock.now(), t2);
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = SimClock::new();
        let handle = clock.clone();
        handle.charge(SimDuration::from_secs(3));
        assert_eq!(clock.now().as_secs_f64(), 3.0);
        assert!(clock.same_clock(&handle));
        assert!(!clock.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::new();
        clock.advance_to(SimTime::from_nanos(100));
        assert_eq!(clock.now().as_nanos(), 100);
        clock.advance_to(SimTime::from_nanos(40));
        assert_eq!(clock.now().as_nanos(), 100, "rewind must be a no-op");
        clock.advance_to(SimTime::from_nanos(100));
        assert_eq!(clock.now().as_nanos(), 100, "advance is idempotent");
    }

    #[test]
    fn charge_saturates_at_the_top_of_the_timeline() {
        let clock = SimClock::new();
        clock.charge(SimDuration::from_nanos(u64::MAX));
        let t = clock.charge(SimDuration::from_nanos(u64::MAX));
        assert_eq!(t.as_nanos(), u64::MAX, "no wrap-around");
        assert_eq!(
            clock.now().as_nanos(),
            u64::MAX,
            "monotone under saturation"
        );
    }

    #[test]
    fn epoch_schedule_roundtrips() {
        let sched = EpochSchedule::default();
        for e in [0u64, 1, 7, 99, 100_000] {
            assert_eq!(sched.epoch_of(sched.start_of(e)), e);
            // Any instant strictly inside the epoch maps back to it.
            let inside = sched.start_of(e) + SimDuration::from_millis(250);
            assert_eq!(sched.epoch_of(inside), e);
        }
    }

    #[test]
    fn charges_commute() {
        // The same multiset of charges in two different orders lands on
        // the same reading — the property that makes elapsed virtual
        // time independent of worker scheduling.
        let a = SimClock::new();
        let b = SimClock::new();
        let costs = [3u64, 141, 59, 26, 5, 897, 9, 32];
        for c in costs {
            a.charge(SimDuration::from_nanos(c));
        }
        for c in costs.iter().rev() {
            b.charge(SimDuration::from_nanos(*c));
        }
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn divert_captures_charges_without_moving_the_frontier() {
        let clock = SimClock::new();
        clock.charge(SimDuration::from_millis(10));
        let ((), cost) = clock.divert(|| {
            clock.charge(SimDuration::from_millis(3));
            clock.charge(SimDuration::from_millis(4));
            // Lane-local reading: diversion base plus captured cost.
            assert_eq!(clock.now().as_millis(), 17);
        });
        assert_eq!(cost.as_millis(), 7);
        assert_eq!(clock.now().as_millis(), 10, "frontier untouched");
    }

    #[test]
    fn divert_is_keyed_by_thread() {
        let clock = SimClock::new();
        let ((), cost) = clock.divert(|| {
            // A charge from another thread goes to the global counter,
            // not this thread's accumulator.
            let other = clock.clone();
            std::thread::spawn(move || {
                other.charge(SimDuration::from_millis(100));
            })
            .join()
            .unwrap();
            clock.charge(SimDuration::from_millis(1));
        });
        assert_eq!(cost.as_millis(), 1);
        assert_eq!(clock.now().as_millis(), 100);
    }

    #[test]
    fn diverted_advance_to_stays_on_the_lane() {
        let clock = SimClock::new();
        clock.charge(SimDuration::from_millis(5));
        let ((), cost) = clock.divert(|| {
            // An epoch jump inside a diversion (e.g. a FaultyNode
            // moving to an offline window's end) is captured as lane
            // cost, never written through to the global frontier.
            clock.advance_to(SimTime::from_nanos(9_000_000));
            assert_eq!(clock.now().as_millis(), 9);
            // Jumping backwards is still a no-op.
            clock.advance_to(SimTime::from_nanos(1));
            assert_eq!(clock.now().as_millis(), 9);
        });
        assert_eq!(cost.as_millis(), 4, "cost is the jump past base");
        assert_eq!(clock.now().as_millis(), 5, "frontier untouched");
    }

    #[test]
    fn nested_diversions_stack() {
        let clock = SimClock::new();
        let ((), outer) = clock.divert(|| {
            clock.charge(SimDuration::from_millis(2));
            let ((), inner) = clock.divert(|| {
                clock.charge(SimDuration::from_millis(50));
            });
            assert_eq!(inner.as_millis(), 50);
            clock.charge(SimDuration::from_millis(3));
        });
        assert_eq!(outer.as_millis(), 5, "inner capture not double-counted");
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn divert_unwinds_on_panic() {
        let clock = SimClock::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clock.divert(|| {
                clock.charge(SimDuration::from_millis(9));
                panic!("boom");
            })
        }));
        assert!(caught.is_err());
        // The frame was popped: charges land globally again.
        clock.charge(SimDuration::from_millis(1));
        assert_eq!(clock.now().as_millis(), 1);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_days(1).as_nanos(), NANOS_PER_DAY);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d.as_secs_f64(), 5.0);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        let month = SimDuration::from_days(3044).mul_f64(0.01);
        assert!((month.as_months_f64() - 1.0).abs() < 1e-9);
    }
}

//! The virtual-time engine: one clock for the whole workspace.
//!
//! Everything in `aeon` that used to keep its own notion of time —
//! epoch counters on fault windows, per-op latency accounting in
//! [`crate::faults::FaultyNode`], millisecond backoff tallies in retry
//! reports — now reads and charges a single [`SimClock`]. The clock is
//! **virtual**: it holds monotonic virtual nanoseconds that advance
//! only when a charged operation happens (a throughput-priced transfer,
//! a fault-injected stall, a retry backoff). Wall time never moves it,
//! so a century-scale maintenance campaign simulates in milliseconds
//! and a given seed always reproduces the same timeline.
//!
//! The contract has three roles:
//!
//! * **Chargers** — node decorators ([`crate::throughput::ThroughputNode`],
//!   [`crate::faults::FaultyNode`]) and [`crate::retry::run_with_retry`]
//!   call [`SimClock::charge`] with the virtual cost of each operation.
//! * **Readers** — campaigns and tests snapshot [`SimClock::now`] around
//!   phases; elapsed virtual time is the difference of two readings.
//! * **Epoch mapping** — anything epoch-driven (fault offline windows,
//!   proactive-refresh cadence, adversary rounds) converts through one
//!   [`EpochSchedule`]; no other epoch arithmetic exists.
//!
//! Charges are commutative additions on an atomic counter, so the total
//! elapsed time of a fixed operation multiset is independent of worker
//! count and thread interleaving — a property the clock tests pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual nanoseconds in one simulated day (24 h).
pub const NANOS_PER_DAY: u64 = 86_400 * NANOS_PER_SEC;
/// Virtual nanoseconds in one simulated second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Mean days per month used throughout §3.2 (365.25 / 12).
pub const DAYS_PER_MONTH: f64 = 30.44;

/// An instant on the virtual timeline, as nanoseconds since the
/// simulation origin. Obtained from [`SimClock::now`] or
/// [`EpochSchedule::start_of`]; never from wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw virtual nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw virtual nanoseconds since the origin.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole virtual milliseconds since the origin (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Virtual seconds since the origin.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Virtual days since the origin.
    #[must_use]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_DAY as f64
    }

    /// Virtual months since the origin (30.44-day months, as in §3.2).
    #[must_use]
    pub fn as_months_f64(self) -> f64 {
        self.as_days_f64() / DAYS_PER_MONTH
    }

    /// Elapsed duration since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// A span of virtual time. The unit every charge is denominated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-cost duration (metadata operations charge this).
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of raw virtual nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A duration of virtual milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// A duration of virtual seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(NANOS_PER_SEC))
    }

    /// A duration of virtual days.
    #[must_use]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d.saturating_mul(NANOS_PER_DAY))
    }

    /// A duration of fractional virtual seconds, rounded to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw virtual nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole virtual milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional virtual seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional virtual days.
    #[must_use]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_DAY as f64
    }

    /// Fractional virtual months (30.44-day months, as in §3.2).
    #[must_use]
    pub fn as_months_f64(self) -> f64 {
        self.as_days_f64() / DAYS_PER_MONTH
    }

    /// Scales the duration by `factor`, rounding to the nearest
    /// nanosecond. Negative or non-finite factors clamp to zero.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// The shared virtual clock.
///
/// A `SimClock` is a cheap-to-clone handle onto one atomic counter of
/// virtual nanoseconds: cloning shares the timeline, so a cluster, its
/// node decorators, and the retry layer all observe the same `now()`.
/// The counter is **monotone by construction** — [`charge`](Self::charge)
/// adds, [`advance_to`](Self::advance_to) takes a max — and is advanced
/// only by simulated work, never by wall time.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// A fresh clock at the simulation origin.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current virtual instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime(self.ns.load(Ordering::SeqCst))
    }

    /// Charges `cost` of virtual time to the clock and returns the new
    /// reading. Charges are commutative additions, so the final reading
    /// of a fixed set of charges is independent of the order (and the
    /// thread) they arrive in. The addition saturates at the top of the
    /// range: a plain `fetch_add` would wrap the counter and let the
    /// timeline run backwards when a saturated duration (an offline
    /// device, a pathological backoff) is charged near `u64::MAX`.
    pub fn charge(&self, cost: SimDuration) -> SimTime {
        let mut cur = self.ns.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(cost.0);
            match self
                .ns
                .compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return SimTime(next),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Advances the clock to `instant` if it is ahead of the current
    /// reading; otherwise does nothing (the clock never moves
    /// backwards). Used by epoch-driven schedules to jump to the start
    /// of a later epoch.
    pub fn advance_to(&self, instant: SimTime) {
        self.ns.fetch_max(instant.0, Ordering::SeqCst);
    }

    /// Whether two handles share one timeline.
    #[must_use]
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

/// The single `Epoch ↔ SimTime` conversion.
///
/// Every epoch-driven mechanism — fault offline windows, proactive
/// refresh cadence, mobile-adversary rounds — maps its epoch numbers
/// onto the virtual timeline through one of these. An epoch `e` covers
/// the half-open interval `[start_of(e), start_of(e + 1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSchedule {
    epoch: SimDuration,
}

impl EpochSchedule {
    /// A schedule with the given epoch length (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero — a zero-length epoch cannot partition
    /// the timeline.
    #[must_use]
    pub fn new(epoch: SimDuration) -> Self {
        assert!(epoch.0 > 0, "epoch length must be non-zero");
        EpochSchedule { epoch }
    }

    /// The epoch length.
    #[must_use]
    pub fn epoch_len(&self) -> SimDuration {
        self.epoch
    }

    /// The instant epoch `e` begins.
    #[must_use]
    pub fn start_of(&self, epoch: u64) -> SimTime {
        SimTime(epoch.saturating_mul(self.epoch.0))
    }

    /// The epoch containing `instant`.
    #[must_use]
    pub fn epoch_of(&self, instant: SimTime) -> u64 {
        instant.0 / self.epoch.0
    }
}

impl Default for EpochSchedule {
    /// One virtual day per epoch — long enough that the ms-scale
    /// latency and backoff charges of a campaign never push an
    /// operation across an epoch boundary on their own, so epoch-keyed
    /// fault logs are stable under the clock refactor.
    fn default() -> Self {
        EpochSchedule::new(SimDuration::from_days(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_is_monotone() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        let t1 = clock.charge(SimDuration::from_millis(5));
        let t2 = clock.charge(SimDuration::from_nanos(1));
        assert_eq!(t1.as_nanos(), 5_000_000);
        assert_eq!(t2.as_nanos(), 5_000_001);
        assert_eq!(clock.now(), t2);
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = SimClock::new();
        let handle = clock.clone();
        handle.charge(SimDuration::from_secs(3));
        assert_eq!(clock.now().as_secs_f64(), 3.0);
        assert!(clock.same_clock(&handle));
        assert!(!clock.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::new();
        clock.advance_to(SimTime::from_nanos(100));
        assert_eq!(clock.now().as_nanos(), 100);
        clock.advance_to(SimTime::from_nanos(40));
        assert_eq!(clock.now().as_nanos(), 100, "rewind must be a no-op");
        clock.advance_to(SimTime::from_nanos(100));
        assert_eq!(clock.now().as_nanos(), 100, "advance is idempotent");
    }

    #[test]
    fn charge_saturates_at_the_top_of_the_timeline() {
        let clock = SimClock::new();
        clock.charge(SimDuration::from_nanos(u64::MAX));
        let t = clock.charge(SimDuration::from_nanos(u64::MAX));
        assert_eq!(t.as_nanos(), u64::MAX, "no wrap-around");
        assert_eq!(
            clock.now().as_nanos(),
            u64::MAX,
            "monotone under saturation"
        );
    }

    #[test]
    fn epoch_schedule_roundtrips() {
        let sched = EpochSchedule::default();
        for e in [0u64, 1, 7, 99, 100_000] {
            assert_eq!(sched.epoch_of(sched.start_of(e)), e);
            // Any instant strictly inside the epoch maps back to it.
            let inside = sched.start_of(e) + SimDuration::from_millis(250);
            assert_eq!(sched.epoch_of(inside), e);
        }
    }

    #[test]
    fn charges_commute() {
        // The same multiset of charges in two different orders lands on
        // the same reading — the property that makes elapsed virtual
        // time independent of worker scheduling.
        let a = SimClock::new();
        let b = SimClock::new();
        let costs = [3u64, 141, 59, 26, 5, 897, 9, 32];
        for c in costs {
            a.charge(SimDuration::from_nanos(c));
        }
        for c in costs.iter().rev() {
            b.charge(SimDuration::from_nanos(*c));
        }
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_days(1).as_nanos(), NANOS_PER_DAY);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d.as_secs_f64(), 5.0);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        let month = SimDuration::from_days(3044).mul_f64(0.01);
        assert!((month.as_months_f64() - 1.0).abs() < 1e-9);
    }
}

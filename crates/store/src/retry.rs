//! Bounded, deterministic retry for node operations.
//!
//! Archival media fail *transiently* far more often than they fail for
//! good (SCSI resets, robot arm contention, tape positioning errors), so
//! every consumer of [`StorageNode`](crate::node::StorageNode) I/O wants
//! the same loop: retry retryable errors a bounded number of times with
//! exponential backoff, give up on permanent ones immediately. This
//! module supplies that loop with two properties the simulation needs:
//!
//! * **Virtual time.** Backoff is charged to the shared
//!   [`SimClock`], not slept: the clock advances
//!   by exactly the milliseconds the loop *would* have waited, campaign
//!   math reads the cost off the clock, and a million-object test run
//!   finishes in seconds.
//! * **Deterministic jitter.** The jitter added to each backoff step is
//!   drawn from a caller-supplied [`CryptoRng`], so a seeded run replays
//!   the exact same retry schedule — and therefore the exact same clock
//!   readings.
//!
//! In `aeon-core` the consumer of this loop is the `PlanExecutor`: each
//! archive operation derives a fresh labelled DRBG for its retry jitter,
//! which keeps read paths `&self` and replayable without perturbing the
//! archive's main encode stream.

use crate::clock::{SimClock, SimDuration};
use crate::node::NodeError;
use aeon_crypto::CryptoRng;

/// Bounded-retry configuration for a single node operation.
///
/// # Examples
///
/// ```
/// use aeon_store::retry::RetryPolicy;
///
/// let policy = RetryPolicy::default();
/// assert_eq!(policy.max_attempts, 3);
/// assert_eq!(RetryPolicy::none().max_attempts, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Virtual backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: u32,
    /// Ceiling on a single backoff step, in milliseconds.
    pub max_backoff_ms: u64,
    /// Upper bound (exclusive) on the uniform jitter added to each
    /// backoff step; `0` disables jitter.
    pub jitter_ms: u64,
    /// Total virtual backoff budget per operation: once the accumulated
    /// backoff would exceed this, the loop gives up even if attempts
    /// remain.
    pub op_budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            backoff_multiplier: 2,
            max_backoff_ms: 1_000,
            jitter_ms: 5,
            op_budget_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            backoff_multiplier: 1,
            max_backoff_ms: 0,
            jitter_ms: 0,
            op_budget_ms: 0,
        }
    }

    /// Overrides the attempt bound.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1, "at least one attempt is required");
        self.max_attempts = attempts;
        self
    }

    /// Overrides the per-operation backoff budget.
    pub fn with_budget_ms(mut self, budget: u64) -> Self {
        self.op_budget_ms = budget;
        self
    }

    /// Whether `error` is worth retrying: transient I/O failures and
    /// offline nodes are; a missing shard is a permanent answer.
    pub fn is_retryable(error: &NodeError) -> bool {
        match error {
            NodeError::Io(_) | NodeError::Offline => true,
            NodeError::NotFound => false,
        }
    }
}

/// Accounting from one retried operation. Backoff *time* is not here —
/// it is charged to the clock, where phase arithmetic can read it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Attempts actually made (`1..=max_attempts`).
    pub attempts: u32,
}

/// Runs `op` under `policy`, retrying retryable [`NodeError`]s with
/// exponential backoff and deterministic jitter drawn from `rng`.
///
/// Returns the final result plus [`RetryStats`]. Every backoff wait is
/// charged to `clock` as virtual time (never slept); the per-operation
/// budget is tracked locally against the waits this call itself issued,
/// so concurrent operations sharing the clock do not eat each other's
/// budgets.
pub fn run_with_retry<T, R, F>(
    policy: &RetryPolicy,
    clock: &SimClock,
    rng: &mut R,
    mut op: F,
) -> (Result<T, NodeError>, RetryStats)
where
    R: CryptoRng + ?Sized,
    F: FnMut() -> Result<T, NodeError>,
{
    let mut stats = RetryStats::default();
    let mut step_ms = policy.base_backoff_ms;
    let mut waited_ms = 0u64;
    loop {
        stats.attempts += 1;
        match op() {
            Ok(v) => return (Ok(v), stats),
            Err(e) => {
                if !RetryPolicy::is_retryable(&e) || stats.attempts >= policy.max_attempts {
                    return (Err(e), stats);
                }
                let jitter = if policy.jitter_ms > 0 {
                    rng.gen_range(policy.jitter_ms)
                } else {
                    0
                };
                // Every step of the wait arithmetic saturates: at
                // pathological policies (`base ≈ u64::MAX / 2`, huge
                // multipliers, a ceiling near `u64::MAX`) the clamped
                // step plus jitter would otherwise overflow `u64`
                // before the budget check ever sees it — a panic in
                // debug builds, a silently tiny wait in release.
                let wait = step_ms.min(policy.max_backoff_ms).saturating_add(jitter);
                if waited_ms.saturating_add(wait) > policy.op_budget_ms {
                    // Giving up costs nothing further: the rejected
                    // wait never happens, so it is not charged.
                    return (Err(e), stats);
                }
                waited_ms = waited_ms.saturating_add(wait);
                clock.charge(SimDuration::from_millis(wait));
                step_ms = step_ms.saturating_mul(policy.backoff_multiplier as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    #[test]
    fn succeeds_first_try_without_backoff() {
        let mut rng = ChaChaDrbg::from_u64_seed(1);
        let clock = SimClock::new();
        let (out, stats) = run_with_retry(&RetryPolicy::default(), &clock, &mut rng, || {
            Ok::<_, NodeError>(7)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(stats.attempts, 1);
        assert_eq!(clock.now().as_millis(), 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let mut rng = ChaChaDrbg::from_u64_seed(2);
        let clock = SimClock::new();
        let mut calls = 0;
        let (out, stats) = run_with_retry(&RetryPolicy::default(), &clock, &mut rng, || {
            calls += 1;
            if calls < 3 {
                Err(NodeError::Io("flaky".into()))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(stats.attempts, 3);
        assert!(
            clock.now().as_millis() >= 10 + 20,
            "exponential steps are charged to the clock"
        );
    }

    #[test]
    fn not_found_is_permanent() {
        let mut rng = ChaChaDrbg::from_u64_seed(3);
        let clock = SimClock::new();
        let mut calls = 0;
        let (out, stats) = run_with_retry(&RetryPolicy::default(), &clock, &mut rng, || {
            calls += 1;
            Err::<(), _>(NodeError::NotFound)
        });
        assert_eq!(out.unwrap_err(), NodeError::NotFound);
        assert_eq!(stats.attempts, 1);
        assert_eq!(calls, 1);
        assert_eq!(clock.now().as_millis(), 0);
    }

    #[test]
    fn attempt_bound_is_respected() {
        let mut rng = ChaChaDrbg::from_u64_seed(4);
        let clock = SimClock::new();
        let policy = RetryPolicy::default().with_attempts(5);
        let mut calls = 0u32;
        let (out, stats) = run_with_retry(&policy, &clock, &mut rng, || {
            calls += 1;
            Err::<(), _>(NodeError::Offline)
        });
        assert!(out.is_err());
        assert_eq!(calls, 5);
        assert_eq!(stats.attempts, 5);
    }

    #[test]
    fn budget_stops_retrying_early() {
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let clock = SimClock::new();
        let policy = RetryPolicy::default().with_attempts(100).with_budget_ms(25);
        let (out, stats) = run_with_retry(&policy, &clock, &mut rng, || {
            Err::<(), _>(NodeError::Io("down".into()))
        });
        assert!(out.is_err());
        assert!(stats.attempts < 100, "budget cut the loop short");
        assert!(
            clock.now().as_millis() <= 25,
            "only waits within the budget are charged"
        );
    }

    #[test]
    fn budget_is_per_call_not_per_clock() {
        // A clock already deep into virtual time must not starve fresh
        // operations: the budget counts this call's own waits.
        let mut rng = ChaChaDrbg::from_u64_seed(6);
        let clock = SimClock::new();
        clock.charge(SimDuration::from_days(365));
        let before = clock.now();
        let mut calls = 0;
        let (out, _) = run_with_retry(&RetryPolicy::default(), &clock, &mut rng, || {
            calls += 1;
            if calls < 2 {
                Err(NodeError::Io("flaky".into()))
            } else {
                Ok(())
            }
        });
        assert!(out.is_ok());
        assert!(clock.now() > before, "the retry still charged its wait");
    }

    #[test]
    fn pathological_backoff_saturates_instead_of_overflowing() {
        // base = u64::MAX / 2 with multiplier = u32::MAX: the second
        // step saturates to u64::MAX, so `step + jitter` and the
        // accumulated `waited_ms` both exceed u64 range. Before the
        // saturating arithmetic this overflowed (a debug panic, a
        // wrapped-to-tiny wait in release) before the `max_backoff_ms`
        // clamp or the budget check could intervene.
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: u64::MAX / 2,
            backoff_multiplier: u32::MAX,
            max_backoff_ms: u64::MAX,
            jitter_ms: 5,
            op_budget_ms: u64::MAX,
        };
        let mut rng = ChaChaDrbg::from_u64_seed(11);
        let clock = SimClock::new();
        let (out, stats) = run_with_retry(&policy, &clock, &mut rng, || {
            Err::<(), _>(NodeError::Io("always down".into()))
        });
        assert!(out.is_err());
        assert_eq!(stats.attempts, 4, "attempt bound still governs");
        // The charges saturate at the top of the virtual timeline
        // rather than wrapping to a near-zero wait.
        assert_eq!(clock.now().as_nanos(), u64::MAX);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let elapsed = |seed: u64| {
            let mut rng = ChaChaDrbg::from_u64_seed(seed);
            let clock = SimClock::new();
            let (_, stats) = run_with_retry(
                &RetryPolicy::default().with_attempts(3),
                &clock,
                &mut rng,
                || Err::<(), _>(NodeError::Io("x".into())),
            );
            (stats, clock.now())
        };
        assert_eq!(elapsed(9), elapsed(9), "same seed, same clock reading");
        assert_eq!(elapsed(9).0.attempts, 3);
    }
}

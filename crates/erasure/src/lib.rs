//! Erasure coding: systematic Reed–Solomon and replication.
//!
//! Availability is the best-understood leg of the CIA triad for archives:
//! `[n, k]` MDS codes tolerate the loss of any `n - k` shards at a storage
//! cost of `n / k`, versus `n`× for replication. This crate provides:
//!
//! * [`ReedSolomon`] — a systematic RS code over GF(2^8) built on Cauchy
//!   matrices (any `k` of the `n` shards reconstruct; data shards are
//!   plaintext copies of the input, parity shards are linear combinations).
//! * [`Replicator`] — plain `n`-way replication behind the same
//!   [`ErasureCode`] interface, as the baseline encoding in the paper's
//!   Figure 1.
//! * [`striping`] — helpers to split byte streams into fixed shards.
//!
//! # Examples
//!
//! ```
//! use aeon_erasure::{ErasureCode, ReedSolomon};
//!
//! let rs = ReedSolomon::new(4, 2)?; // 4 data + 2 parity
//! let shards = rs.encode(b"archival payload, arbitrarily sized")?;
//! // Lose any two shards:
//! let mut partial: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! partial[0] = None;
//! partial[5] = None;
//! let recovered = rs.decode(&partial)?;
//! assert_eq!(recovered, b"archival payload, arbitrarily sized");
//! # Ok::<(), aeon_erasure::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod striping;

use aeon_gf::slice::{self, Gf256MulTable};
use aeon_gf::{Gf256, Matrix};

/// Errors from erasure coding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// Invalid code parameters.
    InvalidParameters {
        /// Data shard count requested.
        data: usize,
        /// Parity shard count requested.
        parity: usize,
        /// Why the parameters are invalid.
        reason: &'static str,
    },
    /// Not enough shards survive to reconstruct.
    TooFewShards {
        /// Shards available.
        available: usize,
        /// Shards required.
        required: usize,
    },
    /// Shard lengths are inconsistent.
    ShardLengthMismatch,
    /// The shard list has the wrong number of entries.
    WrongShardCount {
        /// Entries provided.
        provided: usize,
        /// Entries expected.
        expected: usize,
    },
    /// The encoded payload header is malformed.
    CorruptHeader,
}

impl core::fmt::Display for CodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodeError::InvalidParameters {
                data,
                parity,
                reason,
            } => {
                write!(
                    f,
                    "invalid code parameters ({data} data, {parity} parity): {reason}"
                )
            }
            CodeError::TooFewShards {
                available,
                required,
            } => {
                write!(
                    f,
                    "too few shards: {available} available, {required} required"
                )
            }
            CodeError::ShardLengthMismatch => write!(f, "shard lengths differ"),
            CodeError::WrongShardCount { provided, expected } => {
                write!(
                    f,
                    "wrong shard count: {provided} provided, {expected} expected"
                )
            }
            CodeError::CorruptHeader => write!(f, "corrupt shard header"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A `[n, k]` erasure code over byte shards.
///
/// Encoding maps a byte payload to `n = data + parity` shards; decoding
/// accepts a vector with `None` marking lost shards and reconstructs the
/// payload from any `k` survivors.
pub trait ErasureCode: core::fmt::Debug + Send + Sync {
    /// Number of data shards (`k`).
    fn data_shards(&self) -> usize;

    /// Number of parity shards (`n - k`).
    fn parity_shards(&self) -> usize;

    /// Total shards (`n`).
    fn total_shards(&self) -> usize {
        self.data_shards() + self.parity_shards()
    }

    /// Storage expansion factor `n / k`.
    fn expansion(&self) -> f64 {
        self.total_shards() as f64 / self.data_shards() as f64
    }

    /// Encodes a payload into `n` equal-length shards.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see the concrete types.
    fn encode(&self, payload: &[u8]) -> Result<Vec<Vec<u8>>, CodeError>;

    /// Reconstructs the payload from surviving shards (`None` = lost).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::TooFewShards`] if fewer than `k` survive.
    fn decode(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError>;
}

/// Systematic Reed–Solomon code over GF(2^8).
///
/// The first `k` shards are verbatim slices of the (length-prefixed,
/// zero-padded) payload; parity shards are Cauchy-matrix combinations.
/// Supports up to 255 total shards.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    encode_matrix: Matrix<Gf256>,
    /// Per-coefficient product tables for the parity rows, built once at
    /// construction: `parity_tables[r][c]` multiplies by
    /// `encode_matrix[data + r][c]`. Encoding the same code over many
    /// chunks then pays zero table-build cost per chunk.
    parity_tables: Vec<Vec<Gf256MulTable>>,
}

impl ReedSolomon {
    /// Creates a code with `data` data shards and `parity` parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if either count is zero or
    /// `data + parity > 255`.
    pub fn new(data: usize, parity: usize) -> Result<Self, CodeError> {
        if data == 0 {
            return Err(CodeError::InvalidParameters {
                data,
                parity,
                reason: "need at least one data shard",
            });
        }
        if parity == 0 {
            return Err(CodeError::InvalidParameters {
                data,
                parity,
                reason: "need at least one parity shard",
            });
        }
        if data + parity > 255 {
            return Err(CodeError::InvalidParameters {
                data,
                parity,
                reason: "GF(256) supports at most 255 shards",
            });
        }
        let encode_matrix = Matrix::rs_systematic(data, parity);
        let parity_tables = (0..parity)
            .map(|r| {
                let row = encode_matrix.row(data + r);
                row.iter().map(|&coeff| Gf256MulTable::new(coeff)).collect()
            })
            .collect();
        Ok(ReedSolomon {
            data,
            parity,
            encode_matrix,
            parity_tables,
        })
    }

    /// Encodes pre-split, equal-length data shards, returning only the
    /// parity shards. This is the hot path used by the archive pipeline
    /// when it manages striping itself.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongShardCount`] or
    /// [`CodeError::ShardLengthMismatch`] on malformed input.
    pub fn encode_shards(&self, data_shards: &[&[u8]]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data_shards.len() != self.data {
            return Err(CodeError::WrongShardCount {
                provided: data_shards.len(),
                expected: self.data,
            });
        }
        let len = data_shards[0].len();
        if data_shards.iter().any(|s| s.len() != len) {
            return Err(CodeError::ShardLengthMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.parity];
        for (tables, out) in self.parity_tables.iter().zip(parity.iter_mut()) {
            // One fused pass per parity row: all data shards accumulate
            // into each cache-sized strip of `out` while it is hot.
            let rows: Vec<(&Gf256MulTable, &[u8])> = tables
                .iter()
                .zip(data_shards)
                .map(|(table, shard)| (table, *shard))
                .collect();
            slice::mul_add_rows_tables(out, &rows);
        }
        Ok(parity)
    }

    /// Reconstructs all shards (data and parity) from any `k` survivors,
    /// returning the full shard set.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::TooFewShards`] when reconstruction is
    /// impossible and [`CodeError::ShardLengthMismatch`] on ragged input.
    pub fn reconstruct_shards(
        &self,
        shards: &[Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let n = self.total_shards();
        if shards.len() != n {
            return Err(CodeError::WrongShardCount {
                provided: shards.len(),
                expected: n,
            });
        }
        let available: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
        if available.len() < self.data {
            return Err(CodeError::TooFewShards {
                available: available.len(),
                required: self.data,
            });
        }
        let len = shards[available[0]].as_ref().expect("available").len();
        if available
            .iter()
            .any(|&i| shards[i].as_ref().expect("available").len() != len)
        {
            return Err(CodeError::ShardLengthMismatch);
        }

        // Invert the submatrix of the first k surviving rows.
        let rows: Vec<usize> = available[..self.data].to_vec();
        let sub = self.encode_matrix.select_rows(&rows);
        let inv = sub.inverse().map_err(|_| CodeError::TooFewShards {
            available: available.len(),
            required: self.data,
        })?;

        // Recover data shards: data[c] = sum_j inv[c][j] * surviving[j].
        // The inverse depends on the erasure pattern, so each output
        // row's tables are built inside the fused kernel; the cost
        // amortizes over the shard length.
        let mut data: Vec<Vec<u8>> = vec![vec![0u8; len]; self.data];
        for (c, out) in data.iter_mut().enumerate() {
            let inv_rows: Vec<(Gf256, &[u8])> = rows
                .iter()
                .enumerate()
                .map(|(j, &row_idx)| {
                    let src: &[u8] = shards[row_idx].as_ref().expect("available");
                    (inv[(c, j)], src)
                })
                .collect();
            slice::mul_add_rows(out, &inv_rows);
        }

        // Regenerate parity from recovered data.
        let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = self.encode_shards(&data_refs)?;
        let mut all = data;
        all.extend(parity);
        Ok(all)
    }
}

/// Length-prefix and zero-pad a payload so it splits evenly into `k`
/// shards.
fn frame_payload(payload: &[u8], k: usize) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    framed.extend_from_slice(payload);
    let rem = framed.len() % k;
    if rem != 0 {
        framed.resize(framed.len() + (k - rem), 0);
    }
    framed
}

/// Recover a payload from its framed form.
fn unframe_payload(framed: &[u8]) -> Result<Vec<u8>, CodeError> {
    if framed.len() < 8 {
        return Err(CodeError::CorruptHeader);
    }
    let len = u64::from_be_bytes(framed[..8].try_into().expect("8 bytes")) as usize;
    if len > framed.len() - 8 {
        return Err(CodeError::CorruptHeader);
    }
    Ok(framed[8..8 + len].to_vec())
}

impl ErasureCode for ReedSolomon {
    fn data_shards(&self) -> usize {
        self.data
    }

    fn parity_shards(&self) -> usize {
        self.parity
    }

    fn encode(&self, payload: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        let framed = frame_payload(payload, self.data);
        let shard_len = framed.len() / self.data;
        let data_shards: Vec<&[u8]> = framed.chunks(shard_len).collect();
        let parity = self.encode_shards(&data_shards)?;
        let mut all: Vec<Vec<u8>> = data_shards.into_iter().map(|s| s.to_vec()).collect();
        all.extend(parity);
        Ok(all)
    }

    fn decode(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError> {
        let all = self.reconstruct_shards(shards)?;
        let mut framed = Vec::new();
        for shard in &all[..self.data] {
            framed.extend_from_slice(shard);
        }
        unframe_payload(&framed)
    }
}

/// `n`-way replication behind the [`ErasureCode`] interface.
///
/// Tolerates `n - 1` losses at `n`× storage — the upper-left point of the
/// paper's Figure 1 (high cost, no confidentiality).
#[derive(Debug, Clone)]
pub struct Replicator {
    copies: usize,
}

impl Replicator {
    /// Creates an `n`-way replicator.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `copies == 0`.
    pub fn new(copies: usize) -> Result<Self, CodeError> {
        if copies == 0 {
            return Err(CodeError::InvalidParameters {
                data: 1,
                parity: 0,
                reason: "need at least one copy",
            });
        }
        Ok(Replicator { copies })
    }
}

impl ErasureCode for Replicator {
    fn data_shards(&self) -> usize {
        1
    }

    fn parity_shards(&self) -> usize {
        self.copies - 1
    }

    fn encode(&self, payload: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        Ok(vec![payload.to_vec(); self.copies])
    }

    fn decode(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<u8>, CodeError> {
        if shards.len() != self.copies {
            return Err(CodeError::WrongShardCount {
                provided: shards.len(),
                expected: self.copies,
            });
        }
        shards
            .iter()
            .flatten()
            .next()
            .cloned()
            .ok_or(CodeError::TooFewShards {
                available: 0,
                required: 1,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_roundtrip_no_loss() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let payload = b"hello world, this is a payload";
        let shards: Vec<Option<Vec<u8>>> =
            rs.encode(payload).unwrap().into_iter().map(Some).collect();
        assert_eq!(rs.decode(&shards).unwrap(), payload);
    }

    #[test]
    fn rs_tolerates_max_losses() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let payload: Vec<u8> = (0..100u8).collect();
        let encoded = rs.encode(&payload).unwrap();
        // Drop every pair of shards.
        for i in 0..5 {
            for j in i + 1..5 {
                let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                assert_eq!(rs.decode(&shards).unwrap(), payload, "lost {i},{j}");
            }
        }
    }

    #[test]
    fn rs_fails_below_threshold() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let encoded = rs.encode(b"data").unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(
            rs.decode(&shards).unwrap_err(),
            CodeError::TooFewShards {
                available: 2,
                required: 3
            }
        );
    }

    #[test]
    fn rs_systematic_property() {
        // Data shards carry the framed payload verbatim.
        let rs = ReedSolomon::new(2, 1).unwrap();
        let payload = [0xAAu8; 24];
        let shards = rs.encode(&payload).unwrap();
        let mut framed = Vec::new();
        framed.extend_from_slice(&shards[0]);
        framed.extend_from_slice(&shards[1]);
        assert_eq!(&framed[8..8 + 24], &payload);
    }

    #[test]
    fn rs_empty_payload() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let shards: Vec<Option<Vec<u8>>> = rs.encode(b"").unwrap().into_iter().map(Some).collect();
        assert_eq!(rs.decode(&shards).unwrap(), b"");
    }

    #[test]
    fn rs_payload_not_multiple_of_k() {
        let rs = ReedSolomon::new(5, 2).unwrap();
        for len in 1..40 {
            let payload: Vec<u8> = (0..len as u8).collect();
            let mut shards: Vec<Option<Vec<u8>>> =
                rs.encode(&payload).unwrap().into_iter().map(Some).collect();
            shards[4] = None;
            shards[0] = None;
            assert_eq!(rs.decode(&shards).unwrap(), payload, "len {len}");
        }
    }

    #[test]
    fn rs_invalid_parameters() {
        assert!(ReedSolomon::new(0, 1).is_err());
        assert!(ReedSolomon::new(1, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn rs_expansion() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        assert!((rs.expansion() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rs_wrong_shard_count() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let shards = vec![Some(vec![0u8; 8]); 5];
        assert!(matches!(
            rs.decode(&shards),
            Err(CodeError::WrongShardCount { .. })
        ));
    }

    #[test]
    fn rs_ragged_shards_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let shards = vec![Some(vec![0u8; 8]), Some(vec![0u8; 9]), Some(vec![0u8; 8])];
        assert_eq!(
            rs.decode(&shards).unwrap_err(),
            CodeError::ShardLengthMismatch
        );
    }

    #[test]
    fn replication_roundtrip_and_loss() {
        let rep = Replicator::new(3).unwrap();
        let shards = rep.encode(b"copy me").unwrap();
        assert_eq!(shards.len(), 3);
        let partial = vec![None, None, Some(shards[2].clone())];
        assert_eq!(rep.decode(&partial).unwrap(), b"copy me");
        let none = vec![None, None, None];
        assert!(matches!(
            rep.decode(&none),
            Err(CodeError::TooFewShards { .. })
        ));
    }

    #[test]
    fn replication_expansion() {
        let rep = Replicator::new(4).unwrap();
        assert!((rep.expansion() - 4.0).abs() < 1e-9);
        assert_eq!(rep.total_shards(), 4);
    }

    #[test]
    fn corrupt_header_detected() {
        // Frame claiming a longer payload than exists.
        let mut bad = vec![0u8; 16];
        bad[..8].copy_from_slice(&(100u64).to_be_bytes());
        assert_eq!(unframe_payload(&bad).unwrap_err(), CodeError::CorruptHeader);
        assert_eq!(
            unframe_payload(&[1, 2]).unwrap_err(),
            CodeError::CorruptHeader
        );
    }
}

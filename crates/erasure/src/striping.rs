//! Striping helpers: splitting byte payloads into fixed-count shards and
//! rejoining them.

/// Splits `payload` into exactly `count` shards of equal length, zero-
/// padding the tail. Returns the shards and the original length (needed to
/// strip padding on rejoin).
///
/// # Panics
///
/// Panics if `count == 0`.
///
/// # Examples
///
/// ```
/// use aeon_erasure::striping::{split, join};
///
/// let (shards, len) = split(b"hello world", 3);
/// assert_eq!(shards.len(), 3);
/// assert_eq!(join(&shards, len), b"hello world");
/// ```
pub fn split(payload: &[u8], count: usize) -> (Vec<Vec<u8>>, usize) {
    assert!(count > 0, "shard count must be positive");
    let shard_len = payload.len().div_ceil(count).max(1);
    let mut shards = Vec::with_capacity(count);
    for i in 0..count {
        let start = (i * shard_len).min(payload.len());
        let end = ((i + 1) * shard_len).min(payload.len());
        let mut shard = payload[start..end].to_vec();
        shard.resize(shard_len, 0);
        shards.push(shard);
    }
    (shards, payload.len())
}

/// Rejoins shards produced by [`split`], truncating padding to
/// `original_len`.
///
/// # Panics
///
/// Panics if the shards hold fewer than `original_len` bytes in total.
pub fn join(shards: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(original_len);
    for shard in shards {
        out.extend_from_slice(shard);
    }
    assert!(
        out.len() >= original_len,
        "shards shorter than original length"
    );
    out.truncate(original_len);
    out
}

/// Interleaves a payload byte-by-byte across `count` shards (byte `i` goes
/// to shard `i % count`). Interleaving spreads any localized corruption
/// across all shards, which matters when shards map to physical media with
/// correlated failure regions.
pub fn interleave(payload: &[u8], count: usize) -> (Vec<Vec<u8>>, usize) {
    assert!(count > 0, "shard count must be positive");
    let shard_len = payload.len().div_ceil(count).max(1);
    let mut shards = vec![vec![0u8; shard_len]; count];
    for (i, &b) in payload.iter().enumerate() {
        shards[i % count][i / count] = b;
    }
    (shards, payload.len())
}

/// Reverses [`interleave`].
///
/// # Panics
///
/// Panics if the shards are ragged (unequal lengths — [`interleave`]
/// always produces equal-length shards) or hold fewer than
/// `original_len` bytes in total.
pub fn deinterleave(shards: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let count = shards.len();
    assert!(count > 0 || original_len == 0, "no shards to deinterleave");
    // A total-length check alone is not enough: ragged shards can hold
    // enough bytes overall while shard `i % count` is still too short
    // for row `i / count`, which would fail as an opaque index panic.
    let shard_len = shards.first().map_or(0, |s| s.len());
    assert!(
        shards.iter().all(|s| s.len() == shard_len),
        "ragged shards: deinterleave requires equal-length shards as \
         produced by interleave"
    );
    assert!(
        count * shard_len >= original_len,
        "shards shorter than original length"
    );
    let mut out = Vec::with_capacity(original_len);
    for i in 0..original_len {
        out.push(shards[i % count][i / count]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_roundtrip() {
        for len in [0usize, 1, 2, 3, 10, 11, 12, 100] {
            for count in [1usize, 2, 3, 7] {
                let payload: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
                let (shards, n) = split(&payload, count);
                assert_eq!(shards.len(), count);
                let lens: Vec<usize> = shards.iter().map(|s| s.len()).collect();
                assert!(lens.windows(2).all(|w| w[0] == w[1]), "equal lengths");
                assert_eq!(join(&shards, n), payload, "len={len} count={count}");
            }
        }
    }

    #[test]
    fn interleave_roundtrip() {
        for len in [0usize, 1, 5, 9, 10, 11, 64] {
            for count in [1usize, 2, 3, 5] {
                let payload: Vec<u8> = (0..len as u32).map(|i| (i * 3) as u8).collect();
                let (shards, n) = interleave(&payload, count);
                assert_eq!(deinterleave(&shards, n), payload, "len={len} count={count}");
            }
        }
    }

    #[test]
    fn interleave_spreads_adjacent_bytes() {
        let payload: Vec<u8> = (0..12u8).collect();
        let (shards, _) = interleave(&payload, 3);
        assert_eq!(shards[0], vec![0, 3, 6, 9]);
        assert_eq!(shards[1], vec![1, 4, 7, 10]);
        assert_eq!(shards[2], vec![2, 5, 8, 11]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_count_panics() {
        let _ = split(b"x", 0);
    }

    #[test]
    #[should_panic(expected = "ragged shards")]
    fn ragged_but_sufficient_shards_rejected_clearly() {
        // Total bytes (5 + 3 = 8) cover original_len = 8, but shard 1 is
        // short; this used to slip past the total-length check and die on
        // an out-of-bounds index deep in the loop.
        let shards = vec![vec![0u8; 5], vec![0u8; 3]];
        let _ = deinterleave(&shards, 8);
    }

    #[test]
    #[should_panic(expected = "shorter than original")]
    fn insufficient_shards_rejected() {
        let shards = vec![vec![0u8; 2], vec![0u8; 2]];
        let _ = deinterleave(&shards, 5);
    }
}

//! Deterministic content-defined chunking (Gear rolling hash).
//!
//! Fixed-size chunking destroys dedup the moment one byte is inserted:
//! every later chunk shifts. A content-defined chunker instead cuts
//! where the *data* says to — a rolling hash over the last 64 bytes
//! crosses a seeded mask — so an edit only disturbs boundaries in a
//! bounded window around itself and the rest of the stream re-aligns.
//!
//! The gear construction: a 256-entry table of random `u64`s (derived
//! from a caller seed, so boundaries are reproducible across runs and
//! platforms), and per byte
//!
//! ```text
//! h = (h << 1) + gear[b]
//! ```
//!
//! Each shift ages a byte's contribution by one bit; after 64 bytes it
//! has left the register, which is what bounds the edit window. A cut
//! is declared when the top `mask_bits` bits of `h` are all zero —
//! probability `2^-mask_bits` per byte — but only after `min_size`
//! bytes (suppressing pathological tiny chunks), and forced at
//! `max_size` (bounding the tree arity and repair unit). `mask_bits` is
//! `ilog2(target_size - min_size)`, so the mean chunk length lands near
//! `target_size` on random data.

use aeon_crypto::{ChaChaDrbg, CryptoRng};

/// Chunking parameters. Boundaries are a pure function of
/// `(params, data)` — same params and bytes, same cuts, on every
/// platform and kernel tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerParams {
    /// No cut before this many bytes (the final chunk may be shorter).
    pub min_size: usize,
    /// Mean chunk size to aim for on random data.
    pub target_size: usize,
    /// Hard cut at this many bytes.
    pub max_size: usize,
    /// Seed for the gear table and cut mask; part of the chunking
    /// identity (different seeds cut differently on purpose).
    pub seed: u64,
}

impl Default for ChunkerParams {
    /// 16 KiB / 64 KiB / 256 KiB: small enough that shared content
    /// dedups, large enough that per-block encoding overhead (AEAD
    /// tags, shard framing, tree arity) stays well under a percent.
    fn default() -> Self {
        ChunkerParams {
            min_size: 16 << 10,
            target_size: 64 << 10,
            max_size: 256 << 10,
            seed: 0xAE0_CD0,
        }
    }
}

impl ChunkerParams {
    /// `true` when `0 < min <= target <= max`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.min_size > 0 && self.min_size <= self.target_size && self.target_size <= self.max_size
    }
}

/// A configured content-defined chunker: the gear table and cut mask
/// derived once from [`ChunkerParams`].
#[derive(Clone)]
pub struct Chunker {
    params: ChunkerParams,
    gear: [u64; 256],
    mask: u64,
}

impl std::fmt::Debug for Chunker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunker")
            .field("params", &self.params)
            .field("mask_bits", &self.mask.count_ones())
            .finish_non_exhaustive()
    }
}

impl Chunker {
    /// Builds a chunker: fills the gear table from a DRBG seeded with
    /// `params.seed` and derives the cut mask from the target span.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_size <= target_size <= max_size`.
    #[must_use]
    pub fn new(params: ChunkerParams) -> Self {
        assert!(
            params.is_valid(),
            "chunker params must satisfy 0 < min <= target <= max: {params:?}"
        );
        let mut rng = ChaChaDrbg::from_u64_seed(params.seed ^ 0x6165_6f6e_2d63_6173); // "aeon-cas"
        let mut gear = [0u64; 256];
        for g in &mut gear {
            *g = rng.next_u64();
        }
        // A cut fires when the top `bits` bits of the rolling hash are
        // zero: probability 2^-bits per byte past min_size, so the mean
        // gap past min is ~2^bits ≈ target - min.
        let span = (params.target_size - params.min_size).max(1) as u64;
        let bits = 64 - span.leading_zeros() as u64 - 1; // ilog2(span), 0 when span == 1
        let bits = bits.max(1);
        let mask = ((1u64 << bits) - 1) << (64 - bits);
        Chunker { params, gear, mask }
    }

    /// The parameters this chunker was built with.
    #[must_use]
    pub fn params(&self) -> &ChunkerParams {
        &self.params
    }

    /// Number of hash bits a cut must zero (`2^-bits` cut probability).
    #[must_use]
    pub fn mask_bits(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Chunk boundaries as **end offsets**, in ascending order; the
    /// last entry is always `data.len()`. Empty input yields no
    /// boundaries. Every chunk spans `[prev, end)` with
    /// `min_size <= end - prev <= max_size`, except the final chunk
    /// which may be shorter than `min_size`.
    #[must_use]
    pub fn boundaries(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::new();
        let mut start = 0usize;
        let mut h = 0u64;
        for (i, &b) in data.iter().enumerate() {
            h = (h << 1).wrapping_add(self.gear[b as usize]);
            let len = i + 1 - start;
            if (len >= self.params.min_size && h & self.mask == 0) || len == self.params.max_size {
                cuts.push(i + 1);
                start = i + 1;
                h = 0;
            }
        }
        if start < data.len() {
            cuts.push(data.len());
        }
        cuts
    }

    /// The chunks themselves, as sub-slices of `data` in order.
    #[must_use]
    pub fn chunks<'a>(&self, data: &'a [u8]) -> Vec<&'a [u8]> {
        let mut out = Vec::new();
        let mut prev = 0;
        for end in self.boundaries(data) {
            out.push(&data[prev..end]);
            prev = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ChunkerParams {
        ChunkerParams {
            min_size: 256,
            target_size: 1024,
            max_size: 4096,
            seed: 7,
        }
    }

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = ChaChaDrbg::from_u64_seed(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn empty_input_has_no_boundaries() {
        let c = Chunker::new(small_params());
        assert!(c.boundaries(&[]).is_empty());
        assert!(c.chunks(&[]).is_empty());
    }

    #[test]
    fn boundaries_partition_the_input() {
        let c = Chunker::new(small_params());
        let data = random_data(50_000, 1);
        let cuts = c.boundaries(&data);
        assert_eq!(*cuts.last().unwrap(), data.len());
        let mut prev = 0;
        for (i, &end) in cuts.iter().enumerate() {
            let len = end - prev;
            assert!(len <= 4096, "chunk {i} too large: {len}");
            if i + 1 < cuts.len() {
                assert!(len >= 256, "chunk {i} too small: {len}");
            }
            prev = end;
        }
        let total: usize = c.chunks(&data).iter().map(|s| s.len()).sum();
        assert_eq!(total, data.len());
    }

    #[test]
    fn same_seed_same_cuts_different_seed_different_cuts() {
        let data = random_data(100_000, 2);
        let a = Chunker::new(small_params()).boundaries(&data);
        let b = Chunker::new(small_params()).boundaries(&data);
        assert_eq!(a, b);
        let mut other = small_params();
        other.seed = 8;
        let c = Chunker::new(other).boundaries(&data);
        assert_ne!(a, c, "different gear seeds should cut differently");
    }

    #[test]
    fn mean_chunk_size_near_target() {
        let c = Chunker::new(small_params());
        let data = random_data(1 << 20, 3);
        let cuts = c.boundaries(&data);
        assert!(cuts.len() > 100, "expected many chunks, got {}", cuts.len());
        let mean = data.len() as f64 / cuts.len() as f64;
        let target = small_params().target_size as f64;
        assert!(
            mean > target * 0.5 && mean < target * 1.6,
            "mean chunk {mean:.0} strays from target {target}"
        );
    }

    #[test]
    fn degenerate_data_falls_back_to_max_cuts() {
        // All-zero data never fires a content cut with overwhelming
        // probability under a random gear value -- unless gear[0]'s
        // accumulated sum happens to zero the mask. Either way every
        // chunk respects the bounds.
        let c = Chunker::new(small_params());
        let data = vec![0u8; 20_000];
        let cuts = c.boundaries(&data);
        let mut prev = 0;
        for &end in &cuts {
            assert!(end - prev <= 4096);
            prev = end;
        }
        assert_eq!(prev, data.len());
    }

    #[test]
    #[should_panic(expected = "chunker params")]
    fn invalid_params_panic() {
        let _ = Chunker::new(ChunkerParams {
            min_size: 0,
            target_size: 8,
            max_size: 4,
            seed: 0,
        });
    }
}

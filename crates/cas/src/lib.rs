//! Content-addressed storage substrate for the aeon archive.
//!
//! The paper's §3.2 campaigns are priced per byte that crosses the
//! media; the cheapest byte is the one never stored twice. This crate
//! supplies the Venti-shaped substrate ROADMAP item 2 calls for, in
//! three pure, archive-agnostic pieces:
//!
//! * [`chunker`] — a deterministic content-defined chunker (Gear
//!   rolling hash) with min/target/max bounds and a seeded gear table,
//!   so chunk boundaries are reproducible across runs and machines and
//!   survive insertions with only local boundary churn.
//! * [`store`] — a block store keyed by SHA-256: refcounted blocks plus
//!   a bounded in-memory recency index ([`BoundedIndex`]) whose misses
//!   fall back to the authoritative map, so the memory bound costs
//!   dedup opportunity statistics, never correctness.
//! * [`merkle`] — a Merkle block tree whose interior nodes are
//!   themselves content-addressed blocks, so an entire object — or a
//!   whole archive catalog — is recoverable and verifiable from a
//!   single 32-byte root hash.
//!
//! Everything here is deterministic in its inputs: no clocks, no
//! global state, no platform-dependent hashing.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chunker;
pub mod merkle;
pub mod store;

pub use chunker::{Chunker, ChunkerParams};
pub use merkle::{build_tree, collect_leaves, decode_node, TreeBuild, TreeError, TreeNode};
pub use store::{BoundedIndex, IndexStats, MemoryBlockStore};

use aeon_crypto::Sha256;
use std::fmt;

/// The SHA-256 content address of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockHash([u8; 32]);

impl BlockHash {
    /// Hashes a block's bytes into its content address.
    #[must_use]
    pub fn of(data: &[u8]) -> Self {
        BlockHash(Sha256::digest(data))
    }

    /// Wraps a raw digest.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        BlockHash(bytes)
    }

    /// The raw digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_sha256() {
        assert_eq!(*BlockHash::of(b"abc").as_bytes(), Sha256::digest(b"abc"));
    }

    #[test]
    fn display_is_lowercase_hex() {
        let h = BlockHash::from_bytes([0xAB; 32]);
        assert_eq!(h.to_string(), "ab".repeat(32));
    }

    #[test]
    fn ordering_matches_byte_ordering() {
        let a = BlockHash::from_bytes([1; 32]);
        let b = BlockHash::from_bytes([2; 32]);
        assert!(a < b);
    }
}

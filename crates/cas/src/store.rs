//! Refcounted block storage and the bounded dedup index.
//!
//! [`MemoryBlockStore`] is the reference content-addressed store: one
//! copy per distinct SHA-256, a reference count per block, and bytes
//! released only when the last reference drops. [`BoundedIndex`] is the
//! memory-bounded recency index an archive consults *before* the
//! authoritative map: dedup state for a petabyte of blocks cannot live
//! unbounded in RAM, so the index keeps only the most recently seen
//! hashes and evicts the oldest past its capacity. An index miss is
//! never an error — the authoritative lookup still decides — it only
//! shows up in [`IndexStats`], which is how the `exp_dedup` experiment
//! measures what a given memory budget costs in recognition rate.

use crate::BlockHash;
use std::collections::BTreeMap;

/// Hit/miss/eviction accounting for a [`BoundedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Lookups that found the hash resident.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded, recency-evicting set of block hashes.
///
/// Determinism note: eviction order is pure LRU over the call sequence
/// (a monotonic sequence number, no clocks), so identical operation
/// streams leave identical residency on every platform.
#[derive(Debug, Clone)]
pub struct BoundedIndex {
    capacity: usize,
    seq: u64,
    by_hash: BTreeMap<BlockHash, u64>,
    by_age: BTreeMap<u64, BlockHash>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BoundedIndex {
    /// An index holding at most `capacity` hashes. Capacity 0 is a
    /// valid degenerate index: every lookup misses, nothing is kept.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedIndex {
            capacity,
            seq: 0,
            by_hash: BTreeMap::new(),
            by_age: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Whether `hash` is resident; refreshes its recency on a hit.
    pub fn lookup(&mut self, hash: &BlockHash) -> bool {
        if let Some(age) = self.by_hash.get(hash).copied() {
            self.hits += 1;
            self.by_age.remove(&age);
            self.seq += 1;
            self.by_hash.insert(*hash, self.seq);
            self.by_age.insert(self.seq, *hash);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records `hash` as just-seen (inserting or refreshing), evicting
    /// the least recently seen entry if over capacity.
    pub fn record(&mut self, hash: &BlockHash) {
        if self.capacity == 0 {
            return;
        }
        self.seq += 1;
        if let Some(age) = self.by_hash.insert(*hash, self.seq) {
            self.by_age.remove(&age);
        }
        self.by_age.insert(self.seq, *hash);
        while self.by_hash.len() > self.capacity {
            let (&oldest, &victim) = self.by_age.iter().next().expect("index non-empty");
            self.by_age.remove(&oldest);
            self.by_hash.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Drops `hash` from the index (block deleted from the store).
    pub fn remove(&mut self, hash: &BlockHash) {
        if let Some(age) = self.by_hash.remove(hash) {
            self.by_age.remove(&age);
        }
    }

    /// Current accounting.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.by_hash.len(),
        }
    }
}

#[derive(Debug, Clone)]
struct StoredBlock {
    data: Vec<u8>,
    refcount: u64,
}

/// An in-memory content-addressed block store: SHA-256 keyed,
/// refcounted, with a [`BoundedIndex`] in front of the authoritative
/// map.
#[derive(Debug, Clone)]
pub struct MemoryBlockStore {
    blocks: BTreeMap<BlockHash, StoredBlock>,
    index: BoundedIndex,
}

impl MemoryBlockStore {
    /// A store whose dedup index holds at most `index_capacity` hashes.
    #[must_use]
    pub fn new(index_capacity: usize) -> Self {
        MemoryBlockStore {
            blocks: BTreeMap::new(),
            index: BoundedIndex::new(index_capacity),
        }
    }

    /// Stores `data` (or bumps its refcount if already present),
    /// returning its address and whether the bytes were new.
    pub fn put(&mut self, data: &[u8]) -> (BlockHash, bool) {
        let hash = BlockHash::of(data);
        self.index.lookup(&hash);
        self.index.record(&hash);
        if let Some(block) = self.blocks.get_mut(&hash) {
            block.refcount += 1;
            return (hash, false);
        }
        self.blocks.insert(
            hash,
            StoredBlock {
                data: data.to_vec(),
                refcount: 1,
            },
        );
        (hash, true)
    }

    /// The block's bytes, if present.
    #[must_use]
    pub fn get(&self, hash: &BlockHash) -> Option<&[u8]> {
        self.blocks.get(hash).map(|b| b.data.as_slice())
    }

    /// The block's current reference count (0 if absent).
    #[must_use]
    pub fn refcount(&self, hash: &BlockHash) -> u64 {
        self.blocks.get(hash).map_or(0, |b| b.refcount)
    }

    /// Drops one reference; the bytes are deleted when the count hits
    /// zero. Returns the remaining count, or `None` if the block was
    /// not present.
    pub fn release(&mut self, hash: &BlockHash) -> Option<u64> {
        let block = self.blocks.get_mut(hash)?;
        block.refcount -= 1;
        if block.refcount == 0 {
            self.blocks.remove(hash);
            self.index.remove(hash);
            return Some(0);
        }
        Some(block.refcount)
    }

    /// Number of distinct blocks resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no blocks are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total bytes of distinct block payloads (the dedup'd size).
    #[must_use]
    pub fn unique_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.data.len() as u64).sum()
    }

    /// The dedup index's accounting.
    #[must_use]
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_dedups_and_refcounts() {
        let mut s = MemoryBlockStore::new(16);
        let (h1, new1) = s.put(b"block one");
        let (h2, new2) = s.put(b"block one");
        assert_eq!(h1, h2);
        assert!(new1);
        assert!(!new2);
        assert_eq!(s.refcount(&h1), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.unique_bytes(), 9);
    }

    #[test]
    fn release_deletes_at_zero() {
        let mut s = MemoryBlockStore::new(16);
        let (h, _) = s.put(b"x");
        s.put(b"x");
        assert_eq!(s.release(&h), Some(1));
        assert_eq!(s.release(&h), Some(0));
        assert!(s.get(&h).is_none());
        assert_eq!(s.release(&h), None);
        assert!(s.is_empty());
    }

    #[test]
    fn bounded_index_evicts_lru_but_store_stays_correct() {
        let mut s = MemoryBlockStore::new(2);
        let (ha, _) = s.put(b"a");
        s.put(b"b");
        s.put(b"c"); // evicts "a" from the index
        let stats = s.index_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // The index forgot "a"; the authoritative map did not.
        let (ha2, new) = s.put(b"a");
        assert_eq!(ha, ha2);
        assert!(!new, "authoritative map must still dedup evicted hashes");
        assert_eq!(s.refcount(&ha), 2);
    }

    #[test]
    fn index_hit_miss_accounting() {
        let mut idx = BoundedIndex::new(2);
        let h = BlockHash::of(b"h");
        assert!(!idx.lookup(&h));
        idx.record(&h);
        assert!(idx.lookup(&h));
        let stats = idx.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_refresh_changes_eviction_order() {
        let mut idx = BoundedIndex::new(2);
        let a = BlockHash::of(b"a");
        let b = BlockHash::of(b"b");
        let c = BlockHash::of(b"c");
        idx.record(&a);
        idx.record(&b);
        idx.lookup(&a); // refresh a; b is now oldest
        idx.record(&c); // evicts b
        assert!(idx.lookup(&a));
        assert!(!idx.lookup(&b));
        assert!(idx.lookup(&c));
    }

    #[test]
    fn zero_capacity_index_is_inert() {
        let mut idx = BoundedIndex::new(0);
        let h = BlockHash::of(b"h");
        idx.record(&h);
        assert!(!idx.lookup(&h));
        assert_eq!(idx.stats().entries, 0);
    }
}

//! Merkle block trees whose interior nodes are themselves blocks.
//!
//! A dedup'd object is a sequence of leaf block hashes. Storing that
//! sequence *as data* — interior nodes are byte blobs in the same
//! content-addressed store as the leaves — means a single 32-byte root
//! hash recovers and authenticates everything below it: fetch the root
//! block, verify it hashes to the root, decode the child list, recurse.
//! There is no separate index to lose; the index is just blocks.
//!
//! # Node format
//!
//! ```text
//! "AEONTRE1"  [u8 level]  [u32 BE child count]  child hashes (32 B each)
//! ```
//!
//! Level 1 nodes list leaf (data) blocks; level `l > 1` nodes list
//! level `l-1` nodes. The root is always an interior node — even a
//! single-leaf (or zero-leaf) object gets a level-1 root — so a root
//! hash is unambiguously "fetch and decode me", never raw data.
//! Building is deterministic: same leaves and fanout, same node bytes,
//! same root, on every platform.

use crate::BlockHash;

/// Magic prefix of every serialized tree node.
pub const NODE_MAGIC: [u8; 8] = *b"AEONTRE1";

/// Errors from decoding or walking a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A referenced block could not be fetched.
    Missing(BlockHash),
    /// A fetched block's bytes do not hash to its address, or a child's
    /// level does not match its parent's expectation.
    HashMismatch(BlockHash),
    /// A node's bytes do not parse as a tree node.
    Malformed(&'static str),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Missing(h) => write!(f, "tree block {h} is missing"),
            TreeError::HashMismatch(h) => write!(f, "tree block {h} fails verification"),
            TreeError::Malformed(why) => write!(f, "malformed tree node: {why}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A decoded interior node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// 1 = children are data blocks; `l > 1` = children are level
    /// `l - 1` nodes.
    pub level: u8,
    /// Child block hashes, in order.
    pub children: Vec<BlockHash>,
}

/// The result of [`build_tree`]: the root hash plus every interior
/// node's `(hash, serialized bytes)`, bottom level first, root last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeBuild {
    /// Hash of the root node (always an interior node).
    pub root: BlockHash,
    /// Every interior node to store, `(content hash, node bytes)`.
    pub nodes: Vec<(BlockHash, Vec<u8>)>,
}

fn encode_node(level: u8, children: &[BlockHash]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(NODE_MAGIC.len() + 1 + 4 + 32 * children.len());
    bytes.extend_from_slice(&NODE_MAGIC);
    bytes.push(level);
    bytes.extend_from_slice(&(children.len() as u32).to_be_bytes());
    for child in children {
        bytes.extend_from_slice(child.as_bytes());
    }
    bytes
}

/// Builds the Merkle tree over `leaves` with the given fanout,
/// returning every interior node as a storable block. Deterministic in
/// `(leaves, fanout)`. Zero leaves produce a single empty level-1 root
/// (the canonical empty object).
///
/// # Panics
///
/// Panics if `fanout < 2` or the tree exceeds 255 levels (unreachable
/// for any input that fits in memory).
#[must_use]
pub fn build_tree(leaves: &[BlockHash], fanout: usize) -> TreeBuild {
    assert!(fanout >= 2, "tree fanout must be at least 2");
    let mut nodes: Vec<(BlockHash, Vec<u8>)> = Vec::new();
    let mut level = 1u8;
    let mut current: Vec<BlockHash> = leaves.to_vec();
    loop {
        let mut next = Vec::with_capacity(current.len().div_ceil(fanout).max(1));
        // `chunks` yields nothing for an empty slice; the empty object
        // still needs its canonical zero-child root.
        let groups: Vec<&[BlockHash]> = if current.is_empty() {
            vec![&[]]
        } else {
            current.chunks(fanout).collect()
        };
        for group in groups {
            let bytes = encode_node(level, group);
            let hash = BlockHash::of(&bytes);
            nodes.push((hash, bytes));
            next.push(hash);
        }
        if next.len() == 1 {
            return TreeBuild {
                root: next[0],
                nodes,
            };
        }
        current = next;
        level = level.checked_add(1).expect("tree deeper than 255 levels");
    }
}

/// Decodes a serialized tree node.
///
/// # Errors
///
/// Returns [`TreeError::Malformed`] when the magic, level, count, or
/// length do not add up.
pub fn decode_node(bytes: &[u8]) -> Result<TreeNode, TreeError> {
    if bytes.len() < NODE_MAGIC.len() + 1 + 4 {
        return Err(TreeError::Malformed("node shorter than its header"));
    }
    if bytes[..8] != NODE_MAGIC {
        return Err(TreeError::Malformed("bad node magic"));
    }
    let level = bytes[8];
    if level == 0 {
        return Err(TreeError::Malformed("interior node claims level 0"));
    }
    let count = u32::from_be_bytes(bytes[9..13].try_into().expect("4-byte slice")) as usize;
    let body = &bytes[13..];
    if body.len() != count * 32 {
        return Err(TreeError::Malformed("child list length mismatch"));
    }
    let children = body
        .chunks_exact(32)
        .map(|c| BlockHash::from_bytes(c.try_into().expect("32-byte slice")))
        .collect();
    Ok(TreeNode { level, children })
}

/// Walks the tree from `root`, fetching interior node bytes through
/// `fetch`, verifying **every** node hashes to its address and sits at
/// the level its parent claims, and returns the leaf hashes in order.
/// Leaves themselves are not fetched — verifying leaf *bytes* is the
/// caller's job when it reads them.
///
/// # Errors
///
/// [`TreeError::Missing`] when `fetch` returns `None`,
/// [`TreeError::HashMismatch`] when bytes or levels fail verification,
/// [`TreeError::Malformed`] for undecodable nodes.
pub fn collect_leaves<F>(root: &BlockHash, mut fetch: F) -> Result<Vec<BlockHash>, TreeError>
where
    F: FnMut(&BlockHash) -> Option<Vec<u8>>,
{
    let mut leaves = Vec::new();
    // (hash, expected level); None = root, any interior level accepted.
    let mut stack: Vec<(BlockHash, Option<u8>)> = vec![(*root, None)];
    while let Some((hash, expect)) = stack.pop() {
        if expect == Some(0) {
            leaves.push(hash);
            continue;
        }
        let bytes = fetch(&hash).ok_or(TreeError::Missing(hash))?;
        if BlockHash::of(&bytes) != hash {
            return Err(TreeError::HashMismatch(hash));
        }
        let node = decode_node(&bytes)?;
        if let Some(level) = expect {
            if node.level != level {
                return Err(TreeError::HashMismatch(hash));
            }
        }
        // Depth-first, children pushed in reverse so leaves pop out in
        // left-to-right order.
        for child in node.children.iter().rev() {
            stack.push((*child, Some(node.level - 1)));
        }
    }
    Ok(leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn leaf(i: u8) -> BlockHash {
        BlockHash::of(&[i])
    }

    fn store_of(build: &TreeBuild) -> BTreeMap<BlockHash, Vec<u8>> {
        build.nodes.iter().cloned().collect()
    }

    #[test]
    fn single_level_tree_roundtrips() {
        let leaves: Vec<BlockHash> = (0..3).map(leaf).collect();
        let build = build_tree(&leaves, 4);
        assert_eq!(build.nodes.len(), 1);
        let store = store_of(&build);
        let got = collect_leaves(&build.root, |h| store.get(h).cloned()).unwrap();
        assert_eq!(got, leaves);
    }

    #[test]
    fn multi_level_tree_roundtrips_in_order() {
        let leaves: Vec<BlockHash> = (0..25).map(leaf).collect();
        let build = build_tree(&leaves, 4);
        // 25 leaves / fanout 4: 7 level-1 nodes, 2 level-2, 1 root.
        assert_eq!(build.nodes.len(), 10);
        let store = store_of(&build);
        let got = collect_leaves(&build.root, |h| store.get(h).cloned()).unwrap();
        assert_eq!(got, leaves);
    }

    #[test]
    fn empty_tree_has_canonical_root() {
        let build = build_tree(&[], 8);
        assert_eq!(build.nodes.len(), 1);
        let store = store_of(&build);
        let got = collect_leaves(&build.root, |h| store.get(h).cloned()).unwrap();
        assert!(got.is_empty());
        // Deterministic: same empty root every time.
        assert_eq!(build_tree(&[], 8).root, build.root);
    }

    #[test]
    fn build_is_deterministic_and_fanout_sensitive() {
        let leaves: Vec<BlockHash> = (0..40).map(leaf).collect();
        assert_eq!(build_tree(&leaves, 4), build_tree(&leaves, 4));
        assert_ne!(build_tree(&leaves, 4).root, build_tree(&leaves, 8).root);
    }

    #[test]
    fn missing_node_is_typed() {
        let leaves: Vec<BlockHash> = (0..25).map(leaf).collect();
        let build = build_tree(&leaves, 4);
        let mut store = store_of(&build);
        let victim = build.nodes[0].0;
        store.remove(&victim);
        assert_eq!(
            collect_leaves(&build.root, |h| store.get(h).cloned()),
            Err(TreeError::Missing(victim))
        );
    }

    #[test]
    fn tampered_node_is_a_hash_mismatch() {
        let leaves: Vec<BlockHash> = (0..25).map(leaf).collect();
        let build = build_tree(&leaves, 4);
        let mut store = store_of(&build);
        let victim = build.nodes[0].0;
        let mut bytes = store[&victim].clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        store.insert(victim, bytes);
        assert_eq!(
            collect_leaves(&build.root, |h| store.get(h).cloned()),
            Err(TreeError::HashMismatch(victim))
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_node(b"short").is_err());
        assert!(decode_node(&[0u8; 13]).is_err());
        let mut bad_level = encode_node(1, &[]);
        bad_level[8] = 0;
        assert!(decode_node(&bad_level).is_err());
        let mut bad_len = encode_node(1, &[leaf(1)]);
        bad_len.pop();
        assert!(decode_node(&bad_len).is_err());
    }
}

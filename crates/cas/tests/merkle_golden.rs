//! Golden vectors for the content-addressed substrate: the Merkle root
//! of a fixed corpus is pinned byte-exact. Chunk boundaries, leaf
//! hashes, node serialization, and tree shape all feed the root, so one
//! 64-char constant guards the whole stack against accidental format
//! drift — across platforms, kernel tiers, and refactors. If this test
//! fails, the on-disk dedup format changed and every existing root hash
//! in the wild just became unreadable: do not update the constant
//! unless that is the intent.

use aeon_cas::{build_tree, collect_leaves, BlockHash, Chunker, ChunkerParams, MemoryBlockStore};
use aeon_crypto::{ChaChaDrbg, CryptoRng};
use std::collections::BTreeMap;

/// Pinned root of `golden_corpus()` under `golden_params()`, fanout 4.
const GOLDEN_ROOT: &str = "0745b8740e34ffb38583b8f2478c9134d9fa7b864abdc09185041a3d82bda7e6";

/// Pinned number of content-defined chunks of the corpus.
const GOLDEN_CHUNKS: usize = 34;

fn golden_params() -> ChunkerParams {
    ChunkerParams {
        min_size: 2 << 10,
        target_size: 8 << 10,
        max_size: 32 << 10,
        seed: 42,
    }
}

/// 200 KiB of seeded DRBG bytes: fixed forever, independent of platform
/// endianness and of everything else in the workspace.
fn golden_corpus() -> Vec<u8> {
    let mut rng = ChaChaDrbg::from_u64_seed(4242);
    let mut data = vec![0u8; 200 << 10];
    rng.fill_bytes(&mut data);
    data
}

/// Interior-node blocks produced alongside the tree: (hash, node bytes).
type NodeBlocks = Vec<(BlockHash, Vec<u8>)>;

fn corpus_root() -> (BlockHash, Vec<BlockHash>, NodeBlocks) {
    let data = golden_corpus();
    let chunker = Chunker::new(golden_params());
    let leaves: Vec<BlockHash> = chunker
        .chunks(&data)
        .iter()
        .map(|c| BlockHash::of(c))
        .collect();
    let build = build_tree(&leaves, 4);
    (build.root, leaves, build.nodes)
}

#[test]
fn golden_root_is_pinned() {
    let (root, leaves, _) = corpus_root();
    assert_eq!(
        leaves.len(),
        GOLDEN_CHUNKS,
        "chunk boundaries of the golden corpus moved"
    );
    assert_eq!(
        root.to_string(),
        GOLDEN_ROOT,
        "merkle root of the golden corpus moved — dedup format break"
    );
}

/// The whole object is recoverable from the root hash alone: store
/// every block (data + interior nodes) content-addressed, forget the
/// manifest, walk from the root, reassemble, compare byte-exact.
#[test]
fn corpus_round_trips_from_root_hash_alone() {
    let data = golden_corpus();
    let chunker = Chunker::new(golden_params());
    let mut store = MemoryBlockStore::new(1 << 12);
    let mut by_hash: BTreeMap<BlockHash, Vec<u8>> = BTreeMap::new();
    for chunk in chunker.chunks(&data) {
        let (h, _) = store.put(chunk);
        by_hash.insert(h, chunk.to_vec());
    }
    let leaves: Vec<BlockHash> = chunker
        .chunks(&data)
        .iter()
        .map(|c| BlockHash::of(c))
        .collect();
    let build = build_tree(&leaves, 4);
    for (_, bytes) in &build.nodes {
        store.put(bytes);
    }
    // Everything below starts from `build.root` and the store only.
    let walked = collect_leaves(&build.root, |h| store.get(h).map(<[u8]>::to_vec))
        .expect("tree walk succeeds");
    let mut reassembled = Vec::with_capacity(data.len());
    for leaf in &walked {
        let bytes = store.get(leaf).expect("leaf block present");
        assert_eq!(BlockHash::of(bytes), *leaf, "leaf failed verification");
        reassembled.extend_from_slice(bytes);
    }
    assert_eq!(reassembled, data);
    assert_eq!(walked, leaves, "walk must return leaves in ingest order");
}

/// The root is sensitive to every input bit: flipping one corpus byte
/// changes it (through new leaf hashes), as does a different fanout
/// (through tree shape).
#[test]
fn golden_root_is_input_and_shape_sensitive() {
    let (root, leaves, _) = corpus_root();
    let mut data = golden_corpus();
    data[12_345] ^= 1;
    let chunker = Chunker::new(golden_params());
    let flipped: Vec<BlockHash> = chunker
        .chunks(&data)
        .iter()
        .map(|c| BlockHash::of(c))
        .collect();
    assert_ne!(build_tree(&flipped, 4).root, root);
    assert_ne!(build_tree(&leaves, 8).root, root);
}

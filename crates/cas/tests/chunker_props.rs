//! Property battery for the content-defined chunker — the invariants
//! dedup correctness rests on. Boundaries must partition the input
//! within the size bounds, be a pure function of `(params, bytes)`, and
//! stay *locally* stable: an edit may only disturb cuts near itself
//! (prefix cuts are untouched, and once the edited stream shares a cut
//! with the original the suffixes coincide exactly). Without those
//! properties a one-byte edit would re-chunk — and re-store — the whole
//! object, and dedup would be fiction.

use aeon_cas::{Chunker, ChunkerParams};
use aeon_crypto::{ChaChaDrbg, CryptoRng};
use proptest::prelude::*;

fn small_params(seed: u64) -> ChunkerParams {
    ChunkerParams {
        min_size: 64,
        target_size: 256,
        max_size: 1024,
        seed,
    }
}

fn check_partition(params: &ChunkerParams, data: &[u8], cuts: &[usize]) {
    if data.is_empty() {
        assert!(cuts.is_empty());
        return;
    }
    assert_eq!(*cuts.last().unwrap(), data.len(), "last cut ends the data");
    let mut prev = 0;
    for (i, &end) in cuts.iter().enumerate() {
        assert!(end > prev, "cuts strictly ascend");
        let len = end - prev;
        assert!(len <= params.max_size, "chunk {i} over max: {len}");
        if i + 1 < cuts.len() {
            assert!(
                len >= params.min_size,
                "interior chunk {i} under min: {len}"
            );
        }
        prev = end;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Boundaries partition the input and every chunk respects
    /// `[min, max]` (the final chunk may run short).
    #[test]
    fn bounds_invariants(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        seed in any::<u64>(),
    ) {
        let params = small_params(seed);
        let c = Chunker::new(params);
        let cuts = c.boundaries(&data);
        check_partition(&params, &data, &cuts);
        let total: usize = c.chunks(&data).iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, data.len());
    }

    /// Chunking is a pure function: a freshly built chunker with the
    /// same params cuts the same data identically, run after run.
    #[test]
    fn determinism_across_instances(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        seed in any::<u64>(),
    ) {
        let a = Chunker::new(small_params(seed)).boundaries(&data);
        let b = Chunker::new(small_params(seed)).boundaries(&data);
        prop_assert_eq!(a, b);
    }

    /// Concatenation stability: every *cut* boundary of `a` (all but
    /// its forced final endpoint) survives verbatim when more data is
    /// appended, with no extra cuts slipping in before them. This is
    /// what makes log-append workloads dedup their unchanged prefix.
    #[test]
    fn concatenation_preserves_prefix_cuts(
        a in prop::collection::vec(any::<u8>(), 1..4096),
        b in prop::collection::vec(any::<u8>(), 1..4096),
        seed in any::<u64>(),
    ) {
        let c = Chunker::new(small_params(seed));
        let ca = c.boundaries(&a);
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let cc = c.boundaries(&concat);
        // The final entry of `ca` is len(a): a real cut only if the
        // rule fired there, which we cannot tell from outside — so
        // compare the guaranteed-real prefix.
        let real = &ca[..ca.len() - 1];
        prop_assert!(cc.len() >= real.len());
        prop_assert_eq!(&cc[..real.len()], real);
    }

    /// Edit stability, both directions. A single-byte edit at `p`
    /// leaves every cut at offset <= p untouched (the chunker's state
    /// at byte i depends only on bytes before it); and as soon as the
    /// two streams share any cut past the edit, their remaining cuts
    /// are identical (cut state resets to (start, h=0) at every cut).
    #[test]
    fn single_byte_edit_disturbs_a_bounded_window(
        data in prop::collection::vec(any::<u8>(), 256..8192),
        pos in any::<u64>(),
        delta in 1..=255u8,
        seed in any::<u64>(),
    ) {
        let c = Chunker::new(small_params(seed));
        let p = pos as usize % data.len();
        let mut edited = data.clone();
        edited[p] = edited[p].wrapping_add(delta);
        let ca = c.boundaries(&data);
        let cb = c.boundaries(&edited);
        // Prefix: cuts at end offsets <= p were decided before the
        // edited byte was read.
        let pa: Vec<usize> = ca.iter().copied().filter(|&e| e <= p).collect();
        let pb: Vec<usize> = cb.iter().copied().filter(|&e| e <= p).collect();
        prop_assert_eq!(pa, pb, "cuts before the edit moved");
        // Suffix: after the first shared cut strictly past the edit,
        // the cut sequences must coincide exactly.
        let resync = ca
            .iter()
            .copied()
            .filter(|&e| e > p && e < data.len())
            .find(|e| cb.contains(e));
        if let Some(cut) = resync {
            let sa: Vec<usize> = ca.iter().copied().filter(|&e| e > cut).collect();
            let sb: Vec<usize> = cb.iter().copied().filter(|&e| e > cut).collect();
            prop_assert_eq!(sa, sb, "streams diverged after a shared cut at {}", cut);
        }
    }
}

/// On realistic (incompressible) data the edit window is not just
/// bounded in theory — re-synchronization actually happens, within a
/// few max-chunk spans of the edit. Deterministic seeds so this pins
/// behaviour rather than luck.
#[test]
fn edits_resync_quickly_on_random_data() {
    let params = small_params(7);
    let c = Chunker::new(params);
    let mut rng = ChaChaDrbg::from_u64_seed(99);
    let mut data = vec![0u8; 64 << 10];
    rng.fill_bytes(&mut data);
    for &p in &[1000usize, 20_000, 40_000, 60_000] {
        let mut edited = data.clone();
        edited[p] ^= 0x5a;
        let ca = c.boundaries(&data);
        let cb = c.boundaries(&edited);
        let resync = ca
            .iter()
            .copied()
            .filter(|&e| e > p)
            .find(|e| cb.binary_search(e).is_ok())
            .expect("streams must re-align after the edit");
        assert!(
            resync <= p + 4 * params.max_size,
            "resync at {resync} is too far past edit at {p}"
        );
        let sa: Vec<usize> = ca.iter().copied().filter(|&e| e >= resync).collect();
        let sb: Vec<usize> = cb.iter().copied().filter(|&e| e >= resync).collect();
        assert_eq!(sa, sb);
    }
}

/// Mean chunk size lands near the target on incompressible data: the
/// cut probability per byte past `min` is `2^-mask_bits`, so the mean
/// sits near `min + 2^mask_bits ≈ target`.
#[test]
fn mean_chunk_size_tracks_target() {
    for (min, target, max) in [(64usize, 256usize, 1024usize), (512, 2048, 8192)] {
        let params = ChunkerParams {
            min_size: min,
            target_size: target,
            max_size: max,
            seed: 3,
        };
        let c = Chunker::new(params);
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let mut data = vec![0u8; 1 << 20];
        rng.fill_bytes(&mut data);
        let cuts = c.boundaries(&data);
        let mean = data.len() as f64 / cuts.len() as f64;
        assert!(
            mean > target as f64 * 0.5 && mean < target as f64 * 1.6,
            "mean {mean:.0} strays from target {target} (params {params:?})"
        );
    }
}

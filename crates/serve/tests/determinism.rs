//! Determinism suite: one `(workload, seed, config)` triple names one
//! run, byte for byte.
//!
//! The engine's whole value as a measurement instrument rests on
//! replayability — a latency distribution only supports a claim about
//! `reserved_fraction` if re-running the experiment cannot produce a
//! different distribution. These tests pin that property directly:
//! identical seeds give byte-identical reports (histograms compared
//! with `==`, plus the chained event digest), different seeds diverge,
//! and the pipeline worker count — the one real-concurrency knob on the
//! data path — changes nothing.

use aeon_core::{Archive, ArchiveConfig, ObjectId, PipelineConfig, PolicyKind};
use aeon_crypto::{ChaChaDrbg, CryptoRng};
use aeon_serve::{
    serve, ArrivalProcess, BackgroundCampaign, BackgroundRepair, EngineConfig, RepairQueueOrder,
    ServeReport, TenantSpec, WorkloadSpec,
};
use aeon_store::clock::SimDuration;
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};
use proptest::prelude::*;

/// A small archive on a throughput-charged cluster: 4 nodes across two
/// sites, disk-class seeks scaled down so runs stay quick.
fn build_archive(workers: usize, objects: usize) -> (Archive, Vec<ObjectId>) {
    let profile = ThroughputProfile::new(SimDuration::from_secs_f64(0.002), 400e6, 300e6);
    let (cluster, _clock) = throughput_in_memory_cluster(&["east", "west"], 2, &profile);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 1 }).with_pipeline(
        PipelineConfig {
            chunk_size: 8 * 1024,
            workers,
        },
    );
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    let mut rng = ChaChaDrbg::from_u64_seed(0xA07);
    let catalog = (0..objects)
        .map(|i| {
            let mut payload = vec![0u8; 4096];
            rng.fill_bytes(&mut payload);
            archive
                .ingest(&payload, &format!("obj-{i}"))
                .expect("ingest")
        })
        .collect();
    (archive, catalog)
}

fn spec(seed: u64, total: usize) -> WorkloadSpec {
    WorkloadSpec::new(
        vec![
            TenantSpec::new("gold", 3.0).with_read_fraction(0.85),
            TenantSpec::new("bronze", 1.0)
                .with_read_fraction(0.6)
                .with_quota(40.0, 8.0),
        ],
        ArrivalProcess::Open {
            requests_per_sec: 50.0,
        },
    )
    .with_total_requests(total)
    .with_write_bytes(4096)
    .with_seed(seed)
}

fn run(workers: usize, seed: u64, config: &EngineConfig) -> ServeReport {
    let (mut archive, catalog) = build_archive(workers, 16);
    serve(&mut archive, &catalog, &spec(seed, 80), config).expect("serve")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed ⇒ byte-identical report: same event digest, same
    /// latency and queue-wait histograms, same counters — independent
    /// of the pipeline worker count.
    #[test]
    fn identical_seeds_replay_across_worker_counts(seed in 0u64..500, workers in 2usize..5) {
        let config = EngineConfig::default();
        let serial = run(1, seed, &config);
        let threaded = run(workers, seed, &config);
        prop_assert_eq!(&serial, &threaded);
        prop_assert!(serial.tenants.iter().any(|t| !t.latency.is_empty()));
    }

    /// Different seeds produce different event streams (the digest is
    /// actually sensitive to the schedule, not a constant).
    #[test]
    fn different_seeds_diverge(seed in 0u64..500) {
        let config = EngineConfig::default();
        let a = run(1, seed, &config);
        let b = run(1, seed + 1, &config);
        prop_assert_ne!(a.event_digest, b.event_digest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Determinism survives background-campaign interleaving: the
    /// hardest case, because the campaign and the workload contend for
    /// the same clock.
    #[test]
    fn campaign_runs_replay_identically(seed in 0u64..200, workers in 2usize..4) {
        let config = EngineConfig {
            background: Some(BackgroundCampaign {
                new_policy: PolicyKind::ErasureCoded { data: 2, parity: 2 },
                reserved_fraction: 0.5,
            }),
            ..EngineConfig::default()
        };
        let serial = run(1, seed, &config);
        let threaded = run(workers, seed, &config);
        prop_assert_eq!(&serial, &threaded);
        let progress = serial.campaign.expect("campaign configured");
        prop_assert_eq!(progress.objects_done, progress.objects_total);
        prop_assert!(progress.bytes_written > 0);
    }
}

/// A campaign stretches the foreground tail: p99 under a 0.25
/// reservation must not beat the baseline run of the same workload,
/// and the campaign must actually finish.
#[test]
fn campaign_interference_shows_up_in_the_tail() {
    let baseline = run(1, 42, &EngineConfig::default());
    let contended = run(
        1,
        42,
        &EngineConfig {
            background: Some(BackgroundCampaign {
                new_policy: PolicyKind::ErasureCoded { data: 2, parity: 2 },
                reserved_fraction: 0.25,
            }),
            ..EngineConfig::default()
        },
    );
    let (_, base_p99, _) = baseline.merged_latency().percentiles();
    let (_, cont_p99, _) = contended.merged_latency().percentiles();
    assert!(
        cont_p99 >= base_p99,
        "campaign contention cannot improve the tail: {:?} < {:?}",
        cont_p99,
        base_p99
    );
    let progress = contended.campaign.expect("campaign configured");
    assert_eq!(progress.objects_done, progress.objects_total);
}

/// A background repair sweep heals every degraded object in the gaps
/// the foreground load leaves open, replays byte-identically across
/// worker counts, and reports its progress through the same campaign
/// channel as re-encoding.
#[test]
fn background_repair_heals_fleet_behind_live_traffic() {
    let damaged = 4;
    let build = |workers: usize| {
        let (archive, catalog) = build_archive(workers, 12);
        // Knock one shard off every third object: margin-0 tickets.
        for id in catalog.iter().step_by(3) {
            let placement = archive.manifest(id).unwrap().placement;
            let node = archive.cluster().node(placement[1]).unwrap();
            node.delete(&aeon_store::node::ShardKey::new(id.as_str(), 1))
                .unwrap();
        }
        (archive, catalog)
    };
    let config = EngineConfig {
        repair: Some(BackgroundRepair {
            order: RepairQueueOrder::Priority,
            reserved_fraction: 0.4,
        }),
        ..EngineConfig::default()
    };
    let run_one = |workers: usize| {
        let (mut archive, catalog) = build(workers);
        assert_eq!(archive.scan_fleet().tickets.len(), damaged);
        let report = serve(&mut archive, &catalog, &spec(21, 80), &config).expect("serve");
        let scan = archive.scan_fleet();
        (report, scan.tickets.len(), scan.lost.len())
    };
    let (serial, tickets, lost) = run_one(1);
    let (threaded, ..) = run_one(3);
    assert_eq!(serial, threaded, "repair interleaving must replay");
    assert_eq!((tickets, lost), (0, 0), "every degraded object healed");
    let progress = serial.campaign.expect("repair configured");
    assert_eq!(progress.objects_done, damaged);
    assert_eq!(progress.objects_total, damaged);
    assert!(progress.bytes_written > 0);
    assert!(
        serial.tenants.iter().any(|t| t.completed > 0),
        "foreground traffic ran alongside the sweep"
    );
}

/// Configuring both background activities is rejected up front.
#[test]
fn two_background_activities_are_rejected() {
    let (mut archive, catalog) = build_archive(1, 4);
    let config = EngineConfig {
        background: Some(BackgroundCampaign {
            new_policy: PolicyKind::ErasureCoded { data: 2, parity: 2 },
            reserved_fraction: 0.25,
        }),
        repair: Some(BackgroundRepair {
            order: RepairQueueOrder::Fifo,
            reserved_fraction: 0.25,
        }),
        ..EngineConfig::default()
    };
    let err = serve(&mut archive, &catalog, &spec(1, 10), &config).unwrap_err();
    assert!(err.to_string().contains("at most one background activity"));
}

/// Closed-loop mode replays too, and issues exactly the requested
/// number of arrivals.
#[test]
fn closed_loop_replays_and_conserves_requests() {
    let make_spec = || {
        WorkloadSpec::new(
            vec![TenantSpec::new("solo", 1.0)],
            ArrivalProcess::Closed {
                clients_per_tenant: 4,
                think: SimDuration::from_secs_f64(0.05),
            },
        )
        .with_total_requests(60)
        .with_write_bytes(2048)
        .with_seed(9)
    };
    let config = EngineConfig::default();
    let (mut a1, c1) = build_archive(1, 8);
    let (mut a2, c2) = build_archive(3, 8);
    let r1 = serve(&mut a1, &c1, &make_spec(), &config).expect("serve");
    let r2 = serve(&mut a2, &c2, &make_spec(), &config).expect("serve");
    assert_eq!(r1, r2);
    let offered: u64 = r1.tenants.iter().map(|t| t.offered).sum();
    assert_eq!(offered, 60);
    let done: u64 = r1
        .tenants
        .iter()
        .map(|t| t.completed + t.failed + t.rejected)
        .sum();
    assert_eq!(done, 60);
}

/// Quotas bind: a throttled tenant sees rejections while an unthrottled
/// one does not, and rejected requests never reach the archive.
#[test]
fn token_bucket_rejections_are_counted() {
    let (mut archive, catalog) = build_archive(1, 8);
    let tight = WorkloadSpec::new(
        vec![
            TenantSpec::new("free", 1.0),
            TenantSpec::new("capped", 1.0).with_quota(2.0, 2.0),
        ],
        ArrivalProcess::Open {
            requests_per_sec: 200.0,
        },
    )
    .with_total_requests(120)
    .with_seed(77);
    let report = serve(&mut archive, &catalog, &tight, &EngineConfig::default()).expect("serve");
    let free = &report.tenants[0];
    let capped = &report.tenants[1];
    assert_eq!(free.rejected, 0, "unlimited quota never rejects");
    assert!(
        capped.rejected > 0,
        "2 req/s quota under ~100 req/s offered"
    );
    assert_eq!(capped.offered, capped.admitted + capped.rejected);
    assert_eq!(capped.admitted, capped.completed + capped.failed);
}

/// The hot cache absorbs the Zipf head: repeated runs over a skewed
/// read stream must report hits, and hits must not undercount bytes.
#[test]
fn hot_cache_reports_hits_under_skew() {
    let (mut archive, catalog) = build_archive(1, 8);
    let skewed = WorkloadSpec::new(
        vec![TenantSpec::new("reader", 1.0).with_read_fraction(1.0)],
        ArrivalProcess::Open {
            requests_per_sec: 40.0,
        },
    )
    .with_total_requests(100)
    .with_zipf_exponent(1.4)
    .with_seed(5);
    let report = serve(&mut archive, &catalog, &skewed, &EngineConfig::default()).expect("serve");
    assert!(report.cache.payload_hits > 0, "skewed reads must hit");
    assert!(report.cache.manifest_hits > 0);
    let reader = &report.tenants[0];
    assert_eq!(reader.bytes_read, reader.completed * 4096);
}

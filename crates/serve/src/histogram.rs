//! Deterministic log-bucketed latency histograms.
//!
//! The serving layer reports latency as distributions, not scalars —
//! Baker et al.'s point about long-term storage reliability applies
//! equally to serving: means hide exactly the tail behaviour that
//! reserved-capacity arithmetic is supposed to protect. The histogram
//! here is integer-only and fixed-shape, so two runs with the same seed
//! produce **byte-identical** bucket vectors (the determinism suite
//! compares them with `==`), while still resolving p50/p99/p999 to
//! ~6% relative error across the full `u64` nanosecond range.
//!
//! Shape: values below 16 ns get exact buckets; above that, each power
//! of two is split into 16 sub-buckets (an HDR-histogram with 4
//! significant bits), giving 976 buckets total.

use aeon_store::clock::SimDuration;

/// Exact buckets below this value; log-spaced sub-buckets above.
const LINEAR_LIMIT: u64 = 16;
/// Sub-buckets per power of two.
const SUB_BUCKETS: usize = 16;
/// Total bucket count: 16 exact + 16 per octave for octaves 4..=63.
const BUCKETS: usize = LINEAR_LIMIT as usize + (64 - 4) * SUB_BUCKETS;

/// Maps a nanosecond value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 4)) & 0xF) as usize;
    LINEAR_LIMIT as usize + (msb - 4) * SUB_BUCKETS + sub
}

/// The largest value a bucket holds (its inclusive upper edge), used as
/// the reported quantile value.
fn bucket_upper(index: usize) -> u64 {
    if index < LINEAR_LIMIT as usize {
        return index as u64;
    }
    let rel = index - LINEAR_LIMIT as usize;
    let octave = 4 + rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u128;
    let upper = ((LINEAR_LIMIT as u128 + sub + 1) << (octave - 4)) - 1;
    upper.min(u64::MAX as u128) as u64
}

/// A fixed-shape latency histogram over virtual nanoseconds.
///
/// Equality compares the full bucket vector, so `a == b` means the two
/// runs produced *identical* latency distributions, not merely close
/// quantiles — the property the determinism suite pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimDuration) {
        let ns = sample.as_nanos();
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The largest recorded sample (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Mean of the recorded samples (exact sum over exact count).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper edge of the bucket
    /// containing the target rank; `ZERO` on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_nanos(bucket_upper(i));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// p50 / p99 / p999, the serving layer's standard report row.
    #[must_use]
    pub fn percentiles(&self) -> (SimDuration, SimDuration, SimDuration) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// The raw bucket counts (for digests and artifact emission).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        // Every boundary value maps into a bucket whose upper edge is
        // >= the value, and indices are monotone in the value.
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= prev, "monotone indices");
            assert!(bucket_upper(i) >= v, "upper edge covers the value");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_nanos(i * 1000));
        }
        let (p50, p99, p999) = h.percentiles();
        assert!(p50 <= p99 && p99 <= p999);
        // ~6% bucket resolution around the true p50 of 500_000 ns.
        let p50 = p50.as_nanos() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.07, "p50 = {p50}");
        assert_eq!(h.total(), 1000);
        assert_eq!(h.max().as_nanos(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn identical_sample_streams_compare_equal() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..500u64 {
            a.record(SimDuration::from_nanos(i * i));
            b.record(SimDuration::from_nanos(i * i));
        }
        assert_eq!(a, b);
        b.record(SimDuration::ZERO);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..100u64 {
            let d = SimDuration::from_nanos(i * 37);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            all.record(d);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}

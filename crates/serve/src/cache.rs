//! A bounded, deterministic hot cache for manifests and decoded
//! payloads.
//!
//! Archive reads are expensive on purpose — every retrieve pays seek
//! and transfer charges on the virtual clock — so the serving layer
//! keeps a small hot set in front of the cluster: recently decoded
//! payloads (bounded by bytes) and recently resolved manifests (bounded
//! by slot count). A hit is charged a fixed overhead plus a DRAM-class
//! transfer instead of the full storage path; a manifest miss adds a
//! lookup penalty on top of the storage read.
//!
//! Eviction is LRU over a logical access tick rather than wall time,
//! and the index is `BTreeMap`-based, so the eviction order — and hence
//! every downstream latency sample — is identical across runs and
//! independent of hash seeding.

use std::collections::BTreeMap;

use aeon_core::ObjectId;
use aeon_store::clock::SimDuration;

/// Sizing and cost model for the hot cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Payload capacity in bytes (`0` disables payload caching).
    pub capacity_bytes: u64,
    /// Manifest entries retained (`0` disables manifest caching).
    pub manifest_slots: usize,
    /// Fixed per-hit overhead (index probe, request handling).
    pub hit_overhead: SimDuration,
    /// Transfer rate for serving a hit out of memory, bytes/second.
    pub hit_bytes_per_sec: f64,
    /// Extra charge on a manifest miss (catalog lookup before the
    /// storage read can even start).
    pub manifest_miss_penalty: SimDuration,
}

impl Default for CacheConfig {
    /// 64 MiB of payload, 1024 manifests, 20 µs hit overhead at
    /// 8 GiB/s, 100 µs manifest-miss penalty.
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            manifest_slots: 1024,
            hit_overhead: SimDuration::from_secs_f64(20e-6),
            hit_bytes_per_sec: 8.0 * 1024.0 * 1024.0 * 1024.0,
            manifest_miss_penalty: SimDuration::from_secs_f64(100e-6),
        }
    }
}

/// Hit/miss counters, reported per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Payload reads served from cache.
    pub payload_hits: u64,
    /// Payload reads that went to storage.
    pub payload_misses: u64,
    /// Manifest lookups served from cache.
    pub manifest_hits: u64,
    /// Manifest lookups that paid the catalog penalty.
    pub manifest_misses: u64,
    /// Payload entries evicted to make room.
    pub evictions: u64,
}

/// The hot cache: LRU payload bytes plus an LRU manifest id set.
#[derive(Debug)]
pub struct HotCache {
    config: CacheConfig,
    // ObjectId -> (last-access tick, payload length). Recency order is
    // maintained in the mirror map below.
    payloads: BTreeMap<ObjectId, (u64, u64)>,
    payload_lru: BTreeMap<u64, ObjectId>,
    payload_bytes: u64,
    manifests: BTreeMap<ObjectId, u64>,
    manifest_lru: BTreeMap<u64, ObjectId>,
    tick: u64,
    stats: CacheStats,
}

impl HotCache {
    /// An empty cache with the given configuration.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        HotCache {
            config,
            payloads: BTreeMap::new(),
            payload_lru: BTreeMap::new(),
            payload_bytes: 0,
            manifests: BTreeMap::new(),
            manifest_lru: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The virtual cost of serving `bytes` out of the hot set.
    #[must_use]
    pub fn hit_charge(&self, bytes: u64) -> SimDuration {
        let rate = self.config.hit_bytes_per_sec;
        let transfer = if rate.is_finite() && rate > 0.0 {
            SimDuration::from_secs_f64(bytes as f64 / rate)
        } else {
            SimDuration::ZERO
        };
        self.config.hit_overhead + transfer
    }

    /// The extra charge a manifest miss pays before the storage read.
    #[must_use]
    pub fn manifest_miss_penalty(&self) -> SimDuration {
        self.config.manifest_miss_penalty
    }

    /// Looks up a payload, refreshing recency on hit. Returns the
    /// cached length, which is all the cost model needs.
    pub fn lookup_payload(&mut self, id: &ObjectId) -> Option<u64> {
        let tick = self.next_tick();
        match self.payloads.get_mut(id) {
            Some((last, len)) => {
                let len = *len;
                self.payload_lru.remove(last);
                *last = tick;
                self.payload_lru.insert(tick, id.clone());
                self.stats.payload_hits += 1;
                Some(len)
            }
            None => {
                self.stats.payload_misses += 1;
                None
            }
        }
    }

    /// Admits a decoded payload, evicting LRU entries to fit. Payloads
    /// larger than the whole cache are not admitted.
    pub fn admit_payload(&mut self, id: &ObjectId, len: u64) {
        if len > self.config.capacity_bytes {
            return;
        }
        if let Some((last, old_len)) = self.payloads.remove(id) {
            self.payload_lru.remove(&last);
            self.payload_bytes -= old_len;
        }
        while self.payload_bytes + len > self.config.capacity_bytes {
            let Some((&oldest, _)) = self.payload_lru.iter().next() else {
                break;
            };
            let victim = self.payload_lru.remove(&oldest).expect("key just observed");
            let (_, victim_len) = self.payloads.remove(&victim).expect("maps mirror");
            self.payload_bytes -= victim_len;
            self.stats.evictions += 1;
        }
        let tick = self.next_tick();
        self.payloads.insert(id.clone(), (tick, len));
        self.payload_lru.insert(tick, id.clone());
        self.payload_bytes += len;
    }

    /// Drops a payload (after a write invalidates it).
    pub fn invalidate_payload(&mut self, id: &ObjectId) {
        if let Some((last, len)) = self.payloads.remove(id) {
            self.payload_lru.remove(&last);
            self.payload_bytes -= len;
        }
    }

    /// Records a manifest lookup, returning whether it hit, and admits
    /// the id on miss (evicting the LRU manifest if full).
    pub fn touch_manifest(&mut self, id: &ObjectId) -> bool {
        let tick = self.next_tick();
        if let Some(last) = self.manifests.get_mut(id) {
            self.manifest_lru.remove(last);
            *last = tick;
            self.manifest_lru.insert(tick, id.clone());
            self.stats.manifest_hits += 1;
            return true;
        }
        self.stats.manifest_misses += 1;
        if self.config.manifest_slots == 0 {
            return false;
        }
        if self.manifests.len() >= self.config.manifest_slots {
            if let Some((&oldest, _)) = self.manifest_lru.iter().next() {
                let victim = self
                    .manifest_lru
                    .remove(&oldest)
                    .expect("key just observed");
                self.manifests.remove(&victim);
            }
        }
        self.manifests.insert(id.clone(), tick);
        self.manifest_lru.insert(tick, id.clone());
        false
    }

    /// Bytes currently cached.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Hit/miss counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_core::{Archive, ArchiveConfig, PolicyKind};

    fn ids(n: usize) -> Vec<ObjectId> {
        let mut archive =
            Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication { copies: 2 }))
                .expect("archive");
        (0..n)
            .map(|i| {
                archive
                    .ingest(format!("payload {i}").as_bytes(), &format!("o{i}"))
                    .expect("ingest")
            })
            .collect()
    }

    fn tiny_cache(capacity: u64, slots: usize) -> HotCache {
        HotCache::new(CacheConfig {
            capacity_bytes: capacity,
            manifest_slots: slots,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn payload_lru_evicts_oldest_first() {
        let ids = ids(3);
        let mut c = tiny_cache(2048, 8);
        c.admit_payload(&ids[0], 1024);
        c.admit_payload(&ids[1], 1024);
        // Touch 0 so 1 becomes the LRU victim.
        assert_eq!(c.lookup_payload(&ids[0]), Some(1024));
        c.admit_payload(&ids[2], 1024);
        assert_eq!(c.lookup_payload(&ids[0]), Some(1024));
        assert_eq!(c.lookup_payload(&ids[1]), None, "LRU entry evicted");
        assert_eq!(c.lookup_payload(&ids[2]), Some(1024));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.payload_bytes(), 2048);
    }

    #[test]
    fn oversized_payloads_are_not_admitted() {
        let ids = ids(1);
        let mut c = tiny_cache(512, 8);
        c.admit_payload(&ids[0], 4096);
        assert_eq!(c.lookup_payload(&ids[0]), None);
        assert_eq!(c.payload_bytes(), 0);
    }

    #[test]
    fn invalidation_frees_bytes() {
        let ids = ids(1);
        let mut c = tiny_cache(2048, 8);
        c.admit_payload(&ids[0], 1000);
        c.invalidate_payload(&ids[0]);
        assert_eq!(c.payload_bytes(), 0);
        assert_eq!(c.lookup_payload(&ids[0]), None);
    }

    #[test]
    fn manifest_slots_are_bounded() {
        let ids = ids(3);
        let mut c = tiny_cache(0, 2);
        assert!(!c.touch_manifest(&ids[0]));
        assert!(!c.touch_manifest(&ids[1]));
        assert!(c.touch_manifest(&ids[0]), "second lookup hits");
        assert!(!c.touch_manifest(&ids[2]), "fills the last slot");
        // ids[1] was the LRU manifest and got evicted.
        assert!(!c.touch_manifest(&ids[1]));
        let s = c.stats();
        assert_eq!(s.manifest_hits, 1);
        assert_eq!(s.manifest_misses, 4);
    }

    #[test]
    fn hit_charge_scales_with_bytes() {
        let c = tiny_cache(0, 0);
        assert!(c.hit_charge(1 << 20) > c.hit_charge(0));
        assert_eq!(c.hit_charge(0), CacheConfig::default().hit_overhead);
    }
}

//! Workload description and deterministic samplers.
//!
//! A workload is a tenant mix plus an arrival process. Everything is
//! sampled from a seeded DRBG, so a `(spec, seed)` pair names exactly
//! one request stream: the same tenants issue the same operations
//! against the same objects at the same virtual instants, every run.
//!
//! * **Open loop** — arrivals are a Poisson process (exponential
//!   inter-arrival times) at a configured aggregate rate, independent
//!   of completions. This is the mode that exposes queueing collapse:
//!   offered load keeps arriving whether or not the archive keeps up.
//! * **Closed loop** — a fixed population of clients per tenant, each
//!   issuing its next request a think-time after the previous one
//!   completes (or is rejected). Offered load self-throttles, which is
//!   how interactive users actually behave.
//!
//! Object popularity is Zipfian: rank `i` (0-based) carries weight
//! `1/(i+1)^s`, the standard model for archive read skew, making a
//! small hot set cacheable while the long tail still sees traffic.

use aeon_crypto::CryptoRng;
use aeon_store::clock::SimDuration;

/// One tenant's share of the workload and its admission quota.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (also the report key).
    pub name: String,
    /// Relative share of arrivals (open loop) and of the fair-queue
    /// quantum. Need not be normalized.
    pub weight: f64,
    /// Fraction of this tenant's requests that are reads (`0..=1`);
    /// the rest are writes of [`WorkloadSpec::write_bytes`].
    pub read_fraction: f64,
    /// Token-bucket refill rate, requests per virtual second.
    pub quota_per_sec: f64,
    /// Token-bucket burst depth, requests.
    pub quota_burst: f64,
}

impl TenantSpec {
    /// A tenant with the given name and weight, reading 90% of the
    /// time, with an effectively unlimited quota.
    #[must_use]
    pub fn new(name: &str, weight: f64) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight,
            read_fraction: 0.9,
            quota_per_sec: 1e9,
            quota_burst: 1e9,
        }
    }

    /// Sets the read fraction.
    #[must_use]
    pub fn with_read_fraction(mut self, f: f64) -> Self {
        self.read_fraction = f;
        self
    }

    /// Sets the token-bucket quota (rate per virtual second + burst).
    #[must_use]
    pub fn with_quota(mut self, per_sec: f64, burst: f64) -> Self {
        self.quota_per_sec = per_sec;
        self.quota_burst = burst;
        self
    }
}

/// How requests arrive.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Poisson arrivals at an aggregate rate, independent of
    /// completions.
    Open {
        /// Aggregate arrival rate across all tenants, requests per
        /// virtual second.
        requests_per_sec: f64,
    },
    /// A fixed client population per tenant; each client issues its
    /// next request `think` after the previous one finishes.
    Closed {
        /// Concurrent clients per tenant.
        clients_per_tenant: usize,
        /// Virtual think time between a completion and the client's
        /// next request.
        think: SimDuration,
    },
}

/// A complete workload description. `(spec, seed)` determines the
/// entire request stream.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The tenant mix.
    pub tenants: Vec<TenantSpec>,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Total requests to issue (across all tenants) before the run
    /// ends.
    pub total_requests: usize,
    /// Zipf exponent `s` for object popularity (`0` = uniform).
    pub zipf_exponent: f64,
    /// Payload size of write requests, bytes.
    pub write_bytes: usize,
    /// DRBG seed for every sampling decision in the run.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A workload over the given tenants and arrival process, with
    /// 10 000 requests, Zipf `s = 1.1`, and 32 KiB writes at seed 1.
    #[must_use]
    pub fn new(tenants: Vec<TenantSpec>, arrivals: ArrivalProcess) -> Self {
        WorkloadSpec {
            tenants,
            arrivals,
            total_requests: 10_000,
            zipf_exponent: 1.1,
            write_bytes: 32 * 1024,
            seed: 1,
        }
    }

    /// Sets the total request count.
    #[must_use]
    pub fn with_total_requests(mut self, total: usize) -> Self {
        self.total_requests = total;
        self
    }

    /// Sets the DRBG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Zipf exponent.
    #[must_use]
    pub fn with_zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Sets the write payload size.
    #[must_use]
    pub fn with_write_bytes(mut self, bytes: usize) -> Self {
        self.write_bytes = bytes;
        self
    }
}

/// Draws a uniform f64 in `[0, 1)` from 53 bits of DRBG output.
pub(crate) fn unit_f64<R: CryptoRng + ?Sized>(rng: &mut R) -> f64 {
    let mut b = [0u8; 8];
    rng.fill_bytes(&mut b);
    (u64::from_le_bytes(b) >> 11) as f64 / (1u64 << 53) as f64
}

/// Draws an exponential inter-arrival gap for the given rate.
pub(crate) fn exp_gap<R: CryptoRng + ?Sized>(rng: &mut R, per_sec: f64) -> SimDuration {
    let u = unit_f64(rng);
    // 1 - u ∈ (0, 1], so the log is finite and non-positive.
    SimDuration::from_secs_f64(-(1.0 - u).ln() / per_sec)
}

/// Inverse-CDF sampler over Zipf-distributed ranks.
///
/// Build cost is `O(n)`; each sample is one uniform draw plus a binary
/// search. Ranks are 0-based: rank 0 is the most popular object.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "cannot sample from an empty catalog");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: CryptoRng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = unit_f64(rng);
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}

/// Weighted choice over tenant indices: normalized cumulative weights,
/// one uniform draw per pick.
#[derive(Debug, Clone)]
pub(crate) struct WeightedPick {
    cumulative: Vec<f64>,
}

impl WeightedPick {
    pub(crate) fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "at least one tenant is required");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w > 0.0, "tenant weights must be positive");
            acc += w;
            cumulative.push(acc);
        }
        for c in &mut cumulative {
            *c /= acc;
        }
        WeightedPick { cumulative }
    }

    pub(crate) fn sample<R: CryptoRng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = unit_f64(rng);
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.1);
        let mut rng = ChaChaDrbg::from_u64_seed(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Every draw lands in range (partition_point clamp).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = ChaChaDrbg::from_u64_seed(9);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "counts {counts:?}");
        }
    }

    #[test]
    fn samplers_replay_per_seed() {
        let z = ZipfSampler::new(64, 1.2);
        let draw = |seed| {
            let mut rng = ChaChaDrbg::from_u64_seed(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn exponential_gaps_are_positive_and_seeded() {
        let mut rng = ChaChaDrbg::from_u64_seed(5);
        let mut total = SimDuration::ZERO;
        for _ in 0..1000 {
            total += exp_gap(&mut rng, 100.0);
        }
        // Mean gap 10 ms; 1000 draws ≈ 10 s within loose bounds.
        let secs = total.as_secs_f64();
        assert!((5.0..20.0).contains(&secs), "total {secs}");
    }

    #[test]
    fn weighted_pick_tracks_weights() {
        let w = WeightedPick::new(&[3.0, 1.0]);
        let mut rng = ChaChaDrbg::from_u64_seed(11);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.4..3.6).contains(&ratio), "ratio {ratio}");
    }
}

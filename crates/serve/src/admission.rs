//! Admission control: per-tenant token buckets and a deficit-style
//! weighted fair queue.
//!
//! Admission happens in two places. The **token bucket** decides at the
//! arrival instant whether a tenant is within its quota — a rejected
//! request never touches the archive, which is what keeps one tenant's
//! burst from inflating everyone else's tail. The **deficit queue**
//! decides, among admitted requests, whose turn it is: tenants accrue
//! byte credit in proportion to their weight and spend it as their
//! requests are served, so a heavy writer cannot starve a light reader
//! even when both are within quota.
//!
//! Both structures are driven entirely by the virtual clock and integer
//! tenant indices, so their decisions replay exactly under a fixed seed.

use std::collections::VecDeque;

use aeon_store::clock::SimTime;

/// A token bucket refilled in virtual time.
///
/// Tokens accrue at `rate_per_sec` up to `burst`; each admitted request
/// spends one token. Refill is computed lazily from the elapsed virtual
/// time, so the bucket needs no timer of its own.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket with the given refill rate and depth.
    ///
    /// Non-finite or negative parameters are clamped to zero, which
    /// yields a bucket that admits nothing — the same fail-closed
    /// convention [`aeon_store::throughput::ThroughputProfile`] uses
    /// for degenerate rates.
    #[must_use]
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        let sane = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let burst = sane(burst);
        TokenBucket {
            rate_per_sec: sane(rate_per_sec),
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Spends one token if the bucket (refilled to `now`) holds one.
    pub fn try_admit(&mut self, now: SimTime) -> bool {
        let elapsed = now.since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// A weighted deficit round-robin queue over per-tenant FIFOs.
///
/// Each item carries a byte cost. On every scheduling visit a tenant's
/// deficit grows by its share of the quantum; it may serve items while
/// the head's cost fits in the deficit. To guarantee progress even when
/// a single item costs more than the quantum, the accrued deficit is
/// allowed to grow until it covers the head item, but is capped at
/// `4 × grant` beyond that so an idle spell cannot bank unbounded
/// credit. A tenant whose FIFO drains loses its deficit, the classic
/// DRR rule that stops tenants saving up credit while idle.
#[derive(Debug, Clone)]
pub struct DeficitQueue<T> {
    queues: Vec<VecDeque<(u64, T)>>,
    grants: Vec<u64>,
    deficits: Vec<u64>,
    cursor: usize,
    // Whether the tenant under the cursor already received this visit's
    // grant — a visit spans several pops while the deficit lasts.
    granted: bool,
    len: usize,
}

impl<T> DeficitQueue<T> {
    /// A queue over `weights.len()` tenants; `quantum_bytes` is split
    /// per visit in proportion to weight (minimum 1 byte per visit).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a non-positive weight.
    #[must_use]
    pub fn new(weights: &[f64], quantum_bytes: u64) -> Self {
        assert!(!weights.is_empty(), "at least one tenant is required");
        let total: f64 = weights.iter().sum();
        let grants = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w > 0.0, "tenant weights must be positive");
                ((quantum_bytes as f64 * w / total) as u64).max(1)
            })
            .collect();
        DeficitQueue {
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            grants,
            deficits: vec![0; weights.len()],
            cursor: 0,
            granted: false,
            len: 0,
        }
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.queues.len();
        self.granted = false;
    }

    /// Appends an item with the given byte cost to a tenant's FIFO.
    pub fn push(&mut self, tenant: usize, cost_bytes: u64, item: T) {
        self.queues[tenant].push_back((cost_bytes, item));
        self.len += 1;
    }

    /// Total queued items across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pops the next item under DRR order, returning the owning tenant.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let t = self.cursor;
            if self.queues[t].is_empty() {
                self.deficits[t] = 0;
                self.advance();
                continue;
            }
            let head_cost = self.queues[t].front().map(|(c, _)| *c).unwrap_or(0);
            if !self.granted {
                // Accrue this visit's grant once, capped so an idle
                // spell cannot bank unbounded credit while still
                // eventually covering an oversized head.
                let cap = head_cost.saturating_add(self.grants[t].saturating_mul(4));
                self.deficits[t] = self.deficits[t].saturating_add(self.grants[t]).min(cap);
                self.granted = true;
            }
            if self.deficits[t] >= head_cost {
                let (cost, item) = self.queues[t].pop_front().expect("head checked above");
                self.deficits[t] -= cost;
                self.len -= 1;
                if self.queues[t].is_empty() {
                    self.deficits[t] = 0;
                    self.advance();
                }
                return Some((t, item));
            }
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_store::clock::{SimClock, SimDuration};

    #[test]
    fn bucket_admits_burst_then_throttles() {
        let clock = SimClock::new();
        let mut b = TokenBucket::new(2.0, 3.0);
        let now = clock.now();
        assert!(b.try_admit(now) && b.try_admit(now) && b.try_admit(now));
        assert!(!b.try_admit(now), "burst exhausted");
        clock.charge(SimDuration::from_secs_f64(0.5));
        assert!(b.try_admit(clock.now()), "refilled one token in 500 ms");
        assert!(!b.try_admit(clock.now()));
    }

    #[test]
    fn degenerate_bucket_parameters_fail_closed() {
        let mut nan = TokenBucket::new(f64::NAN, f64::INFINITY);
        let mut neg = TokenBucket::new(-3.0, -1.0);
        let late = SimTime::ZERO + SimDuration::from_secs_f64(1e6);
        assert!(!nan.try_admit(late));
        assert!(!neg.try_admit(late));
    }

    #[test]
    fn drr_shares_service_by_weight() {
        let mut q = DeficitQueue::new(&[3.0, 1.0], 4096);
        for i in 0..40 {
            q.push(0, 1024, ("heavy", i));
            q.push(1, 1024, ("light", i));
        }
        let mut first_16 = [0usize; 2];
        for _ in 0..16 {
            let (t, _) = q.pop().expect("items queued");
            first_16[t] += 1;
        }
        // 3:1 weights over equal costs: roughly 12 vs 4 of the first 16.
        assert!(first_16[0] >= 10, "heavy got {first_16:?}");
        assert!(first_16[1] >= 2, "light got {first_16:?}");
    }

    #[test]
    fn oversized_item_still_gets_served() {
        let mut q = DeficitQueue::new(&[1.0, 1.0], 64);
        q.push(0, 1_000_000, "whale");
        q.push(1, 8, "minnow");
        let mut seen = Vec::new();
        while let Some((_, item)) = q.pop() {
            seen.push(item);
        }
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&"whale"), "deficit cap must not starve");
    }

    #[test]
    fn drained_tenant_loses_its_deficit() {
        let mut q = DeficitQueue::new(&[1.0], 1024);
        q.push(0, 8, "a");
        assert_eq!(q.pop(), Some((0, "a")));
        // Re-queue; the earlier surplus must not have been banked.
        q.push(0, 8, "b");
        assert_eq!(q.pop(), Some((0, "b")));
        assert!(q.is_empty());
    }
}

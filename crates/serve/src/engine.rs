//! The request engine: a deterministic event loop that replays a
//! workload against an [`Archive`] on the shared virtual clock.
//!
//! The loop interleaves three activities in strict priority order:
//!
//! 1. **Arrivals** that have come due are admitted (or rejected) by
//!    their tenant's token bucket at the arrival instant.
//! 2. **Admitted requests** are served one at a time in deficit
//!    round-robin order, each charging the clock through the archive's
//!    codec → plan → executor path (or the hot-cache fast path).
//! 3. **Background campaign steps** run only when no foreground work is
//!    runnable *and* the campaign's reserved window has elapsed — the
//!    [`ReencodeCampaignDriver`] opens a `Δ·r/(1−r)` foreground window
//!    after each step, and this engine fills that window with real
//!    requests instead of a synthetic charge. A request that arrives
//!    mid-step queues until the step finishes, so campaign interference
//!    lands in the measured queue-wait and latency distributions — the
//!    paper's §3.2 "factor of two" as a tail, not a scalar.
//!
//! The loop is single-threaded over virtual events, so a `(spec, seed,
//! config)` triple produces a byte-identical [`ServeReport`] — same
//! histograms, same event digest — regardless of the archive's
//! pipeline worker count or the host machine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use aeon_core::{
    Archive, ArchiveError, CampaignProgress, ObjectId, PolicyKind, ReencodeCampaignDriver,
    RepairCampaignDriver, RepairQueueOrder,
};
use aeon_crypto::{ChaChaDrbg, CryptoRng, Sha256};
use aeon_store::clock::{SimDuration, SimTime};

use crate::admission::{DeficitQueue, TokenBucket};
use crate::cache::{CacheConfig, CacheStats, HotCache};
use crate::histogram::LatencyHistogram;
use crate::workload::{exp_gap, unit_f64, ArrivalProcess, WeightedPick, WorkloadSpec, ZipfSampler};

/// A §3.2 re-encryption campaign to run behind the workload.
#[derive(Debug, Clone)]
pub struct BackgroundCampaign {
    /// The policy every object is re-encoded to.
    pub new_policy: PolicyKind,
    /// Fraction of bandwidth reserved for foreground traffic
    /// (`0..=`[`aeon_core::MAX_RESERVED_FRACTION`]).
    pub reserved_fraction: f64,
}

/// A fleet repair sweep to run behind the workload: the engine scans
/// the archive once at startup, queues every degraded object under the
/// chosen discipline, and heals them in the gaps the foreground load
/// leaves open — the same `Δ·r/(1−r)` window mechanics as the
/// re-encryption campaign.
#[derive(Debug, Clone)]
pub struct BackgroundRepair {
    /// Queue discipline (most-degraded-first or catalog order).
    pub order: RepairQueueOrder,
    /// Fraction of bandwidth reserved for foreground traffic
    /// (`0..=`[`aeon_core::MAX_RESERVED_FRACTION`]).
    pub reserved_fraction: f64,
}

/// Engine configuration: cache sizing, fair-queue quantum, and the
/// optional background campaign.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hot-cache sizing and cost model.
    pub cache: CacheConfig,
    /// Deficit round-robin quantum, bytes per scheduling round.
    pub quantum_bytes: u64,
    /// Background re-encryption campaign, if any.
    pub background: Option<BackgroundCampaign>,
    /// Background fleet repair sweep, if any. At most one background
    /// activity may be configured per run.
    pub repair: Option<BackgroundRepair>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache: CacheConfig::default(),
            quantum_bytes: 256 * 1024,
            background: None,
            repair: None,
        }
    }
}

/// Either background driver, stepped uniformly by the event loop.
#[derive(Debug)]
enum Driver {
    Reencode(ReencodeCampaignDriver),
    Repair(RepairCampaignDriver),
}

impl Driver {
    fn is_done(&self) -> bool {
        match self {
            Driver::Reencode(d) => d.is_done(),
            Driver::Repair(d) => d.is_done(),
        }
    }

    fn next_eligible(&self) -> SimTime {
        match self {
            Driver::Reencode(d) => d.next_eligible(),
            Driver::Repair(d) => d.next_eligible(),
        }
    }

    /// Runs one background step; returns the stored bytes it moved
    /// (read + written) for the event digest, or `None` when done.
    fn step(&mut self, archive: &mut Archive) -> Result<Option<u64>, ArchiveError> {
        match self {
            Driver::Reencode(d) => Ok(d.step(archive)?.map(|re| re.bytes_read + re.bytes_written)),
            Driver::Repair(d) => Ok(d
                .step(archive)?
                .map(|report| report.bytes_read + report.bytes_written)),
        }
    }

    fn progress(&self) -> CampaignProgress {
        match self {
            Driver::Reencode(d) => d.progress(),
            Driver::Repair(d) => d.progress(),
        }
    }
}

/// Why a serve run aborted.
#[derive(Debug)]
pub enum ServeError {
    /// The workload spec is unusable (no tenants, no catalog, zero
    /// requests, or a degenerate arrival process).
    InvalidSpec(&'static str),
    /// The archive failed outside a single request (e.g. during a
    /// campaign step). Per-request failures are counted, not fatal.
    Archive(ArchiveError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidSpec(why) => write!(f, "invalid workload spec: {why}"),
            ServeError::Archive(e) => write!(f, "archive error during serve: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArchiveError> for ServeError {
    fn from(e: ArchiveError) -> Self {
        ServeError::Archive(e)
    }
}

/// Per-tenant accounting for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant name, from the spec.
    pub name: String,
    /// Requests that arrived.
    pub offered: u64,
    /// Requests the token bucket admitted.
    pub admitted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Admitted requests that finished successfully.
    pub completed: u64,
    /// Admitted requests that failed inside the archive.
    pub failed: u64,
    /// Payload bytes read (cache hits included).
    pub bytes_read: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// End-to-end latency (arrival → completion) of completed requests.
    pub latency: LatencyHistogram,
    /// Queueing delay (arrival → service start) of completed requests.
    pub queue_wait: LatencyHistogram,
}

impl TenantReport {
    fn new(name: &str) -> Self {
        TenantReport {
            name: name.to_string(),
            offered: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            bytes_read: 0,
            bytes_written: 0,
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
        }
    }
}

/// Everything one serve run produced. Two runs with the same inputs
/// compare equal field-for-field, including the histograms and the
/// event digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Per-tenant accounting, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Hot-cache hit/miss counters.
    pub cache: CacheStats,
    /// Virtual time from run start to last completion.
    pub elapsed: SimDuration,
    /// Chained SHA-256 over every admission, rejection, completion, and
    /// failure, in event order. Equal digests mean the runs took the
    /// same decisions at the same virtual instants.
    pub event_digest: [u8; 32],
    /// Background campaign progress, when one was configured.
    pub campaign: Option<CampaignProgress>,
}

impl ServeReport {
    /// The event digest as lowercase hex.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        self.event_digest
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Aggregate latency across all tenants.
    #[must_use]
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for t in &self.tenants {
            all.merge(&t.latency);
        }
        all
    }
}

/// What one admitted request asks of the archive.
#[derive(Debug)]
enum Op {
    /// Read `catalog[rank]`.
    Read { rank: usize },
    /// Ingest a fresh object of `bytes` derived bytes.
    Write { bytes: usize },
}

// The owning tenant is tracked by the deficit queue itself, so the
// request carries only what execution needs.
#[derive(Debug)]
struct Request {
    seq: u64,
    arrived: SimTime,
    op: Op,
}

/// An arrival event, ordered by (instant, sequence) so ties replay in
/// issue order.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Arrival {
    at: SimTime,
    seq: u64,
    tenant: usize,
}

/// Chained event digest: `h ← SHA-256(h ‖ tag ‖ fields)`.
struct EventDigest([u8; 32]);

impl EventDigest {
    fn new() -> Self {
        EventDigest(Sha256::digest(b"aeon-serve event log v1"))
    }

    /// `at` is relative to the run's start instant, so a replay on a
    /// clock that has already advanced (e.g. a second run against the
    /// same archive) still produces the same digest.
    fn fold(&mut self, tag: u8, seq: u64, tenant: usize, at: SimDuration, extra: u64) {
        let mut h = Sha256::new();
        h.update(&self.0);
        h.update(&[tag]);
        h.update(&seq.to_le_bytes());
        h.update(&(tenant as u64).to_le_bytes());
        h.update(&at.as_nanos().to_le_bytes());
        h.update(&extra.to_le_bytes());
        self.0 = h.finalize();
    }
}

const EV_ADMIT: u8 = 1;
const EV_REJECT: u8 = 2;
const EV_COMPLETE: u8 = 3;
const EV_FAIL: u8 = 4;
const EV_CAMPAIGN: u8 = 5;

fn derived_rng(seed: u64, label: &str, n: u64) -> ChaChaDrbg {
    let mut h = Sha256::new();
    h.update(b"aeon-serve rng");
    h.update(&seed.to_le_bytes());
    h.update(label.as_bytes());
    h.update(&n.to_le_bytes());
    ChaChaDrbg::from_seed(h.finalize())
}

/// Runs `spec` against `archive` and returns the measured report.
///
/// `catalog` is the read working set: Zipf rank 0 maps to
/// `catalog[0]`, so callers control which objects are hottest by
/// ordering it. Writes ingest fresh objects (named `srv-w<seq>`) and do
/// not join the catalog, keeping the read stream identical across
/// configurations. The archive's cluster clock is advanced in place;
/// reported latencies are relative, so a non-zero starting instant is
/// fine.
pub fn serve(
    archive: &mut Archive,
    catalog: &[ObjectId],
    spec: &WorkloadSpec,
    config: &EngineConfig,
) -> Result<ServeReport, ServeError> {
    if spec.tenants.is_empty() {
        return Err(ServeError::InvalidSpec("no tenants"));
    }
    if catalog.is_empty() {
        return Err(ServeError::InvalidSpec("empty catalog"));
    }
    if spec.total_requests == 0 {
        return Err(ServeError::InvalidSpec("zero requests"));
    }
    match spec.arrivals {
        ArrivalProcess::Open { requests_per_sec } => {
            if !(requests_per_sec.is_finite() && requests_per_sec > 0.0) {
                return Err(ServeError::InvalidSpec("open-loop rate must be positive"));
            }
        }
        ArrivalProcess::Closed {
            clients_per_tenant, ..
        } => {
            if clients_per_tenant == 0 {
                return Err(ServeError::InvalidSpec("closed loop needs clients"));
            }
        }
    }

    let clock = archive.cluster().clock().clone();
    let start = clock.now();
    let weights: Vec<f64> = spec.tenants.iter().map(|t| t.weight).collect();
    let pick = WeightedPick::new(&weights);
    let zipf = ZipfSampler::new(catalog.len(), spec.zipf_exponent);
    let mut workload_rng = derived_rng(spec.seed, "workload", 0);
    let mut buckets: Vec<TokenBucket> = spec
        .tenants
        .iter()
        .map(|t| TokenBucket::new(t.quota_per_sec, t.quota_burst))
        .collect();
    let mut queue: DeficitQueue<Request> = DeficitQueue::new(&weights, config.quantum_bytes);
    let mut tenants: Vec<TenantReport> = spec
        .tenants
        .iter()
        .map(|t| TenantReport::new(&t.name))
        .collect();
    let mut cache = HotCache::new(config.cache.clone());
    let mut digest = EventDigest::new();
    if config.background.is_some() && config.repair.is_some() {
        return Err(ServeError::InvalidSpec(
            "configure at most one background activity (re-encode or repair)",
        ));
    }
    let mut driver = config
        .background
        .as_ref()
        .map(|bg| {
            Driver::Reencode(ReencodeCampaignDriver::new(
                archive,
                bg.new_policy.clone(),
                bg.reserved_fraction,
            ))
        })
        .or_else(|| {
            config.repair.as_ref().map(|r| {
                Driver::Repair(RepairCampaignDriver::new(
                    archive,
                    r.order,
                    r.reserved_fraction,
                ))
            })
        });

    // Arrival generation. Open loop pre-draws nothing: both modes pull
    // the next arrival lazily so the DRBG consumption order is a pure
    // function of the event order.
    let mut heap: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
    let mut issued: u64 = 0;
    let total = spec.total_requests as u64;
    let mut open_next = start;

    match spec.arrivals {
        ArrivalProcess::Open { requests_per_sec } => {
            open_next = start + exp_gap(&mut workload_rng, requests_per_sec);
            heap.push(Reverse(Arrival {
                at: open_next,
                seq: issued,
                tenant: pick.sample(&mut workload_rng),
            }));
            issued += 1;
        }
        ArrivalProcess::Closed {
            clients_per_tenant,
            think,
        } => {
            // Stagger each client's first request uniformly inside one
            // think window so the population does not arrive in phase.
            for tenant in 0..spec.tenants.len() {
                for _ in 0..clients_per_tenant {
                    if issued >= total {
                        break;
                    }
                    let offset = think.mul_f64(unit_f64(&mut workload_rng));
                    heap.push(Reverse(Arrival {
                        at: start + offset,
                        seq: issued,
                        tenant,
                    }));
                    issued += 1;
                }
            }
        }
    }

    let mut served: u64 = 0; // admitted requests fully processed
    let mut admitted_total: u64 = 0;
    let mut rejected_total: u64 = 0;
    let mut last_completion = start;

    // One iteration = one unit of progress: drain due arrivals, then
    // serve one request, or step the campaign, or jump to the next
    // event instant.
    loop {
        let now = clock.now();

        // 1. Admission at the arrival instant for every due arrival.
        while let Some(Reverse(head)) = heap.peek() {
            if head.at > now {
                break;
            }
            let Reverse(ev) = heap.pop().expect("peeked above");
            let t = ev.tenant;
            tenants[t].offered += 1;
            let op = if unit_f64(&mut workload_rng) < spec.tenants[t].read_fraction {
                Op::Read {
                    rank: zipf.sample(&mut workload_rng),
                }
            } else {
                Op::Write {
                    bytes: spec.write_bytes,
                }
            };
            if buckets[t].try_admit(ev.at) {
                tenants[t].admitted += 1;
                admitted_total += 1;
                digest.fold(EV_ADMIT, ev.seq, t, ev.at.since(start), 0);
                let cost = match &op {
                    Op::Read { rank } => archive
                        .manifest(&catalog[*rank])
                        .map(|m| m.logical_len as u64)
                        .unwrap_or(1),
                    Op::Write { bytes } => *bytes as u64,
                };
                queue.push(
                    t,
                    cost.max(1),
                    Request {
                        seq: ev.seq,
                        arrived: ev.at,
                        op,
                    },
                );
            } else {
                tenants[t].rejected += 1;
                rejected_total += 1;
                digest.fold(EV_REJECT, ev.seq, t, ev.at.since(start), 0);
                // A rejected closed-loop client does not retry; it
                // thinks and issues its *next* request, keeping the
                // population constant.
                if let ArrivalProcess::Closed { think, .. } = spec.arrivals {
                    if issued < total {
                        heap.push(Reverse(Arrival {
                            at: ev.at + think,
                            seq: issued,
                            tenant: t,
                        }));
                        issued += 1;
                    }
                }
            }
            // Open loop: draw the next arrival as soon as this one is
            // consumed, so the heap always knows the next instant.
            if let ArrivalProcess::Open { requests_per_sec } = spec.arrivals {
                if issued < total {
                    open_next = open_next + exp_gap(&mut workload_rng, requests_per_sec);
                    heap.push(Reverse(Arrival {
                        at: open_next,
                        seq: issued,
                        tenant: pick.sample(&mut workload_rng),
                    }));
                    issued += 1;
                }
            }
        }

        // 2. Serve one admitted request, foreground priority.
        if let Some((t, req)) = queue.pop() {
            let began = clock.now();
            let outcome: Result<(), ArchiveError> = match &req.op {
                Op::Read { rank } => {
                    let id = &catalog[*rank];
                    if !cache.touch_manifest(id) {
                        clock.charge(cache.manifest_miss_penalty());
                    }
                    if let Some(len) = cache.lookup_payload(id) {
                        clock.charge(cache.hit_charge(len));
                        tenants[t].bytes_read += len;
                        Ok(())
                    } else {
                        // A miss pays the full storage path; the
                        // batched fetch coalesces the object's shard
                        // reads into one framed request per node, so
                        // miss latency charges one seek per node
                        // instead of one per shard.
                        match archive.retrieve_batched(id) {
                            Ok(data) => {
                                tenants[t].bytes_read += data.len() as u64;
                                cache.admit_payload(id, data.len() as u64);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                }
                Op::Write { bytes } => {
                    let mut payload = vec![0u8; *bytes];
                    derived_rng(spec.seed, "write", req.seq).fill_bytes(&mut payload);
                    match archive.ingest(&payload, &format!("srv-w{}", req.seq)) {
                        Ok(_) => {
                            tenants[t].bytes_written += *bytes as u64;
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            let end = clock.now();
            last_completion = end;
            served += 1;
            match outcome {
                Ok(()) => {
                    tenants[t].completed += 1;
                    tenants[t].latency.record(end.since(req.arrived));
                    tenants[t].queue_wait.record(began.since(req.arrived));
                    digest.fold(
                        EV_COMPLETE,
                        req.seq,
                        t,
                        end.since(start),
                        end.since(req.arrived).as_nanos(),
                    );
                }
                Err(_) => {
                    tenants[t].failed += 1;
                    digest.fold(EV_FAIL, req.seq, t, end.since(start), 0);
                }
            }
            if let ArrivalProcess::Closed { think, .. } = spec.arrivals {
                if issued < total {
                    heap.push(Reverse(Arrival {
                        at: end + think,
                        seq: issued,
                        tenant: t,
                    }));
                    issued += 1;
                }
            }
            continue;
        }

        // 3. No runnable foreground work: step the campaign if its
        // reserved window has elapsed.
        let campaign_pending = driver.as_ref().is_some_and(|d| !d.is_done());
        if campaign_pending {
            let d = driver.as_mut().expect("pending checked above");
            if now >= d.next_eligible() {
                if let Some(moved) = d.step(archive)? {
                    digest.fold(
                        EV_CAMPAIGN,
                        d.progress().objects_done as u64,
                        usize::MAX,
                        clock.now().since(start),
                        moved,
                    );
                }
                continue;
            }
        }

        // 4. Idle: jump to the next instant anything can happen.
        let next_arrival = heap.peek().map(|Reverse(a)| a.at);
        let next_campaign = if campaign_pending {
            driver.as_ref().map(|d| d.next_eligible())
        } else {
            None
        };
        let next = match (next_arrival, next_campaign) {
            (Some(a), Some(c)) => Some(a.min(c)),
            (a, c) => a.or(c),
        };
        match next {
            Some(instant) => clock.advance_to(instant),
            // Arrivals exhausted, queue empty, campaign done (or the
            // run has no campaign): the run is over. A still-pending
            // campaign keeps the loop alive via `next_campaign`.
            None => break,
        }
    }
    debug_assert_eq!(served, admitted_total);
    debug_assert_eq!(served + rejected_total, total);

    Ok(ServeReport {
        tenants,
        cache: cache.stats(),
        elapsed: last_completion.since(start),
        event_digest: digest.0,
        campaign: driver.map(|d| d.progress()),
    })
}

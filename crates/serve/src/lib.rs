//! `aeon-serve`: a deterministic multi-tenant request engine on the
//! virtual clock.
//!
//! The paper's §3.2 prices maintenance (re-encryption campaigns,
//! proactive refresh) as *bandwidth*: reserve a fraction `r` for
//! foreground traffic and the campaign stretches by `1/(1−r)`. That
//! arithmetic says nothing about what the foreground traffic actually
//! experiences while the campaign runs — which is the number an archive
//! operator has to defend. This crate closes that loop: it drives a
//! seeded, multi-tenant workload through the archive's normal
//! codec → plan → executor path while a [`ReencodeCampaignDriver`]
//! consumes the unreserved bandwidth, and reports the result as
//! per-tenant latency distributions (p50/p99/p999), not scalars.
//!
//! Everything is deterministic by construction: arrivals, tenant picks,
//! object popularity, and write payloads all come from a seeded DRBG;
//! the scheduler and cache use ordered maps; time is the shared
//! [`SimClock`](aeon_store::clock::SimClock). One `(workload, seed,
//! config)` triple therefore produces one byte-identical
//! [`ServeReport`] — same histograms, same chained event digest —
//! independent of the archive's pipeline worker count or the host.
//!
//! # Pieces
//!
//! * [`workload`] — tenant mix, open/closed arrival processes, Zipf
//!   object popularity.
//! * [`admission`] — per-tenant token buckets and a deficit-weighted
//!   fair queue.
//! * [`cache`] — a bounded LRU hot set for manifests and decoded
//!   payloads, with an explicit hit cost model.
//! * [`histogram`] — fixed-shape log-bucketed latency histograms whose
//!   equality is byte equality.
//! * [`engine`] — the event loop tying it all together, with optional
//!   background campaign interleaving.
//!
//! # Example
//!
//! ```
//! use aeon_core::{Archive, ArchiveConfig, PolicyKind};
//! use aeon_serve::{serve, ArrivalProcess, EngineConfig, TenantSpec, WorkloadSpec};
//!
//! let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication {
//!     copies: 2,
//! }))?;
//! let catalog: Vec<_> = (0..8)
//!     .map(|i| archive.ingest(&[i as u8; 512], &format!("obj-{i}")))
//!     .collect::<Result<_, _>>()?;
//!
//! let spec = WorkloadSpec::new(
//!     vec![TenantSpec::new("gold", 3.0), TenantSpec::new("bronze", 1.0)],
//!     ArrivalProcess::Open { requests_per_sec: 200.0 },
//! )
//! .with_total_requests(100);
//!
//! let report = serve(&mut archive, &catalog, &spec, &EngineConfig::default())?;
//! assert_eq!(report.tenants.len(), 2);
//! let again = serve(&mut archive, &catalog, &spec, &EngineConfig::default())?;
//! assert_eq!(report.event_digest, again.event_digest);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod histogram;
pub mod workload;

pub use admission::{DeficitQueue, TokenBucket};
pub use cache::{CacheConfig, CacheStats, HotCache};
pub use engine::{
    serve, BackgroundCampaign, BackgroundRepair, EngineConfig, ServeError, ServeReport,
    TenantReport,
};
pub use histogram::LatencyHistogram;
pub use workload::{ArrivalProcess, TenantSpec, WorkloadSpec, ZipfSampler};

// The campaign drivers pair with [`BackgroundCampaign`] /
// [`BackgroundRepair`]; re-exported so engine callers need not import
// aeon-core for the progress or ordering types.
pub use aeon_core::{
    CampaignProgress, ReencodeCampaignDriver, RepairCampaignDriver, RepairQueueOrder,
};

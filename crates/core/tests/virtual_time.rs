//! Virtual-time invariants through the full archive data path.
//!
//! The SimClock contract: virtual elapsed time is a deterministic
//! function of the charged operations alone — the same workload charges
//! the same virtual time regardless of pipeline worker count, thread
//! scheduling, or how many times it is replayed. These tests drive the
//! real ingest/re-encode path over throughput-charged clusters and
//! compare clock readings.

use aeon_core::{
    Archive, ArchiveConfig, IntegrityMode, PipelineConfig, PolicyKind, RetryPolicy, SimTime,
};
use aeon_crypto::SuiteId;
use aeon_store::faults::{faulty_in_memory_cluster, FaultPlan};
use aeon_store::media::ArchiveSite;
use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};

/// Runs a fixed ingest + re-encode workload with the given worker count
/// and returns the final clock reading.
fn clocked_workload(workers: usize) -> SimTime {
    let profile = ThroughputProfile::from_site_aggregate(&ArchiveSite::hpss());
    let (cluster, clock) =
        throughput_in_memory_cluster(&["s0", "s1", "s2", "s3", "s4", "s5"], 1, &profile);
    let config = ArchiveConfig::new(PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 4,
        parity: 2,
    })
    .with_integrity(IntegrityMode::DigestOnly)
    .with_pipeline(PipelineConfig {
        chunk_size: 16 * 1024,
        workers,
    });
    let mut archive = Archive::with_cluster(config, cluster).expect("archive");
    for i in 0..4u64 {
        let payload = aeon_bench_payload(48 * 1024, i);
        archive
            .ingest(&payload, &format!("obj-{i}"))
            .expect("ingest");
    }
    archive
        .reencode_all_measured(
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
            0.5,
        )
        .expect("campaign");
    clock.now()
}

/// Deterministic high-entropy payload (local copy; the core crate does
/// not depend on the bench crate).
fn aeon_bench_payload(len: usize, seed: u64) -> Vec<u8> {
    use aeon_crypto::{ChaChaDrbg, CryptoRng};
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

#[test]
fn virtual_elapsed_is_independent_of_worker_count() {
    let serial = clocked_workload(1);
    let parallel = clocked_workload(4);
    assert!(serial > SimTime::ZERO, "throughput charges must accrue");
    assert_eq!(
        serial, parallel,
        "virtual time is charged per byte moved, not per thread"
    );
}

#[test]
fn virtual_elapsed_replays_identically() {
    assert_eq!(clocked_workload(2), clocked_workload(2));
}

#[test]
fn fault_latency_and_backoff_charge_the_cluster_clock() {
    // Transient I/O faults + injected latency: the archive retries and
    // stalls, and every millisecond lands on the shared cluster clock —
    // nothing sleeps, nothing keeps a parallel ms ledger.
    let plan = FaultPlan::new(7)
        .with_transient_io_rate(0.3)
        .with_mean_latency_ms(3);
    let (cluster, handles) = faulty_in_memory_cluster(&["a", "b", "c", "d", "e"], 1, &plan);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(RetryPolicy::default().with_attempts(4));
    let mut archive = Archive::with_cluster(config, cluster).unwrap();
    let id = archive.ingest(b"charged, never slept", "lat").unwrap();
    assert_eq!(archive.retrieve(&id).unwrap(), b"charged, never slept");
    let clock_ms = archive.cluster().clock().now().as_millis();
    assert!(clock_ms > 0, "latency/backoff must be charged to the clock");
    // The node handles share the cluster clock: same timeline.
    for h in &handles {
        assert!(h.clock().same_clock(archive.cluster().clock()));
    }
}

//! Fleet campaign results must be a function of the archive's *state*,
//! never of how the metadata layer is organized: the catalog shard
//! count is purely a concurrency knob, and the order manifests entered
//! the catalog must not leak into scans, repair sweeps, durability
//! simulations, or clock readings.

use aeon_core::{
    Archive, ArchiveConfig, FleetSimConfig, IntegrityMode, ObjectId, PolicyKind, RepairQueueOrder,
};
use aeon_store::clock::SimDuration;
use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
use aeon_store::Cluster;
use std::sync::Arc;

fn archive_with_shards(catalog_shards: usize) -> (Archive, Vec<MemoryNode>) {
    let handles: Vec<MemoryNode> = (0..6u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_catalog_shards(catalog_shards);
    (Archive::with_cluster(config, cluster).unwrap(), handles)
}

fn populate(archive: &mut Archive) -> Vec<ObjectId> {
    (0..8)
        .map(|i| {
            archive
                .ingest(&vec![i as u8 + 1; 96 + i * 13], &format!("obj-{i}"))
                .unwrap()
        })
        .collect()
}

fn damage(archive: &Archive, handles: &[MemoryNode], ids: &[ObjectId]) {
    // Deterministic damage: one shard off even objects, two off the
    // third object.
    for (i, id) in ids.iter().enumerate() {
        let slots: &[usize] = match i {
            3 => &[0, 2],
            _ if i % 2 == 0 => &[1],
            _ => &[],
        };
        let placement = archive.manifest(id).unwrap().placement;
        for &slot in slots {
            handles
                .iter()
                .find(|h| h.id() == placement[slot])
                .unwrap()
                .delete(&ShardKey::new(id.as_str(), slot as u32))
                .unwrap();
        }
    }
}

/// Everything a fleet campaign can observe, flattened for comparison.
fn observe(archive: &mut Archive) -> (Vec<String>, Vec<[u8; 32]>, String, u64) {
    let scan = archive.scan_fleet();
    let scan_lines: Vec<String> = scan
        .tickets
        .iter()
        .map(|t| {
            format!(
                "{} {}/{}/{}",
                t.id.as_str(),
                t.surviving,
                t.required,
                t.total
            )
        })
        .chain(scan.lost.iter().map(|id| format!("lost {}", id.as_str())))
        .collect();
    let digests: Vec<[u8; 32]> = archive.manifests().map(|m| m.digest).collect();
    let outcome = archive.repair_all();
    let repair_line = format!(
        "repaired {} failed {} healthy {} bytes {} written {}",
        outcome.repaired.len(),
        outcome.failed.len(),
        outcome.healthy,
        outcome.bytes_moved(),
        outcome.bytes_written(),
    );
    let clock_nanos = archive
        .cluster()
        .clock()
        .now()
        .since(aeon_store::clock::SimTime::ZERO)
        .as_days_f64()
        .to_bits();
    (scan_lines, digests, repair_line, clock_nanos)
}

#[test]
fn fleet_results_independent_of_catalog_shard_count() {
    let mut baseline = None;
    for shards in [1usize, 2, 5, 16, 64] {
        let (mut archive, handles) = archive_with_shards(shards);
        let ids = populate(&mut archive);
        damage(&archive, &handles, &ids);
        let observed = observe(&mut archive);
        match &baseline {
            None => baseline = Some(observed),
            Some(expected) => assert_eq!(
                expected, &observed,
                "catalog with {shards} shards diverged from the 1-shard baseline"
            ),
        }
    }
}

#[test]
fn fleet_sim_independent_of_catalog_shard_count() {
    let cfg = FleetSimConfig {
        seed: 11,
        epochs: 5,
        epoch: SimDuration::from_days(30),
        node_wipe_prob: 0.2,
        shard_loss_prob: 0.03,
        repair_bytes_per_epoch: 4_000,
        reserved_foreground: 0.05,
        order: RepairQueueOrder::Priority,
    };
    let mut baseline = None;
    for shards in [1usize, 3, 32] {
        let (mut archive, _handles) = archive_with_shards(shards);
        populate(&mut archive);
        let report = archive.run_fleet_sim(&cfg);
        match &baseline {
            None => baseline = Some(report),
            Some(expected) => assert_eq!(
                expected, &report,
                "fleet sim with {shards} catalog shards diverged"
            ),
        }
    }
}

/// Rebuilds the catalog with its manifests inserted in reverse order.
fn reinsert_reversed(archive: &Archive) {
    let mut manifests: Vec<_> = archive.manifests().collect();
    manifests.reverse();
    for m in &manifests {
        archive.catalog().remove(&m.id);
    }
    assert_eq!(archive.catalog().len(), 0);
    for m in manifests {
        let id = m.id.clone();
        archive.catalog().insert(id, m);
    }
}

#[test]
fn fleet_results_independent_of_insertion_order() {
    // Two identical worlds with identical damage; one catalog is torn
    // down and rebuilt in reverse insertion order before observation.
    let build = |reversed: bool| {
        let (mut archive, handles) = archive_with_shards(4);
        let ids = populate(&mut archive);
        damage(&archive, &handles, &ids);
        if reversed {
            reinsert_reversed(&archive);
        }
        observe(&mut archive)
    };
    let forward = build(false);
    let reversed = build(true);
    assert_eq!(
        forward, reversed,
        "scan, digests, repair sweep, and clock reading must not depend \
         on catalog insertion order"
    );
    assert!(!forward.0.is_empty(), "the damage was visible to the scan");
}

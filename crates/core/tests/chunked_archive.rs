//! End-to-end archive behaviour for objects large enough to traverse
//! the chunked pipeline: ingest/retrieve, partial repair, proactive
//! refresh, cascade re-wrap, and re-encode campaigns — all with a small
//! chunk size so multi-chunk paths are exercised cheaply.

use aeon_core::pipeline::PipelineConfig;
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind, RepairMethod};
use aeon_crypto::{ChaChaDrbg, CryptoRng, SuiteId};
use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
use aeon_store::Cluster;
use std::sync::Arc;

fn chunked_config(policy: PolicyKind) -> ArchiveConfig {
    ArchiveConfig::new(policy)
        .with_integrity(IntegrityMode::DigestOnly)
        .with_pipeline(
            PipelineConfig::serial()
                .with_chunk_size(512)
                .with_workers(3),
        )
}

fn archive_with_handles(policy: PolicyKind, n: usize) -> (Archive, Vec<MemoryNode>) {
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let archive = Archive::with_cluster(chunked_config(policy), cluster).unwrap();
    (archive, handles)
}

fn delete_shard(handles: &[MemoryNode], archive: &Archive, id: &aeon_core::ObjectId, shard: usize) {
    let manifest = archive.manifest(id).unwrap();
    let node_id = manifest.placement[shard];
    let node = handles.iter().find(|h| h.id() == node_id).unwrap();
    node.delete(&ShardKey::new(id.as_str(), shard as u32))
        .unwrap();
}

fn big_payload(len: usize) -> Vec<u8> {
    let mut rng = ChaChaDrbg::from_u64_seed(0xBEEF);
    let mut p = vec![0u8; len];
    rng.fill_bytes(&mut p);
    p
}

#[test]
fn chunked_ingest_retrieve_across_policies() {
    let payload = big_payload(4_000);
    let policies = vec![
        PolicyKind::Replication { copies: 3 },
        PolicyKind::Encrypted {
            suite: SuiteId::ChaCha20Poly1305,
            data: 3,
            parity: 2,
        },
        PolicyKind::Shamir {
            threshold: 2,
            shares: 4,
        },
        PolicyKind::PackedShamir {
            privacy: 2,
            pack: 2,
            shares: 6,
        },
        PolicyKind::Entropic { data: 3, parity: 2 },
    ];
    for policy in policies {
        let mut archive = Archive::in_memory(chunked_config(policy.clone())).unwrap();
        let id = archive.ingest(&payload, "big").unwrap();
        let manifest = archive.manifest(&id).unwrap();
        let chunked = manifest.meta.chunked.as_ref().expect("object spans chunks");
        assert_eq!(chunked.chunk_count(), 8, "{policy:?}");
        assert_eq!(archive.retrieve(&id).unwrap(), payload, "{policy:?}");
    }
}

#[test]
fn chunked_erasure_partial_repair() {
    let payload = big_payload(3_000);
    let (mut archive, handles) =
        archive_with_handles(PolicyKind::ErasureCoded { data: 3, parity: 2 }, 5);
    let id = archive.ingest(&payload, "r").unwrap();
    assert!(archive.manifest(&id).unwrap().meta.chunked.is_some());
    delete_shard(&handles, &archive, &id, 1);
    delete_shard(&handles, &archive, &id, 4);
    let report = archive.repair_object(&id).unwrap();
    assert_eq!(report.missing_before, 2);
    assert_eq!(report.missing_after, 0);
    assert_eq!(report.method, RepairMethod::PartialErasure);
    assert_eq!(archive.retrieve(&id).unwrap(), payload);
}

#[test]
fn chunked_shamir_partial_repair_restores_identical_shard() {
    let payload = big_payload(2_500);
    let (mut archive, handles) = archive_with_handles(
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        5,
    );
    let id = archive.ingest(&payload, "r").unwrap();
    let manifest = archive.manifest(&id).unwrap();
    assert!(manifest.meta.chunked.is_some());
    let before = archive
        .cluster()
        .get_shards(id.as_str(), &manifest.placement);
    delete_shard(&handles, &archive, &id, 2);
    let report = archive.repair_object(&id).unwrap();
    assert_eq!(report.method, RepairMethod::PartialShamir);
    assert_eq!(report.missing_after, 0);
    let manifest = archive.manifest(&id).unwrap();
    let after = archive
        .cluster()
        .get_shards(id.as_str(), &manifest.placement);
    // Framing prefixes are interpolation-invariant, so the rebuilt framed
    // shard is bit-identical to the lost one.
    assert_eq!(before[2], after[2]);
    assert_eq!(archive.retrieve(&id).unwrap(), payload);
}

#[test]
fn chunked_proactive_refresh_rerandomizes_and_preserves() {
    let payload = big_payload(2_000);
    let mut archive = Archive::in_memory(chunked_config(PolicyKind::Shamir {
        threshold: 3,
        shares: 5,
    }))
    .unwrap();
    let id = archive.ingest(&payload, "refresh").unwrap();
    let manifest = archive.manifest(&id).unwrap().clone();
    let before = archive
        .cluster()
        .get_shards(id.as_str(), &manifest.placement);
    let cost = archive.refresh_object(&id).unwrap();
    assert!(cost.messages > 0);
    let after = archive
        .cluster()
        .get_shards(id.as_str(), &manifest.placement);
    assert_ne!(before, after, "shares must be re-randomized");
    assert_eq!(archive.retrieve(&id).unwrap(), payload);
    assert_eq!(archive.manifest(&id).unwrap().refresh_epochs, 1);
}

#[test]
fn chunked_cascade_rewrap_keeps_object_readable() {
    let payload = big_payload(2_200);
    let mut archive = Archive::in_memory(chunked_config(PolicyKind::Cascade {
        suites: vec![SuiteId::Aes256CtrHmac],
        data: 3,
        parity: 2,
    }))
    .unwrap();
    let id = archive.ingest(&payload, "wrap").unwrap();
    assert!(archive.manifest(&id).unwrap().meta.chunked.is_some());
    archive
        .add_cascade_layer(&id, SuiteId::ChaCha20Poly1305)
        .unwrap();
    let PolicyKind::Cascade { suites, .. } = archive.manifest(&id).unwrap().policy.clone() else {
        panic!("policy must remain Cascade");
    };
    assert_eq!(
        suites,
        vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305]
    );
    assert_eq!(archive.retrieve(&id).unwrap(), payload);
}

#[test]
fn chunked_reencode_campaign() {
    let payload = big_payload(3_000);
    let mut archive = Archive::in_memory(chunked_config(PolicyKind::ErasureCoded {
        data: 3,
        parity: 2,
    }))
    .unwrap();
    let id = archive.ingest(&payload, "migrate").unwrap();
    let (read, written) = archive
        .reencode_object(
            &id,
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 3,
                parity: 2,
            },
        )
        .unwrap();
    assert!(read > 0 && written > 0);
    assert!(archive.manifest(&id).unwrap().meta.chunked.is_some());
    assert_eq!(archive.retrieve(&id).unwrap(), payload);
}

#[test]
fn chunked_verify_reports_intact() {
    let payload = big_payload(1_800);
    let mut archive = Archive::in_memory(chunked_config(PolicyKind::Shamir {
        threshold: 2,
        shares: 3,
    }))
    .unwrap();
    let id = archive.ingest(&payload, "v").unwrap();
    let schedule = aeon_integrity::timestamp::SigBreakSchedule::default();
    let health = archive.verify(&id, &schedule).unwrap();
    assert!(health.intact);
    assert_eq!(health.shards_available, 3);
}

//! Golden-vector compatibility suite: pins the exact bytes the encoding
//! stack produced *before* the Codec/Plan/Executor refactor, for all
//! nine policies, at three layers:
//!
//! 1. raw policy encode (one shard set per policy),
//! 2. the chunked pipeline (framed multi-chunk shards),
//! 3. a full `Archive::ingest` (manifest digests + placement).
//!
//! Every vector is a SHA-256 of the produced bytes, so any refactor that
//! perturbs shard bytes, framing, key derivation, DRBG consumption
//! order, or placement fails this suite bit-for-bit.
//!
//! Regenerate (only when an encoding change is *intended*) with:
//! `cargo test -p aeon-core --test golden -- --ignored --nocapture`

use aeon_core::keys::KeyStore;
use aeon_core::pipeline::{self, PipelineConfig};
use aeon_core::{Archive, ArchiveConfig, IntegrityMode, PolicyKind};
use aeon_crypto::{ChaChaDrbg, CryptoRng, Sha256, SuiteId};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("replication", PolicyKind::Replication { copies: 3 }),
        ("erasure", PolicyKind::ErasureCoded { data: 4, parity: 2 }),
        (
            "encrypted",
            PolicyKind::Encrypted {
                suite: SuiteId::Aes256CtrHmac,
                data: 4,
                parity: 2,
            },
        ),
        (
            "cascade",
            PolicyKind::Cascade {
                suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
                data: 4,
                parity: 2,
            },
        ),
        ("aont-rs", PolicyKind::AontRs { data: 4, parity: 2 }),
        (
            "shamir",
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
        ),
        (
            "packed",
            PolicyKind::PackedShamir {
                privacy: 2,
                pack: 2,
                shares: 6,
            },
        ),
        (
            "lrss",
            PolicyKind::LeakageResilientShamir {
                threshold: 3,
                shares: 5,
                source_len: 32,
            },
        ),
        ("entropic", PolicyKind::Entropic { data: 4, parity: 2 }),
    ]
}

/// High-entropy deterministic payload (keeps the entropic gate happy).
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut p = vec![0u8; len];
    rng.fill_bytes(&mut p);
    p
}

/// One digest summarizing a shard set: SHA-256 over each shard's
/// length-prefixed bytes, concatenated in shard order.
fn shard_set_digest(shards: &[Vec<u8>]) -> String {
    let mut h = Sha256::new();
    for s in shards {
        h.update(&(s.len() as u64).to_be_bytes());
        h.update(s);
    }
    hex(&h.finalize())
}

fn raw_encode_digest(policy: &PolicyKind) -> String {
    let mut rng = ChaChaDrbg::from_u64_seed(0x601D);
    let keys = KeyStore::new([7u8; 32]);
    let enc = policy
        .encode(&mut rng, &keys, "golden-object", &payload(96, 0xFACE))
        .unwrap();
    shard_set_digest(&enc.shards)
}

fn chunked_encode_digest(policy: &PolicyKind) -> String {
    let mut rng = ChaChaDrbg::from_u64_seed(0x601D);
    let keys = KeyStore::new([7u8; 32]);
    let cfg = PipelineConfig::serial().with_chunk_size(64);
    let enc = pipeline::encode_object(
        policy,
        &keys,
        &mut rng,
        "golden-chunked",
        &payload(300, 0xFACE),
        &cfg,
    )
    .unwrap();
    assert!(enc.meta.chunked.is_some(), "expected a multi-chunk object");
    shard_set_digest(&enc.shards)
}

/// Digest over everything an ingest persists: object id, payload digest,
/// per-shard stored digests, and placement.
fn archive_ingest_digest(policy: &PolicyKind) -> String {
    let config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_pipeline(PipelineConfig::serial().with_chunk_size(128));
    let mut archive = Archive::in_memory(config).unwrap();
    let id = archive.ingest(&payload(300, 0xFACE), "golden-doc").unwrap();
    let m = archive.manifest(&id).unwrap();
    let mut h = Sha256::new();
    h.update(id.as_str().as_bytes());
    h.update(&m.digest);
    for d in &m.shard_digests {
        h.update(d);
    }
    for p in &m.placement {
        h.update(&p.0.to_be_bytes());
    }
    h.update(&(m.logical_len as u64).to_be_bytes());
    hex(&h.finalize())
}

/// Pre-refactor golden digests: (policy, raw encode, chunked encode,
/// archive ingest). Generated against commit 3b865ea (the last
/// pre-refactor tree) via `golden_generate`.
const GOLDEN: &[(&str, &str, &str, &str)] = &[
    (
        "replication",
        "bc64f054d56ce0aa6b0db03961c6a8c9643677b2a55093562b114d68f3e6d7a4",
        "054e9c5daaf14962e60720289feabce38d28b452269bce297ee2bea88241a889",
        "474b9753976f470ecb9302bb157f0618aaae6f78df060de3e17b8783de665fd3",
    ),
    (
        "erasure",
        "bcdf8c4e65dd46e6f076b35e5e541998069a09171856606e0718bbdb2cfecb82",
        "f35a9f8e06ad24dbfa2c0ed486a5816eb4bb618c2050ff804188d255da6f7559",
        "9441adf129cc2d7691336dbd5c3b1a60a251af00250ee6645b10ffcd91444bcf",
    ),
    (
        "encrypted",
        "3668368da69536a58ebc3fb47140d1b4e2633d4d9c3a2800ba325e8d352a06d4",
        "4bd9562c1b4e3f3ac0b771e244837eae45753e586f17fcfd677704dde9617898",
        "9de6bdaee721173623ee59cd96db8a2e01ca5e513237271a2cb43e1229a0e6b9",
    ),
    (
        "cascade",
        "c95c48f86d2b26b090c0771ce4ddf038ef7f9557972b713f751010213b557046",
        "9369ff5ddbf094240301542f5b62fd79a3e92133740010bfd418155978f2185e",
        "0e7a5d029d154f9fbefd34e7a27aca521277146f30df488e7bc593c3f54ba595",
    ),
    (
        "aont-rs",
        "73c0b8b990c925162f97199230d358b33785f789a7575dddac42ad922d7ca8ab",
        "57e30a42224d1f8616916ede91084d3460e884590e4bb9242404c90177a8c8a7",
        "2b02a2598a65bcb82456674e3134172324b3ffc207bccb1136ca0b6d8eb6656b",
    ),
    (
        "shamir",
        "378e4824fc5405c98697f3c66cd75c2938e3bc3fb736574fff430cf2e7bda1c9",
        "98f2d81a6c2590f1fd1fff7e69a88cc6b8e2090732d609b7168f7fefc3c7a3f2",
        "a4c41c2475539913e090f852635f56e4fc55f5796302a856e3b25e93ee485020",
    ),
    (
        "packed",
        "b48f588d03ecbaa50ef7c6318d1983e635c815172707dcf3feba633b31efa5b6",
        "9ef2643b31143b10cf95ed54b0a23473809f544df6965e725bd9223073281104",
        "9effd2e78cf475d51422710b5f9d8d9393955d1ebcb33189721434277d391f20",
    ),
    (
        "lrss",
        "128c3766bbbc0df0406d948b193ab63eb66475da8c8b84adb250ad27fab5c004",
        "4b1c94030ecf65d9cb04e4bdb5bc9145bdd7f7fa3958f937f0142b85271d601a",
        "a130ee96de2a289742e2a05304c6487161e21e4a8e083fd35d53b5f8753fda89",
    ),
    (
        "entropic",
        "a8f04617a7199efdc4fb8ba5fe645c11edf6998a2487875267c0859dc157f3d0",
        "43d5e90a24e6504b2ef053a4133e5bae3e6ef171f8ab220e177716c33635417f",
        "a6a91f4485667f41274cb658dbf90f9a7ab39ff3cbc002cee2ca50d34b49079c",
    ),
];

#[test]
#[ignore = "generator: prints fresh golden vectors"]
fn golden_generate() {
    for (name, policy) in policies() {
        println!(
            "    (\"{name}\", \"{}\", \"{}\", \"{}\"),",
            raw_encode_digest(&policy),
            chunked_encode_digest(&policy),
            archive_ingest_digest(&policy),
        );
    }
}

#[test]
fn golden_vectors_reproduce_bit_for_bit() {
    assert_eq!(GOLDEN.len(), 9, "one golden row per policy");
    for (name, policy) in policies() {
        let row = GOLDEN
            .iter()
            .find(|(n, _, _, _)| *n == name)
            .unwrap_or_else(|| panic!("no golden row for {name}"));
        assert_eq!(
            raw_encode_digest(&policy),
            row.1,
            "{name}: raw encode drifted"
        );
        assert_eq!(
            chunked_encode_digest(&policy),
            row.2,
            "{name}: chunked pipeline drifted"
        );
        assert_eq!(
            archive_ingest_digest(&policy),
            row.3,
            "{name}: archive ingest drifted"
        );
    }
}

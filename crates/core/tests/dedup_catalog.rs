//! The archive catalog as a block: `commit_catalog` serializes every
//! manifest row into a payload that is itself dedup'd into the block
//! store, so ONE root hash recovers the entire archive — names, logical
//! lengths, payload digests, and per-object Merkle roots — and every
//! object below it. Plus the maintenance dispatches dedup mode reroutes:
//! re-encode campaigns that skip already-migrated shared blocks,
//! proactive refresh over block shares, and the guards on paths that
//! cannot express shared blocks (re-wrap, shard transfer).

use aeon_cas::ChunkerParams;
use aeon_core::dedup::DedupConfig;
use aeon_core::{Archive, ArchiveConfig, ArchiveError, IntegrityMode, PolicyKind};
use aeon_crypto::{ChaChaDrbg, CryptoRng, SuiteId};

fn small_dedup() -> DedupConfig {
    DedupConfig {
        chunker: ChunkerParams {
            min_size: 512,
            target_size: 2048,
            max_size: 8192,
            seed: 42,
        },
        index_capacity: 1 << 10,
        fanout: 4,
    }
}

fn dedup_archive(policy: PolicyKind) -> Archive {
    let config = ArchiveConfig::new(policy)
        .with_integrity(IntegrityMode::DigestOnly)
        .with_dedup(small_dedup());
    Archive::in_memory(config).unwrap()
}

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn catalog_recovers_the_whole_archive_from_one_root() {
    let mut archive = dedup_archive(PolicyKind::ErasureCoded { data: 3, parity: 2 });
    let docs: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| (format!("doc-{i}"), payload(100 + i, (6 + i as usize) << 10)))
        .collect();
    for (name, data) in &docs {
        archive.ingest(data, name).unwrap();
    }
    let catalog_root = archive.commit_catalog().unwrap();

    // From the catalog root alone: every object's name, length, digest,
    // and root — and from each root, the payload itself.
    let entries = archive.catalog_entries(&catalog_root).unwrap();
    assert_eq!(entries.len(), docs.len());
    for (name, data) in &docs {
        let entry = entries
            .iter()
            .find(|e| &e.name == name)
            .unwrap_or_else(|| panic!("catalog lost object {name}"));
        assert_eq!(entry.logical_len, data.len() as u64);
        let recovered = archive.read_object_by_root(&entry.root).unwrap();
        assert_eq!(&recovered, data, "object {name} lost through the catalog");
    }
}

#[test]
fn catalog_requires_dedup_mode() {
    let mut classic = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::Replication { copies: 3 })
            .with_integrity(IntegrityMode::DigestOnly),
    )
    .unwrap();
    classic.ingest(b"plain object", "doc").unwrap();
    assert!(matches!(
        classic.commit_catalog(),
        Err(ArchiveError::UnsupportedOperation(_))
    ));
}

#[test]
fn reencode_campaign_skips_already_migrated_shared_blocks() {
    let mut archive = dedup_archive(PolicyKind::ErasureCoded { data: 3, parity: 2 });
    let base = payload(7, 12 << 10);
    let mut v2 = base.clone();
    v2.extend_from_slice(&payload(8, 2 << 10));
    let id1 = archive.ingest(&base, "v1").unwrap();
    let id2 = archive.ingest(&v2, "v2").unwrap();

    let new_policy = PolicyKind::Encrypted {
        suite: SuiteId::Aes256CtrHmac,
        data: 3,
        parity: 2,
    };
    let first = archive.reencode_object(&id1, new_policy.clone()).unwrap();
    assert!(first.0 > 0, "first migration reads its blocks");
    // Every block of v1 is now under the new policy; migrating v2 only
    // touches its unshared tail blocks — the dedup campaign saving.
    let second = archive.reencode_object(&id2, new_policy.clone()).unwrap();
    assert!(
        second.0 < first.0,
        "shared blocks re-read during second migration: {} vs {}",
        second.0,
        first.0
    );
    assert_eq!(archive.retrieve(&id1).unwrap(), base);
    assert_eq!(archive.retrieve(&id2).unwrap(), v2);
    for (hash, rec) in archive.blocks() {
        assert_eq!(
            rec.policy, new_policy,
            "block {hash} left behind by the campaign"
        );
    }
    // Third pass: nothing left to migrate at all.
    let third = archive.reencode_object(&id2, new_policy).unwrap();
    assert_eq!(third.0, 0, "fully migrated object still read blocks");
}

#[test]
fn refresh_rerandomizes_dedup_shamir_blocks_in_place() {
    let mut archive = dedup_archive(PolicyKind::Shamir {
        threshold: 3,
        shares: 5,
    });
    let data = payload(21, 10 << 10);
    let id = archive.ingest(&data, "doc").unwrap();
    let before: Vec<Vec<[u8; 32]>> = archive
        .manifest(&id)
        .unwrap()
        .blocks
        .as_ref()
        .unwrap()
        .blocks
        .iter()
        .map(|h| archive.block_record(h).unwrap().shard_digests.clone())
        .collect();
    let cost = archive.refresh_object(&id).unwrap();
    assert!(cost.messages > 0, "refresh reported no protocol traffic");
    assert_eq!(archive.manifest(&id).unwrap().refresh_epochs, 1);
    let after: Vec<Vec<[u8; 32]>> = archive
        .manifest(&id)
        .unwrap()
        .blocks
        .as_ref()
        .unwrap()
        .blocks
        .iter()
        .map(|h| archive.block_record(h).unwrap().shard_digests.clone())
        .collect();
    assert_ne!(before, after, "refresh left block shares unchanged");
    assert_eq!(archive.retrieve(&id).unwrap(), data);
}

#[test]
fn unsupported_paths_are_guarded_not_wrong() {
    let mut archive = dedup_archive(PolicyKind::Cascade {
        suites: vec![SuiteId::Aes256CtrHmac],
        data: 2,
        parity: 2,
    });
    let id = archive.ingest(&payload(31, 6 << 10), "doc").unwrap();
    // Re-wrap would silently re-layer shared blocks for other objects.
    assert!(matches!(
        archive.add_cascade_layer(&id, SuiteId::ChaCha20Poly1305),
        Err(ArchiveError::UnsupportedOperation(_))
    ));
    // Shard transfer has no representation for block references.
    let mut link = aeon_channel::transport::Link::new(1.0, 1_000_000.0);
    assert!(matches!(
        aeon_core::transfer::ship_computational(&archive, &id, &mut link, 9),
        Err(ArchiveError::UnsupportedOperation(_))
    ));
}

#[test]
fn verify_reports_dedup_block_health() {
    let mut archive = dedup_archive(PolicyKind::ErasureCoded { data: 3, parity: 2 });
    let id = archive.ingest(&payload(41, 8 << 10), "doc").unwrap();
    let schedule = aeon_integrity::timestamp::SigBreakSchedule::default();
    let health = archive.verify(&id, &schedule).unwrap();
    assert!(health.intact);
    assert_eq!(health.shards_required, 3);
    assert!(health.shards_available >= 3);
}

/// Non-dedup archives are bit-for-bit unaffected by this PR: the same
/// seed and payload produce the same manifests whether or not the dedup
/// module is compiled in — `blocks` is simply `None`.
#[test]
fn classic_mode_manifests_carry_no_block_refs() {
    let mut classic = Archive::in_memory(
        ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
            .with_integrity(IntegrityMode::DigestOnly),
    )
    .unwrap();
    let id = classic.ingest(&payload(51, 4 << 10), "doc").unwrap();
    assert!(classic.manifest(&id).unwrap().blocks.is_none());
    assert!(classic.dedup_stats().is_none());
}

//! Source-scan guard for the storage seam: every shard read and write
//! in aeon-core must flow through `PlanExecutor` in `executor.rs`, so
//! retry budgets, rng derivation, batching, and attempt accounting
//! stay in one place. This test parses the crate's own sources and
//! fails if any other module calls `Cluster` shard transfer methods or
//! `StorageNode::{get,put}`/`{get,put}_batch` directly. Test modules
//! (everything at and after the first `#[cfg(test)]`) are exempt —
//! they may poke nodes to stage losses and inspect raw shards.

use std::fs;
use std::path::Path;

/// Substrings that mark a direct shard transfer on the cluster or a
/// node handle. `delete`/`keys`/`len` are deliberately absent: fleet
/// loss injection and scans may enumerate and drop shards without
/// going through the executor, because those are not transfers.
const FORBIDDEN: &[&str] = &[
    ".get_shards(",
    ".put_shards(",
    ".get_shards_retrying(",
    ".put_shards_retrying(",
    ".get_shards_batched_retrying(",
    ".put_shards_batched_retrying(",
    ".get_batch(",
    ".put_batch(",
    ".get(&ShardKey",
    ".put(&ShardKey",
    // Parallel-lane dispatch primitives: lane bookkeeping and charge
    // diversion must stay behind the executor/cluster seam, or virtual
    // elapsed time stops being a function of the plan alone.
    ".dispatch_lanes(",
    ".divert(",
    ".lane_clock(",
    "LaneDispatch",
];

/// Strip line comments, then truncate at the first `#[cfg(test)]`:
/// everything after it is test scaffolding, which is allowed to
/// bypass the seam.
fn non_test_source(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = line.split("//").next().unwrap_or("");
        out.push_str(code);
        out.push('\n');
    }
    out
}

#[test]
fn only_executor_touches_the_storage_seam() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files: Vec<_> = fs::read_dir(&src)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(
        files.iter().any(|p| p.ends_with("executor.rs")),
        "seam scan must see executor.rs; crate layout changed?"
    );

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        if path.ends_with("executor.rs") {
            continue; // the seam itself
        }
        scanned += 1;
        let body = non_test_source(&fs::read_to_string(path).unwrap());
        for (lineno, line) in body.lines().enumerate() {
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    violations.push(format!(
                        "{}:{}: `{}` — route this through PlanExecutor",
                        path.file_name().unwrap().to_string_lossy(),
                        lineno + 1,
                        pat,
                    ));
                }
            }
        }
    }
    assert!(
        scanned >= 5,
        "expected to scan the core modules, saw {scanned}"
    );
    assert!(
        violations.is_empty(),
        "direct shard transfers outside executor.rs:\n{}",
        violations.join("\n")
    );
}

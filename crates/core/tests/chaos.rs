//! Chaos scenario: a seeded 100-epoch campaign over a cluster of
//! [`FaultyNode`]s — ingest, degraded reads, and repair interleaved
//! with transient I/O errors, bit flips, torn writes, latency, and a
//! scheduled outage — asserting zero data loss within the redundancy
//! budget and bit-for-bit reproducibility from the seed.
//!
//! The seed comes from `AEON_CHAOS_SEED` (default 1); CI pins three.

use aeon_core::{Archive, ArchiveConfig, IntegrityMode, ObjectId, PolicyKind, RetryPolicy};
use aeon_store::faults::{faulty_in_memory_cluster, FaultEvent, FaultPlan, FaultyNode};
use aeon_store::node::{MemoryNode, StorageNode};
use aeon_store::Cluster;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("AEON_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

const EPOCHS: u64 = 100;

/// Everything a campaign run produces, for determinism comparison.
#[derive(Debug, PartialEq)]
struct CampaignLog {
    /// Per-node injected-fault logs.
    events: Vec<Vec<FaultEvent>>,
    /// Reads that failed mid-campaign (e.g. during the outage window).
    failed_reads: u32,
    /// Ingests the fault load rejected outright.
    failed_ingests: u32,
    /// Per-object repair failures summed over mid-campaign sweeps.
    repair_failures: u32,
    /// Object count at the end.
    objects: usize,
}

/// Runs the 100-epoch campaign and asserts the data-loss invariant:
/// after the final repair sweep every surviving object reads back
/// bit-identically.
fn run_campaign(seed: u64) -> CampaignLog {
    // Rates are calibrated to stay (overwhelmingly) within the (5, 3)
    // budget between repair sweeps: ~15 shard reads per object per
    // cycle at 0.2% flip each makes a triple-rot-in-one-cycle overrun
    // a < 1e-3 per-campaign event, so any seed is expected to pass.
    let plan = FaultPlan::new(seed)
        .with_transient_io_rate(0.05)
        .with_bit_flip_rate(0.002)
        .with_torn_write_rate(0.04)
        .with_mean_latency_ms(2)
        .with_offline_window(40, 43);
    let (cluster, handles) = faulty_in_memory_cluster(&["s0", "s1", "s2", "s3", "s4"], 1, &plan);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly);
    let mut archive = Archive::with_cluster(config, cluster).unwrap();

    let mut objects: Vec<(ObjectId, Vec<u8>)> = Vec::new();
    let mut log = CampaignLog {
        events: Vec::new(),
        failed_reads: 0,
        failed_ingests: 0,
        repair_failures: 0,
        objects: 0,
    };
    for epoch in 0..EPOCHS {
        for h in &handles {
            h.set_epoch(epoch);
        }
        match epoch % 5 {
            0 => {
                // Ingest a fresh object (fails outright during the outage).
                let payload: Vec<u8> = (0..128u32)
                    .map(|i| (i as u8) ^ (epoch as u8).wrapping_mul(37))
                    .collect();
                match archive.ingest(&payload, &format!("obj-{epoch}")) {
                    Ok(id) => objects.push((id, payload)),
                    Err(_) => log.failed_ingests += 1,
                }
            }
            2 if !objects.is_empty() => {
                // Degraded read of a rotating victim. Within the budget a
                // read either returns the exact payload or a typed error
                // (outage window) — never wrong bytes.
                let (id, data) = &objects[(epoch as usize / 5) % objects.len()];
                match archive.retrieve(id) {
                    Ok(got) => assert_eq!(&got, data, "seed {seed}: wrong bytes at {epoch}"),
                    Err(_) => log.failed_reads += 1,
                }
            }
            4 => {
                // Repair sweep; per-object failures don't stop it.
                let outcome = archive.repair_all();
                log.repair_failures += outcome.failed.len() as u32;
            }
            _ => {}
        }
    }

    // Outage over: a final sweep must leave the fleet fully healthy.
    for h in &handles {
        h.set_epoch(EPOCHS);
    }
    let outcome = archive.repair_all();
    assert!(
        outcome.all_ok(),
        "seed {seed}: final repair sweep left objects broken: {:?}",
        outcome.failed
    );
    for (id, data) in &objects {
        assert_eq!(
            &archive.retrieve(id).unwrap(),
            data,
            "seed {seed}: data loss on {id} within the redundancy budget"
        );
    }

    log.events = handles.iter().map(|h| h.events()).collect();
    log.objects = objects.len();
    log
}

#[test]
fn chaos_campaign_zero_data_loss() {
    let log = run_campaign(chaos_seed());
    assert!(log.objects > 0, "fault load prevented every ingest");
    assert!(
        log.events.iter().any(|e| !e.is_empty()),
        "chaos plan injected nothing — the campaign tested nothing"
    );
}

/// Digest of a campaign log, for cross-refactor pinning: any change to
/// the sequence of node operations (and therefore injected faults)
/// shifts this value.
fn log_digest(log: &CampaignLog) -> String {
    let rendered = format!(
        "{:?}|{}|{}|{}|{}",
        log.events, log.failed_reads, log.failed_ingests, log.repair_failures, log.objects
    );
    aeon_crypto::Sha256::digest(rendered.as_bytes())
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// Pinned pre-refactor (commit 3b865ea) seed-1 campaign log digest.
/// Proves the Codec/Plan/Executor refactor left the exact sequence of
/// cluster I/O — and so the injected fault stream — unchanged.
/// Regenerate (only for an intended I/O-sequence change) with:
/// `cargo test -p aeon-core --test chaos -- --ignored --nocapture`
const PINNED_SEED1_LOG_DIGEST: &str =
    "30155ce7333742891040a20bcbb1cd5d2a0109c14154c3d2820e197614d7f266";

#[test]
#[ignore = "generator: prints the seed-1 campaign log digest"]
fn chaos_log_digest_generate() {
    println!("seed-1 log digest: {}", log_digest(&run_campaign(1)));
}

#[test]
fn chaos_campaign_event_log_matches_pinned_digest() {
    assert_eq!(
        log_digest(&run_campaign(1)),
        PINNED_SEED1_LOG_DIGEST,
        "seed-1 campaign event log drifted across a refactor"
    );
}

#[test]
fn chaos_campaign_replays_identically() {
    let seed = chaos_seed();
    let first = run_campaign(seed);
    let second = run_campaign(seed);
    assert_eq!(
        first, second,
        "seed {seed}: identical seeds must replay identical campaigns"
    );
    let other = run_campaign(seed ^ 0x5EED_CAFE);
    assert_ne!(
        first.events, other.events,
        "distinct seeds should inject distinct fault sequences"
    );
}

/// The acceptance criterion from the fault-model contract: with
/// injected failures on exactly `n - k` nodes, a read succeeds, each
/// dead node is retried no more than the policy's attempt cap, and
/// healthy nodes are hit exactly once.
#[test]
fn degraded_read_bounds_attempts_on_dead_nodes() {
    let handles: Vec<MemoryNode> = (0..5)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let retry = RetryPolicy::default().with_attempts(3);
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 3, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(retry.clone());
    let mut archive = Archive::with_cluster(config, cluster).unwrap();
    let payload = b"exactly n-k nodes down".to_vec();
    let id = archive.ingest(&payload, "acceptance").unwrap();

    // Take down exactly n - k = 2 of the nodes holding shards.
    let placement = archive.manifest(&id).unwrap().placement.clone();
    let dead: Vec<_> = placement.iter().take(2).copied().collect();
    for d in &dead {
        handles
            .iter()
            .find(|h| h.id() == *d)
            .unwrap()
            .set_offline(true);
    }

    let (got, report) = archive.retrieve_with_report(&id).unwrap();
    assert_eq!(got, payload);
    for d in &dead {
        assert_eq!(
            report.attempts_for(*d),
            retry.max_attempts,
            "dead node retried past the policy cap"
        );
    }
    for alive in placement.iter().filter(|n| !dead.contains(n)) {
        assert_eq!(
            report.attempts_for(*alive),
            1,
            "healthy node hit more than once"
        );
    }
    assert_eq!(report.failed_shards().len(), 2);
    assert!(
        archive.cluster().clock().now().as_millis() > 0,
        "backoff was charged to the cluster clock"
    );
}

/// Offline windows end: a cluster-wide outage mid-campaign heals
/// without operator action once the epoch clock leaves the window.
#[test]
fn outage_window_heals_by_epoch_clock() {
    let plan = FaultPlan::new(9).with_offline_window(5, 8);
    let (cluster, handles) = faulty_in_memory_cluster(&["a", "b", "c"], 1, &plan);
    let config = ArchiveConfig::new(PolicyKind::Replication { copies: 3 })
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(RetryPolicy::none());
    let mut archive = Archive::with_cluster(config, cluster).unwrap();
    let id = archive.ingest(b"through the outage", "w").unwrap();

    let set_all = |epoch: u64, hs: &[Arc<FaultyNode>]| {
        for h in hs {
            h.set_epoch(epoch);
        }
    };
    set_all(5, &handles);
    assert!(
        archive.retrieve(&id).is_err(),
        "all nodes are in the window"
    );
    set_all(8, &handles);
    assert_eq!(archive.retrieve(&id).unwrap(), b"through the outage");
}

//! The corruption matrix, extended to dedup mode. A dedup'd object has
//! no shard set of its own — it references shared, convergently
//! encoded blocks — so the matrix changes shape: a corrupted *shared*
//! block must surface as a typed integrity failure in **every** object
//! referencing it, a within-budget repair of one object must heal the
//! shared block for all of them, and the convergent encoding must make
//! two objects sharing a block share its stored shards byte-for-byte.

use aeon_cas::ChunkerParams;
use aeon_core::dedup::DedupConfig;
use aeon_core::{
    block_object_id, Archive, ArchiveConfig, ArchiveError, IntegrityMode, PipelineConfig,
    PolicyKind,
};
use aeon_crypto::{ChaChaDrbg, CryptoRng, SuiteId};
use aeon_store::node::{MemoryNode, NodeId, ShardKey, StorageNode};
use aeon_store::Cluster;
use proptest::prelude::*;
use std::sync::Arc;

/// One representative of each of the nine policy families.
fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Replication { copies: 4 },
        PolicyKind::ErasureCoded { data: 3, parity: 2 },
        PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 3,
            parity: 2,
        },
        PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 2,
            parity: 2,
        },
        PolicyKind::AontRs { data: 3, parity: 2 },
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        PolicyKind::PackedShamir {
            privacy: 2,
            pack: 2,
            shares: 6,
        },
        PolicyKind::LeakageResilientShamir {
            threshold: 2,
            shares: 4,
            source_len: 32,
        },
        PolicyKind::Entropic { data: 2, parity: 2 },
    ]
}

/// Small chunks so a few KiB of payload spans several blocks.
fn small_dedup() -> DedupConfig {
    DedupConfig {
        chunker: ChunkerParams {
            min_size: 512,
            target_size: 2048,
            max_size: 8192,
            seed: 42,
        },
        index_capacity: 1 << 10,
        fanout: 4,
    }
}

fn dedup_archive(policy: &PolicyKind, workers: usize) -> (Archive, Vec<MemoryNode>) {
    let n = policy.shard_count().max(1);
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_pipeline(PipelineConfig::serial().with_workers(workers))
        .with_dedup(small_dedup());
    (Archive::with_cluster(config, cluster).unwrap(), handles)
}

fn node_of(handles: &[MemoryNode], id: NodeId) -> &MemoryNode {
    handles.iter().find(|h| h.id() == id).expect("node exists")
}

/// Incompressible payload (every policy accepts it, including Entropic).
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = ChaChaDrbg::from_u64_seed(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// A data block referenced by both objects (panics if none is shared).
fn shared_data_block(
    archive: &Archive,
    a: &aeon_core::ObjectId,
    b: &aeon_core::ObjectId,
) -> aeon_cas::BlockHash {
    let ba = archive.manifest(a).unwrap().blocks.unwrap().blocks;
    let bb = archive.manifest(b).unwrap().blocks.unwrap().blocks;
    *ba.iter()
        .find(|h| bb.contains(h))
        .expect("objects share a block")
}

/// Deletes shard `idx` of block `hash`.
fn lose_block_shard(
    archive: &Archive,
    handles: &[MemoryNode],
    hash: &aeon_cas::BlockHash,
    idx: usize,
) {
    let rec = archive.block_record(hash).expect("block exists");
    let ctx = block_object_id(hash);
    node_of(handles, rec.placement[idx])
        .delete(&ShardKey::new(&ctx, idx as u32))
        .unwrap();
}

/// Flips one bit of shard `idx` of block `hash` (silent bit-rot).
fn flip_block_shard(
    archive: &Archive,
    handles: &[MemoryNode],
    hash: &aeon_cas::BlockHash,
    idx: usize,
    bit: u64,
) {
    let rec = archive.block_record(hash).expect("block exists");
    let ctx = block_object_id(hash);
    let node = node_of(handles, rec.placement[idx]);
    let key = ShardKey::new(&ctx, idx as u32);
    let mut bytes = node.get(&key).unwrap();
    let target = (bit % (bytes.len() as u64 * 8)) as usize;
    bytes[target / 8] ^= 1 << (target % 8);
    node.corrupt(&key, bytes);
}

/// Two versions of one document: v2 is v1 with a tail appended, so the
/// two objects share their prefix blocks.
fn ingest_versions(
    archive: &mut Archive,
    seed: u64,
) -> (aeon_core::ObjectId, aeon_core::ObjectId, Vec<u8>, Vec<u8>) {
    let v1 = payload(seed, 12 << 10);
    let mut v2 = v1.clone();
    v2.extend_from_slice(&payload(seed ^ 0xffff, 2 << 10));
    let id1 = archive.ingest(&v1, "v1").unwrap();
    let id2 = archive.ingest(&v2, "v2").unwrap();
    (id1, id2, v1, v2)
}

proptest! {
    // 2 cases x 9 policies keeps the matrix affordable; the seeds vary
    // payload content, loss rotation, and flip position.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Losses within the per-block budget: both objects still read back
    /// bit-identically, for every policy.
    #[test]
    fn dedup_losses_within_budget_roundtrip(seed in any::<u64>(), rot in any::<u64>()) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = dedup_archive(&policy, 1);
            let (id1, id2, v1, v2) = ingest_versions(&mut archive, seed);
            let shared = shared_data_block(&archive, &id1, &id2);
            for j in 0..(n - k) {
                lose_block_shard(&archive, &handles, &shared, (rot as usize + j) % n);
            }
            prop_assert_eq!(&archive.retrieve(&id1).unwrap(), &v1, "policy {:?}", &policy);
            prop_assert_eq!(&archive.retrieve(&id2).unwrap(), &v2, "policy {:?}", &policy);
        }
    }

    /// A shared block corrupted beyond budget fails typed in EVERY
    /// referencing object — each error names the object being read, so
    /// callers can tell which of their reads is poisoned.
    #[test]
    fn corrupt_shared_block_fails_every_referencing_object(seed in any::<u64>(), bit in any::<u64>()) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = dedup_archive(&policy, 1);
            let (id1, id2, _, _) = ingest_versions(&mut archive, seed);
            let shared = shared_data_block(&archive, &id1, &id2);
            for j in 0..(n - k + 1) {
                flip_block_shard(&archive, &handles, &shared, j, bit.wrapping_add(j as u64));
            }
            for id in [&id1, &id2] {
                match archive.retrieve(id) {
                    Err(ArchiveError::IntegrityViolation(bad)) => prop_assert_eq!(&bad, id),
                    other => prop_assert!(false, "policy {:?}: expected typed integrity failure for {:?}, got {:?}", &policy, id, other),
                }
            }
        }
    }

    /// Losses beyond budget (no corruption in evidence) fail as a typed
    /// degradation naming the referencing object.
    #[test]
    fn dedup_losses_beyond_budget_fail_typed(seed in any::<u64>()) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = dedup_archive(&policy, 1);
            let (id1, id2, _, _) = ingest_versions(&mut archive, seed);
            let shared = shared_data_block(&archive, &id1, &id2);
            for j in 0..(n - k + 1) {
                lose_block_shard(&archive, &handles, &shared, j);
            }
            for id in [&id1, &id2] {
                match archive.retrieve(id) {
                    Err(ArchiveError::DegradedBeyondBudget { id: bad, .. }) => prop_assert_eq!(&bad, id),
                    other => prop_assert!(false, "policy {:?}: expected degradation for {:?}, got {:?}", &policy, id, other),
                }
            }
        }
    }

    /// Within-budget damage to a shared block: repairing ONE object
    /// heals the block once, and every referencing object reads clean
    /// afterwards.
    #[test]
    fn one_repair_heals_all_referencing_objects(seed in any::<u64>()) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = dedup_archive(&policy, 1);
            let (id1, id2, v1, v2) = ingest_versions(&mut archive, seed);
            let shared = shared_data_block(&archive, &id1, &id2);
            for j in 0..(n - k) {
                lose_block_shard(&archive, &handles, &shared, j);
            }
            let report = archive.repair_object(&id1).unwrap();
            prop_assert!(report.missing_before >= n - k, "policy {:?}", &policy);
            prop_assert_eq!(report.missing_after, 0, "policy {:?}", &policy);
            prop_assert_eq!(&archive.retrieve(&id1).unwrap(), &v1);
            prop_assert_eq!(&archive.retrieve(&id2).unwrap(), &v2);
            // The heal was shared: repairing the second object now
            // finds nothing to do.
            let again = archive.repair_object(&id2).unwrap();
            prop_assert_eq!(again.missing_before, 0, "policy {:?}", &policy);
        }
    }
}

/// Convergent-encoding regression: block encode contexts derive from
/// the block's content hash, not from `"{id}#chunk{j}"` positions, so
/// two objects sharing a block share its stored shards. The second
/// ingest of identical content must add zero stored bytes and zero new
/// blocks.
#[test]
fn identical_blocks_share_stored_shards() {
    for policy in policies() {
        let (mut archive, _) = dedup_archive(&policy, 1);
        let data = payload(7, 12 << 10);
        let id1 = archive.ingest(&data, "first").unwrap();
        let blocks_before = archive.blocks().count();
        let stored_before = archive.cluster().total_stored_bytes();
        let id2 = archive.ingest(&data, "second").unwrap();
        assert_eq!(
            archive.blocks().count(),
            blocks_before,
            "policy {policy:?}: identical payload minted new blocks"
        );
        assert_eq!(
            archive.cluster().total_stored_bytes(),
            stored_before,
            "policy {policy:?}: identical payload stored new shard bytes"
        );
        assert_ne!(id1, id2, "objects stay distinct even when content dedups");
        assert_eq!(archive.retrieve(&id1).unwrap(), data);
        assert_eq!(archive.retrieve(&id2).unwrap(), data);
    }
}

/// Worker-count independence: per-block encode seeds are derived from
/// block hashes before the pool fans out, so 1 worker and 4 workers
/// produce byte-identical block shards, placements, and Merkle roots.
#[test]
fn dedup_encoding_is_worker_count_independent() {
    for policy in policies() {
        let (mut serial, _) = dedup_archive(&policy, 1);
        let (mut pooled, _) = dedup_archive(&policy, 4);
        let data = payload(11, 20 << 10);
        let id_s = serial.ingest(&data, "doc").unwrap();
        let id_p = pooled.ingest(&data, "doc").unwrap();
        assert_eq!(id_s, id_p);
        let ms = serial.manifest(&id_s).unwrap().blocks.clone().unwrap();
        let mp = pooled.manifest(&id_p).unwrap().blocks.clone().unwrap();
        assert_eq!(
            ms.root, mp.root,
            "policy {policy:?}: roots diverged across worker counts"
        );
        assert_eq!(ms.blocks, mp.blocks);
        for hash in &ms.blocks {
            let rs = serial.block_record(hash).unwrap();
            let rp = pooled.block_record(hash).unwrap();
            assert_eq!(
                rs.shard_digests, rp.shard_digests,
                "policy {policy:?}: block {hash} shards differ across worker counts"
            );
            assert_eq!(rs.placement, rp.placement);
        }
        assert_eq!(serial.retrieve(&id_s).unwrap(), data);
        assert_eq!(pooled.retrieve(&id_p).unwrap(), data);
    }
}

/// Refcount hygiene under the matrix: deleting one version releases
/// only its references; the surviving version still reads, and deleting
/// it drains the block map to empty.
#[test]
fn delete_releases_shared_blocks_exactly_once() {
    for policy in policies() {
        let (mut archive, _) = dedup_archive(&policy, 1);
        let (id1, id2, v1, _) = ingest_versions(&mut archive, 23);
        archive.delete(&id2).unwrap();
        assert_eq!(archive.retrieve(&id1).unwrap(), v1, "policy {policy:?}");
        archive.delete(&id1).unwrap();
        assert_eq!(
            archive.blocks().count(),
            0,
            "policy {policy:?}: orphan blocks after deleting every object"
        );
    }
}

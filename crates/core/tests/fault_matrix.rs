//! The corruption matrix: for every one of the nine policies, any
//! combination of up to `n - k` lost or bit-flipped shards must
//! round-trip bit-identically, and `n - k + 1` losses must fail with a
//! typed error — never a panic, never silently wrong bytes.

use aeon_core::{Archive, ArchiveConfig, ArchiveError, IntegrityMode, ObjectId, PolicyKind};
use aeon_crypto::SuiteId;
use aeon_store::node::{MemoryNode, NodeId, ShardKey, StorageNode};
use aeon_store::Cluster;
use proptest::prelude::*;
use std::sync::Arc;

/// One representative of each of the nine policy families.
fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Replication { copies: 4 },
        PolicyKind::ErasureCoded { data: 3, parity: 2 },
        PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 3,
            parity: 2,
        },
        PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 2,
            parity: 2,
        },
        PolicyKind::AontRs { data: 3, parity: 2 },
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        PolicyKind::PackedShamir {
            privacy: 2,
            pack: 2,
            shares: 6,
        },
        PolicyKind::LeakageResilientShamir {
            threshold: 2,
            shares: 4,
            source_len: 32,
        },
        PolicyKind::Entropic { data: 2, parity: 2 },
    ]
}

fn archive_for(policy: &PolicyKind) -> (Archive, Vec<MemoryNode>) {
    let n = policy.shard_count().max(1);
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(policy.clone()).with_integrity(IntegrityMode::DigestOnly);
    (Archive::with_cluster(config, cluster).unwrap(), handles)
}

fn node_of(handles: &[MemoryNode], id: NodeId) -> &MemoryNode {
    handles.iter().find(|h| h.id() == id).expect("node exists")
}

/// Deletes the shard at placement slot `idx`.
fn lose_shard(archive: &Archive, handles: &[MemoryNode], id: &ObjectId, idx: usize) {
    let placement = &archive.manifest(id).unwrap().placement;
    node_of(handles, placement[idx])
        .delete(&ShardKey::new(id.as_str(), idx as u32))
        .unwrap();
}

/// Flips one bit of the shard at placement slot `idx` (via the node's
/// corruption injection, modelling silent bit-rot).
fn flip_shard(archive: &Archive, handles: &[MemoryNode], id: &ObjectId, idx: usize, bit: u64) {
    let placement = &archive.manifest(id).unwrap().placement;
    let node = node_of(handles, placement[idx]);
    let key = ShardKey::new(id.as_str(), idx as u32);
    let mut bytes = node.get(&key).unwrap();
    let target = (bit % (bytes.len() as u64 * 8)) as usize;
    bytes[target / 8] ^= 1 << (target % 8);
    node.corrupt(&key, bytes);
}

proptest! {
    // 4 cases x 9 policies x 4 scenarios is plenty; CI's chaos job
    // re-runs this in release across three pinned seeds.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Up to `n - k` shards deleted: the payload still reads back
    /// bit-identically, for every policy.
    #[test]
    fn losses_within_budget_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        rot in any::<u64>(),
    ) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = archive_for(&policy);
            let id = archive.ingest(&payload, "matrix").unwrap();
            for j in 0..(n - k) {
                lose_shard(&archive, &handles, &id, (rot as usize + j) % n);
            }
            let got = archive.retrieve(&id).unwrap();
            prop_assert_eq!(&got, &payload, "policy {:?}", policy);
        }
    }

    /// Up to `n - k` shards bit-flipped: the digest filter discards the
    /// rotted shards and the decode proceeds from the clean remainder.
    #[test]
    fn bit_flips_within_budget_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        rot in any::<u64>(),
        bit in any::<u64>(),
    ) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = archive_for(&policy);
            let id = archive.ingest(&payload, "matrix").unwrap();
            for j in 0..(n - k) {
                flip_shard(&archive, &handles, &id, (rot as usize + j) % n, bit.wrapping_add(j as u64));
            }
            let got = archive.retrieve(&id).unwrap();
            prop_assert_eq!(&got, &payload, "policy {:?}", policy);
        }
    }

    /// `n - k + 1` shards deleted: a typed DegradedBeyondBudget error
    /// carrying the exact deficit — not a panic, not garbage bytes.
    #[test]
    fn losses_beyond_budget_fail_typed(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        rot in any::<u64>(),
    ) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = archive_for(&policy);
            let id = archive.ingest(&payload, "matrix").unwrap();
            for j in 0..(n - k + 1) {
                lose_shard(&archive, &handles, &id, (rot as usize + j) % n);
            }
            match archive.retrieve(&id) {
                Err(ArchiveError::DegradedBeyondBudget { available, required, .. }) => {
                    prop_assert_eq!(available, k - 1, "policy {:?}", policy);
                    prop_assert_eq!(required, k, "policy {:?}", policy);
                }
                other => prop_assert!(false, "policy {:?}: expected DegradedBeyondBudget, got {:?}", policy, other.map(|_| "Ok(payload)")),
            }
        }
    }

    /// `n - k + 1` shards bit-flipped: with corruption in evidence the
    /// failure is an IntegrityViolation — still typed, still no panic.
    #[test]
    fn bit_flips_beyond_budget_fail_typed(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        rot in any::<u64>(),
        bit in any::<u64>(),
    ) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let (mut archive, handles) = archive_for(&policy);
            let id = archive.ingest(&payload, "matrix").unwrap();
            for j in 0..(n - k + 1) {
                flip_shard(&archive, &handles, &id, (rot as usize + j) % n, bit.wrapping_add(j as u64));
            }
            prop_assert!(
                matches!(archive.retrieve(&id), Err(ArchiveError::IntegrityViolation(_))),
                "policy {:?}", policy
            );
        }
    }
}

//! Cross-check: the fleet simulator's measured loss fraction must agree
//! with `aeon_store::durability::analytic_unavailability` at a pinned
//! parameter point.
//!
//! The mapping: with node wipes off and an unlimited repair budget,
//! every repairable object is restored to full health before the next
//! epoch's loss injection, so each epoch is an independent Bernoulli
//! trial in which each of the `n` shards goes down with probability
//! `shard_loss_prob` and the object is lost when more than `n - k` go
//! down together. That is exactly the analytic model's per-day binomial
//! tail with per-shard downtime fraction `q = daily_failure_prob ×
//! repair_days`, unioned over `horizon_days` trials — so we pin
//! `daily_failure_prob = shard_loss_prob`, `repair_days = 1`, and
//! `horizon_days = epochs`.
//!
//! Tolerance follows the precedent in `aeon-store`'s own
//! `analytic_tracks_simulation_order_of_magnitude`: the analytic /
//! measured ratio must land in (0.2, 5.0). The fleet sim is seeded, so
//! the measured fraction is a fixed number — the band documents how
//! much model error we accept, not run-to-run noise.

use aeon_core::{
    Archive, ArchiveConfig, FleetSimConfig, IntegrityMode, PolicyKind, RepairQueueOrder,
};
use aeon_store::clock::SimDuration;
use aeon_store::durability::{analytic_unavailability, DurabilityParams};
use aeon_store::node::{MemoryNode, StorageNode};
use aeon_store::Cluster;
use std::sync::Arc;

#[test]
fn fleet_sim_loss_fraction_tracks_analytic_model() {
    // [4, 2] erasure layout on four nodes: one shard per node per
    // object, loss = three or more of four shards down in one epoch.
    let handles: Vec<MemoryNode> = (0..4u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(PolicyKind::ErasureCoded { data: 2, parity: 2 })
        .with_integrity(IntegrityMode::DigestOnly);
    let mut archive = Archive::with_cluster(config, cluster).unwrap();

    let objects = 48;
    for i in 0..objects {
        archive
            .ingest(&vec![(i % 251) as u8 + 1; 80 + i * 3], &format!("o-{i}"))
            .unwrap();
    }

    let epochs = 8;
    let shard_loss_prob = 0.25;
    let cfg = FleetSimConfig {
        seed: 20_240_731,
        epochs,
        epoch: SimDuration::from_days(30),
        node_wipe_prob: 0.0,
        shard_loss_prob,
        repair_bytes_per_epoch: u64::MAX,
        reserved_foreground: 0.0,
        order: RepairQueueOrder::Priority,
    };
    let report = archive.run_fleet_sim(&cfg);
    assert_eq!(report.objects, objects);
    assert!(
        report.objects_lost > 0,
        "at q = 0.25 over 8 epochs some of {objects} objects must be lost"
    );
    let measured = report.objects_lost as f64 / report.objects as f64;

    let analytic = analytic_unavailability(DurabilityParams {
        shards: 4,
        read_threshold: 2,
        daily_failure_prob: shard_loss_prob,
        repair_days: 1,
        horizon_days: epochs as u32,
    });

    let ratio = analytic / measured;
    assert!(
        (0.2..5.0).contains(&ratio),
        "analytic {analytic:.4} vs measured {measured:.4} (ratio {ratio:.2}) \
         outside the documented order-of-magnitude band"
    );
}

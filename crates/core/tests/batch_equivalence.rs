//! Batched-vs-sequential equivalence: for every one of the nine
//! policies, batched plan execution (shard writes grouped by target
//! node and coalesced into one framed attempt per node) must leave the
//! cluster **byte-identical** to per-object sequential execution, and
//! must surface the identical typed failures under deterministic
//! transient fault injection. Batching is allowed to change *when* the
//! virtual clock is charged — never *what* any node stores.
//!
//! Fault decisions in `FaultyNode` are pure in `(seed, op kind, shard
//! key, nth access)`, so per-key attempt schedules — one coalesced
//! first attempt plus individual retries with the remaining budget —
//! see exactly the fault stream the sequential loop sees. The suites
//! here avoid offline windows and throughput decorators, whose
//! epoch/clock coupling is inherently order-sensitive.

use aeon_core::{Archive, ArchiveConfig, IntegrityMode, ObjectId, PolicyKind, RetryPolicy};
use aeon_crypto::SuiteId;
use aeon_store::faults::{FaultPlan, FaultyNode};
use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
use aeon_store::{Cluster, DispatchPolicy};
use proptest::prelude::*;
use std::sync::Arc;

/// One representative of each of the nine policy families.
fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Replication { copies: 4 },
        PolicyKind::ErasureCoded { data: 3, parity: 2 },
        PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 3,
            parity: 2,
        },
        PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 2,
            parity: 2,
        },
        PolicyKind::AontRs { data: 3, parity: 2 },
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        PolicyKind::PackedShamir {
            privacy: 2,
            pack: 2,
            shares: 6,
        },
        PolicyKind::LeakageResilientShamir {
            threshold: 2,
            shares: 4,
            source_len: 32,
        },
        PolicyKind::Entropic { data: 2, parity: 2 },
    ]
}

fn plain_archive(policy: &PolicyKind, workers: usize) -> (Archive, Vec<MemoryNode>) {
    plain_archive_dispatch(policy, workers, DispatchPolicy::Sequential)
}

fn plain_archive_dispatch(
    policy: &PolicyKind,
    workers: usize,
    dispatch: DispatchPolicy,
) -> (Archive, Vec<MemoryNode>) {
    let n = policy.shard_count().max(1);
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let mut config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_dispatch(dispatch);
    config.pipeline.workers = workers;
    (Archive::with_cluster(config, cluster).unwrap(), handles)
}

fn faulty_archive(policy: &PolicyKind, fault_seed: u64) -> (Archive, Vec<MemoryNode>) {
    faulty_archive_dispatch(policy, fault_seed, DispatchPolicy::Sequential)
}

fn faulty_archive_dispatch(
    policy: &PolicyKind,
    fault_seed: u64,
    dispatch: DispatchPolicy,
) -> (Archive, Vec<MemoryNode>) {
    let n = policy.shard_count().max(1);
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let plan = FaultPlan::new(fault_seed).with_transient_io_rate(0.3);
    let nodes: Vec<Arc<dyn StorageNode>> = handles
        .iter()
        .map(|h| {
            Arc::new(FaultyNode::new(
                Arc::new(h.clone()) as Arc<dyn StorageNode>,
                plan.for_node(h.id()),
            )) as Arc<dyn StorageNode>
        })
        .collect();
    let config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(RetryPolicy::default().with_attempts(3))
        .with_dispatch(dispatch);
    (
        Archive::with_cluster(config, Cluster::new(nodes)).unwrap(),
        handles,
    )
}

/// Every stored `(node, key, bytes)` triple, in a canonical order.
fn cluster_contents(
    handles: &[MemoryNode],
) -> Vec<(aeon_store::node::NodeId, String, u32, Vec<u8>)> {
    let mut contents = Vec::new();
    for h in handles {
        for key in h.keys() {
            let bytes = h.get(&key).expect("listed key reads");
            contents.push((h.id(), key.object.clone(), key.shard, bytes));
        }
    }
    contents.sort();
    contents
}

fn payloads(seed: u8, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            (0..64 + i * 17)
                .map(|j| seed.wrapping_mul(31).wrapping_add((i * 251 + j) as u8))
                .collect()
        })
        .collect()
}

fn delete_shard(archive: &Archive, handles: &[MemoryNode], id: &ObjectId, idx: usize) {
    let placement = &archive.manifest(id).unwrap().placement;
    handles
        .iter()
        .find(|h| h.id() == placement[idx])
        .unwrap()
        .delete(&ShardKey::new(id.as_str(), idx as u32))
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fault-free ingest: `ingest_many` (one cross-object node-grouped
    /// flush) produces the same ids, manifests, and stored bytes as
    /// sequential `ingest` calls, for every policy and across worker
    /// counts.
    #[test]
    fn batched_ingest_is_byte_identical(
        seed in any::<u8>(),
        count in 1usize..4,
        worker_pick in 0usize..2,
    ) {
        let workers = [1usize, 3][worker_pick];
        for policy in policies() {
            let items = payloads(seed, count);
            let named: Vec<(&[u8], &str)> = items
                .iter()
                .enumerate()
                .map(|(i, p)| (p.as_slice(), ["a", "b", "c", "d"][i]))
                .collect();

            let (mut seq, seq_handles) = plain_archive(&policy, workers);
            let seq_ids: Vec<ObjectId> = named
                .iter()
                .map(|(p, n)| seq.ingest(p, n).unwrap())
                .collect();

            let (mut bat, bat_handles) = plain_archive(&policy, workers);
            let bat_ids = bat.ingest_many(&named).unwrap();

            prop_assert_eq!(&seq_ids, &bat_ids, "policy {:?}", policy);
            for id in &seq_ids {
                let a = seq.manifest(id).unwrap();
                let b = bat.manifest(id).unwrap();
                prop_assert_eq!(a.digest, b.digest);
                prop_assert_eq!(a.shard_digests, b.shard_digests);
                prop_assert_eq!(a.placement, b.placement);
            }
            prop_assert_eq!(
                cluster_contents(&seq_handles),
                cluster_contents(&bat_handles),
                "policy {:?}: stored bytes must be identical", policy
            );
            for (id, (payload, _)) in bat_ids.iter().zip(&named) {
                prop_assert_eq!(&bat.retrieve(id).unwrap(), payload);
            }
        }
    }

    /// Repair under deterministic transient faults: the batched repair
    /// path (coalesced first attempt per node, individual retries with
    /// the remaining budget) leaves stored bytes identical to the
    /// sequential path and reports the identical typed outcome.
    #[test]
    fn batched_repair_matches_sequential_under_transient_faults(
        fault_seed in any::<u64>(),
        lose_rot in any::<u64>(),
    ) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let payload = b"equivalence under fire".to_vec();

            let build = || {
                let (mut archive, handles) = faulty_archive(&policy, fault_seed);
                let id = archive.ingest(&payload, "eq").unwrap();
                for j in 0..(n - k) {
                    delete_shard(&archive, &handles, &id, (lose_rot as usize + j) % n);
                }
                (archive, handles, id)
            };

            let (mut seq, seq_handles, seq_id) = build();
            let seq_result = seq.repair_object(&seq_id);

            let (mut bat, bat_handles, bat_id) = build();
            let bat_result = bat.repair_object_batched(&bat_id);

            match (&seq_result, &bat_result) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.missing_before, b.missing_before, "policy {:?}", policy);
                    prop_assert_eq!(a.missing_after, b.missing_after, "policy {:?}", policy);
                    prop_assert_eq!(&a.method, &b.method, "policy {:?}", policy);
                    prop_assert_eq!(a.bytes_read, b.bytes_read, "policy {:?}", policy);
                    prop_assert_eq!(a.bytes_written, b.bytes_written, "policy {:?}", policy);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(
                        format!("{a:?}"), format!("{b:?}"),
                        "policy {:?}: typed failures must match", policy
                    );
                }
                _ => prop_assert!(
                    false,
                    "policy {:?}: outcomes diverged (seq {:?}, batched {:?})",
                    policy, seq_result.is_ok(), bat_result.is_ok()
                ),
            }
            prop_assert_eq!(
                cluster_contents(&seq_handles),
                cluster_contents(&bat_handles),
                "policy {:?}: stored bytes must be identical after repair", policy
            );
        }
    }

    /// Parallel lane dispatch on the write side: `ingest_many` under
    /// `DispatchPolicy::Parallel` mints the same ids and manifests and
    /// leaves the cluster byte-identical to sequential dispatch, for
    /// every policy and across worker counts.
    #[test]
    fn parallel_dispatch_ingest_is_byte_identical(
        seed in any::<u8>(),
        count in 1usize..4,
        worker_pick in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_pick];
        for policy in policies() {
            let items = payloads(seed, count);
            let named: Vec<(&[u8], &str)> = items
                .iter()
                .enumerate()
                .map(|(i, p)| (p.as_slice(), ["a", "b", "c", "d"][i]))
                .collect();

            let (mut seq, seq_handles) = plain_archive(&policy, 1);
            let seq_ids = seq.ingest_many(&named).unwrap();

            let (mut par, par_handles) =
                plain_archive_dispatch(&policy, 1, DispatchPolicy::Parallel { workers });
            let par_ids = par.ingest_many(&named).unwrap();

            prop_assert_eq!(&seq_ids, &par_ids, "policy {:?} workers {}", policy, workers);
            for id in &seq_ids {
                let a = seq.manifest(id).unwrap();
                let b = par.manifest(id).unwrap();
                prop_assert_eq!(a.digest, b.digest);
                prop_assert_eq!(&a.shard_digests, &b.shard_digests);
                prop_assert_eq!(&a.placement, &b.placement);
            }
            prop_assert_eq!(
                cluster_contents(&seq_handles),
                cluster_contents(&par_handles),
                "policy {:?} workers {}: stored bytes must be identical", policy, workers
            );
        }
    }

    /// Parallel lane dispatch through batched repair under
    /// deterministic transient faults: typed outcomes and stored bytes
    /// equal the sequential-dispatch batched repair, for every policy
    /// and across worker counts.
    #[test]
    fn parallel_dispatch_repair_matches_sequential_under_faults(
        fault_seed in any::<u64>(),
        lose_rot in any::<u64>(),
        worker_pick in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_pick];
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let payload = b"equivalence under fire, in lanes".to_vec();

            let build = |dispatch| {
                let (mut archive, handles) =
                    faulty_archive_dispatch(&policy, fault_seed, dispatch);
                let id = archive.ingest(&payload, "eq").unwrap();
                for j in 0..(n - k) {
                    delete_shard(&archive, &handles, &id, (lose_rot as usize + j) % n);
                }
                (archive, handles, id)
            };

            let (mut seq, seq_handles, seq_id) = build(DispatchPolicy::Sequential);
            let seq_result = seq.repair_object_batched(&seq_id);

            let (mut par, par_handles, par_id) =
                build(DispatchPolicy::Parallel { workers });
            let par_result = par.repair_object_batched(&par_id);

            match (&seq_result, &par_result) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.missing_before, b.missing_before, "policy {:?}", policy);
                    prop_assert_eq!(a.missing_after, b.missing_after, "policy {:?}", policy);
                    prop_assert_eq!(&a.method, &b.method, "policy {:?}", policy);
                    prop_assert_eq!(a.bytes_read, b.bytes_read, "policy {:?}", policy);
                    prop_assert_eq!(a.bytes_written, b.bytes_written, "policy {:?}", policy);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(
                        format!("{a:?}"), format!("{b:?}"),
                        "policy {:?} workers {}: typed failures must match", policy, workers
                    );
                }
                _ => prop_assert!(
                    false,
                    "policy {:?} workers {}: outcomes diverged (seq {:?}, parallel {:?})",
                    policy, workers, seq_result.is_ok(), par_result.is_ok()
                ),
            }
            prop_assert_eq!(
                cluster_contents(&seq_handles),
                cluster_contents(&par_handles),
                "policy {:?} workers {}: stored bytes identical after repair", policy, workers
            );
        }
    }
}

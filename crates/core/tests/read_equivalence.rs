//! Batched-vs-sequential READ equivalence: the read-side twin of
//! `batch_equivalence.rs`. For every one of the nine policies, batched
//! retrieval (shard fetches grouped by source node and coalesced into
//! one framed request per node) must return **byte-identical**
//! payloads, surface the identical typed failures, and record the
//! identical per-key attempt schedules as the sequential per-shard
//! loop, under deterministic transient fault injection. Batching is
//! allowed to change *when* the virtual clock is charged — never what
//! any read returns.
//!
//! Fault decisions in `FaultyNode` are pure in `(seed, op kind, shard
//! key, nth access)`, and `get_batch` defaults to a per-key loop, so a
//! coalesced first attempt consumes exactly the access the sequential
//! loop would have; individual retries then spend the remaining budget
//! against the same fault stream. The suites here avoid offline
//! windows and throughput decorators, whose epoch/clock coupling is
//! inherently order-sensitive.

use aeon_cas::ChunkerParams;
use aeon_core::dedup::DedupConfig;
use aeon_core::{
    Archive, ArchiveConfig, IntegrityMode, ObjectId, PipelineConfig, PolicyKind, RetryPolicy,
};
use aeon_crypto::SuiteId;
use aeon_store::faults::{FaultPlan, FaultyNode};
use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
use aeon_store::{Cluster, DispatchPolicy};
use proptest::prelude::*;
use std::sync::Arc;

/// One representative of each of the nine policy families.
fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Replication { copies: 4 },
        PolicyKind::ErasureCoded { data: 3, parity: 2 },
        PolicyKind::Encrypted {
            suite: SuiteId::Aes256CtrHmac,
            data: 3,
            parity: 2,
        },
        PolicyKind::Cascade {
            suites: vec![SuiteId::Aes256CtrHmac, SuiteId::ChaCha20Poly1305],
            data: 2,
            parity: 2,
        },
        PolicyKind::AontRs { data: 3, parity: 2 },
        PolicyKind::Shamir {
            threshold: 3,
            shares: 5,
        },
        PolicyKind::PackedShamir {
            privacy: 2,
            pack: 2,
            shares: 6,
        },
        PolicyKind::LeakageResilientShamir {
            threshold: 2,
            shares: 4,
            source_len: 32,
        },
        PolicyKind::Entropic { data: 2, parity: 2 },
    ]
}

fn plain_archive(policy: &PolicyKind, workers: usize) -> (Archive, Vec<MemoryNode>) {
    let n = policy.shard_count().max(1);
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let cluster = Cluster::new(
        handles
            .iter()
            .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
            .collect(),
    );
    let mut config = ArchiveConfig::new(policy.clone()).with_integrity(IntegrityMode::DigestOnly);
    config.pipeline.workers = workers;
    (Archive::with_cluster(config, cluster).unwrap(), handles)
}

fn faulty_archive(policy: &PolicyKind, fault_seed: u64) -> (Archive, Vec<MemoryNode>) {
    faulty_archive_dispatch(policy, fault_seed, DispatchPolicy::Sequential)
}

fn faulty_archive_dispatch(
    policy: &PolicyKind,
    fault_seed: u64,
    dispatch: DispatchPolicy,
) -> (Archive, Vec<MemoryNode>) {
    let n = policy.shard_count().max(1);
    let handles: Vec<MemoryNode> = (0..n as u32)
        .map(|i| MemoryNode::new(i, format!("site-{i}")))
        .collect();
    let plan = FaultPlan::new(fault_seed).with_transient_io_rate(0.3);
    let nodes: Vec<Arc<dyn StorageNode>> = handles
        .iter()
        .map(|h| {
            Arc::new(FaultyNode::new(
                Arc::new(h.clone()) as Arc<dyn StorageNode>,
                plan.for_node(h.id()),
            )) as Arc<dyn StorageNode>
        })
        .collect();
    let config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_retry(RetryPolicy::default().with_attempts(3))
        .with_dispatch(dispatch);
    (
        Archive::with_cluster(config, Cluster::new(nodes)).unwrap(),
        handles,
    )
}

/// Small chunks so a few KiB of payload spans several blocks.
fn small_dedup() -> DedupConfig {
    DedupConfig {
        chunker: ChunkerParams {
            min_size: 512,
            target_size: 2048,
            max_size: 8192,
            seed: 42,
        },
        index_capacity: 1 << 10,
        fanout: 4,
    }
}

fn dedup_archive(policy: &PolicyKind, workers: usize) -> Archive {
    dedup_archive_dispatch(policy, workers, DispatchPolicy::Sequential)
}

fn dedup_archive_dispatch(
    policy: &PolicyKind,
    workers: usize,
    dispatch: DispatchPolicy,
) -> Archive {
    let n = policy.shard_count().max(1);
    let cluster = Cluster::new(
        (0..n as u32)
            .map(|i| Arc::new(MemoryNode::new(i, format!("site-{i}"))) as Arc<dyn StorageNode>)
            .collect(),
    );
    let config = ArchiveConfig::new(policy.clone())
        .with_integrity(IntegrityMode::DigestOnly)
        .with_pipeline(PipelineConfig::serial().with_workers(workers))
        .with_dedup(small_dedup())
        .with_dispatch(dispatch);
    Archive::with_cluster(config, cluster).unwrap()
}

fn payloads(seed: u8, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            (0..64 + i * 17)
                .map(|j| seed.wrapping_mul(31).wrapping_add((i * 251 + j) as u8))
                .collect()
        })
        .collect()
}

fn delete_shard(archive: &Archive, handles: &[MemoryNode], id: &ObjectId, idx: usize) {
    let placement = &archive.manifest(id).unwrap().placement;
    handles
        .iter()
        .find(|h| h.id() == placement[idx])
        .unwrap()
        .delete(&ShardKey::new(id.as_str(), idx as u32))
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fault-free retrieval: `retrieve_batched` and `retrieve_many`
    /// (one cross-object node-grouped fan-in) return the same bytes as
    /// sequential `retrieve` calls, for every policy and across worker
    /// counts, with identical per-shard attempt accounting.
    #[test]
    fn batched_retrieve_is_byte_identical(
        seed in any::<u8>(),
        count in 1usize..4,
        worker_pick in 0usize..2,
    ) {
        let workers = [1usize, 3][worker_pick];
        for policy in policies() {
            let items = payloads(seed, count);
            let named: Vec<(&[u8], &str)> = items
                .iter()
                .enumerate()
                .map(|(i, p)| (p.as_slice(), ["a", "b", "c", "d"][i]))
                .collect();
            let (mut archive, _handles) = plain_archive(&policy, workers);
            let ids: Vec<ObjectId> = named
                .iter()
                .map(|(p, n)| archive.ingest(p, n).unwrap())
                .collect();

            for (id, (payload, _)) in ids.iter().zip(&named) {
                let (seq, seq_report) = archive.retrieve_with_report(id).unwrap();
                let (bat, bat_report) = archive.retrieve_with_report_batched(id).unwrap();
                prop_assert_eq!(&seq, payload, "policy {:?}", policy);
                prop_assert_eq!(&seq, &bat, "policy {:?}: bytes identical", policy);
                prop_assert_eq!(
                    &seq_report.attempts, &bat_report.attempts,
                    "policy {:?}: per-key attempt schedules match", policy
                );
            }
            let many = archive.retrieve_many(&ids);
            prop_assert_eq!(many.len(), ids.len());
            for (got, (payload, _)) in many.iter().zip(&named) {
                prop_assert_eq!(
                    got.as_ref().unwrap(), payload,
                    "policy {:?}: retrieve_many matches", policy
                );
            }
        }
    }

    /// Degraded retrieval under deterministic transient faults: the
    /// batched fan-in (coalesced first attempt per node, individual
    /// retries with the remaining budget) returns byte-identical
    /// payloads, identical typed failures, and identical per-key
    /// attempt schedules, with shards deleted down to the read
    /// threshold.
    #[test]
    fn batched_retrieve_matches_sequential_under_transient_faults(
        fault_seed in any::<u64>(),
        lose_rot in any::<u64>(),
    ) {
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let payload = b"read equivalence under fire".to_vec();

            let build = || {
                let (mut archive, handles) = faulty_archive(&policy, fault_seed);
                let id = archive.ingest(&payload, "eq").unwrap();
                for j in 0..(n - k) {
                    delete_shard(&archive, &handles, &id, (lose_rot as usize + j) % n);
                }
                (archive, id)
            };

            let (seq, seq_id) = build();
            let seq_result = seq.retrieve_with_report(&seq_id);

            let (bat, bat_id) = build();
            let bat_result = bat.retrieve_with_report_batched(&bat_id);

            match (&seq_result, &bat_result) {
                (Ok((a, ra)), Ok((b, rb))) => {
                    prop_assert_eq!(a, b, "policy {:?}: payload bytes", policy);
                    prop_assert_eq!(
                        &ra.attempts, &rb.attempts,
                        "policy {:?}: per-key attempt schedules", policy
                    );
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(
                        format!("{a:?}"), format!("{b:?}"),
                        "policy {:?}: typed failures must match", policy
                    );
                }
                _ => prop_assert!(
                    false,
                    "policy {:?}: outcomes diverged (seq {:?}, batched {:?})",
                    policy, seq_result.is_ok(), bat_result.is_ok()
                ),
            }
        }
    }

    /// `retrieve_many` under deterministic transient faults: each
    /// object's outcome in the cross-object fan-in (payload bytes,
    /// typed failure, per-key attempt schedule) equals what a
    /// standalone sequential `retrieve_with_report` produces, because
    /// per-object rng derivation and per-key fault-stream consumption
    /// are unchanged by grouping.
    #[test]
    fn read_many_matches_per_object_sequential_under_faults(
        fault_seed in any::<u64>(),
        count in 2usize..4,
    ) {
        for policy in policies() {
            let items = payloads(fault_seed as u8, count);
            let named: Vec<(&[u8], &str)> = items
                .iter()
                .enumerate()
                .map(|(i, p)| (p.as_slice(), ["a", "b", "c", "d"][i]))
                .collect();

            let build = || {
                let (mut archive, _handles) = faulty_archive(&policy, fault_seed);
                let ids: Vec<ObjectId> = named
                    .iter()
                    .map(|(p, n)| archive.ingest(p, n).unwrap())
                    .collect();
                (archive, ids)
            };

            let (seq, seq_ids) = build();
            let seq_results: Vec<_> = seq_ids
                .iter()
                .map(|id| seq.retrieve(id))
                .collect();

            let (bat, bat_ids) = build();
            let bat_results = bat.retrieve_many(&bat_ids);

            for ((a, b), id) in seq_results.iter().zip(&bat_results).zip(&seq_ids) {
                match (a, b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(
                        x, y, "policy {:?} object {}: bytes", policy, id
                    ),
                    (Err(x), Err(y)) => prop_assert_eq!(
                        format!("{x:?}"), format!("{y:?}"),
                        "policy {:?} object {}: typed failures", policy, id
                    ),
                    _ => prop_assert!(
                        false,
                        "policy {:?} object {}: outcomes diverged (seq {:?}, batched {:?})",
                        policy, id, a.is_ok(), b.is_ok()
                    ),
                }
            }
        }
    }

    /// Parallel lane dispatch is invisible to everything but the
    /// clock: batched retrieval under `DispatchPolicy::Parallel`
    /// returns byte-identical payloads, identical typed failures, and
    /// identical per-key attempt schedules to sequential dispatch, for
    /// every policy and across worker counts, under deterministic
    /// transient faults with shards deleted down to the read
    /// threshold. (The companion pinned charge test — n-node balanced
    /// batch costs ~1/n of sequential — lives with the lane model in
    /// `aeon-store`.)
    #[test]
    fn parallel_dispatch_retrieve_matches_sequential_under_faults(
        fault_seed in any::<u64>(),
        lose_rot in any::<u64>(),
        worker_pick in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_pick];
        for policy in policies() {
            let n = policy.shard_count();
            let k = policy.read_threshold();
            let payload = b"read equivalence across lanes".to_vec();

            let build = |dispatch| {
                let (mut archive, handles) =
                    faulty_archive_dispatch(&policy, fault_seed, dispatch);
                let id = archive.ingest(&payload, "eq").unwrap();
                for j in 0..(n - k) {
                    delete_shard(&archive, &handles, &id, (lose_rot as usize + j) % n);
                }
                (archive, id)
            };

            let (seq, seq_id) = build(DispatchPolicy::Sequential);
            let seq_result = seq.retrieve_with_report_batched(&seq_id);

            let (par, par_id) = build(DispatchPolicy::Parallel { workers });
            let par_result = par.retrieve_with_report_batched(&par_id);

            match (&seq_result, &par_result) {
                (Ok((a, ra)), Ok((b, rb))) => {
                    prop_assert_eq!(a, b, "policy {:?} workers {}: payload bytes", policy, workers);
                    prop_assert_eq!(
                        &ra.attempts, &rb.attempts,
                        "policy {:?} workers {}: per-key attempt schedules", policy, workers
                    );
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(
                        format!("{a:?}"), format!("{b:?}"),
                        "policy {:?} workers {}: typed failures must match", policy, workers
                    );
                }
                _ => prop_assert!(
                    false,
                    "policy {:?} workers {}: outcomes diverged (seq {:?}, parallel {:?})",
                    policy, workers, seq_result.is_ok(), par_result.is_ok()
                ),
            }
        }
    }

    /// `retrieve_many`'s cross-object fan-in under parallel dispatch:
    /// each object's outcome equals the sequential-dispatch fan-in's,
    /// under deterministic transient faults.
    #[test]
    fn parallel_dispatch_retrieve_many_matches_sequential(
        fault_seed in any::<u64>(),
        count in 2usize..4,
        worker_pick in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_pick];
        for policy in policies() {
            let items = payloads(fault_seed as u8, count);
            let named: Vec<(&[u8], &str)> = items
                .iter()
                .enumerate()
                .map(|(i, p)| (p.as_slice(), ["a", "b", "c", "d"][i]))
                .collect();

            let build = |dispatch| {
                let (mut archive, _handles) =
                    faulty_archive_dispatch(&policy, fault_seed, dispatch);
                let ids: Vec<ObjectId> = named
                    .iter()
                    .map(|(p, n)| archive.ingest(p, n).unwrap())
                    .collect();
                (archive, ids)
            };

            let (seq, seq_ids) = build(DispatchPolicy::Sequential);
            let seq_results = seq.retrieve_many(&seq_ids);

            let (par, par_ids) = build(DispatchPolicy::Parallel { workers });
            let par_results = par.retrieve_many(&par_ids);

            for ((a, b), id) in seq_results.iter().zip(&par_results).zip(&seq_ids) {
                match (a, b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(
                        x, y, "policy {:?} object {}: bytes", policy, id
                    ),
                    (Err(x), Err(y)) => prop_assert_eq!(
                        format!("{x:?}"), format!("{y:?}"),
                        "policy {:?} object {}: typed failures", policy, id
                    ),
                    _ => prop_assert!(
                        false,
                        "policy {:?} object {}: outcomes diverged (seq {:?}, parallel {:?})",
                        policy, id, a.is_ok(), b.is_ok()
                    ),
                }
            }
        }
    }

    /// The dedup Merkle level walk under parallel dispatch: the
    /// level-by-level `read_many` fan-in reassembles byte-identical
    /// payloads, including duplicate-block payloads.
    #[test]
    fn parallel_dispatch_dedup_retrieve_is_byte_identical(
        seed in any::<u8>(),
        worker_pick in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_pick];
        for policy in policies() {
            let mut seq = dedup_archive(&policy, 1);
            let mut par =
                dedup_archive_dispatch(&policy, 1, DispatchPolicy::Parallel { workers });
            let repeated: Vec<u8> = (0..20_000u32)
                .map(|i| seed.wrapping_add((i % 1024) as u8))
                .collect();
            let seq_id = seq.ingest(&repeated, "rep").unwrap();
            let par_id = par.ingest(&repeated, "rep").unwrap();
            prop_assert_eq!(&seq_id, &par_id, "policy {:?}: ids identical", policy);
            prop_assert_eq!(
                seq.retrieve_batched(&seq_id).unwrap(),
                par.retrieve_batched(&par_id).unwrap(),
                "policy {:?}: dedup bytes identical across dispatch", policy
            );
        }
    }

    /// Dedup retrieval (fault-free): the batched level-by-level tree
    /// walk plus distinct-leaf batch fetch reassembles byte-identical
    /// payloads, including payloads with repeated content whose leaf
    /// lists carry duplicate block hashes.
    #[test]
    fn batched_dedup_retrieve_is_byte_identical(
        seed in any::<u8>(),
        worker_pick in 0usize..2,
    ) {
        let workers = [1usize, 3][worker_pick];
        for policy in policies() {
            let mut archive = dedup_archive(&policy, workers);
            // ~20 KiB with a repeating period well under the chunker
            // max: several blocks, some duplicated.
            let repeated: Vec<u8> = (0..20_000u32)
                .map(|i| seed.wrapping_add((i % 1024) as u8))
                .collect();
            let varied: Vec<u8> = (0..9_000u32)
                .map(|i| seed.wrapping_mul(17).wrapping_add((i % 4093) as u8))
                .collect();
            let id_a = archive.ingest(&repeated, "rep").unwrap();
            let id_b = archive.ingest(&varied, "var").unwrap();
            for (id, payload) in [(&id_a, &repeated), (&id_b, &varied)] {
                let seq = archive.retrieve(id).unwrap();
                let bat = archive.retrieve_batched(id).unwrap();
                prop_assert_eq!(&seq, payload, "policy {:?}", policy);
                prop_assert_eq!(&seq, &bat, "policy {:?}: dedup bytes identical", policy);
            }
            let many = archive.retrieve_many(&[id_a, id_b]);
            prop_assert_eq!(many[0].as_ref().unwrap(), &repeated);
            prop_assert_eq!(many[1].as_ref().unwrap(), &varied);
        }
    }
}

#[test]
fn retrieve_many_isolates_unknown_objects() {
    let policy = PolicyKind::ErasureCoded { data: 2, parity: 2 };
    let (mut archive, _handles) = plain_archive(&policy, 1);
    let id = archive.ingest(b"present", "p").unwrap();
    // An id minted by a different archive is unknown to this one.
    let (mut other, _other_handles) = plain_archive(&policy, 1);
    let ghost = other.ingest(b"elsewhere", "ghost").unwrap();
    let results = archive.retrieve_many(&[ghost.clone(), id.clone()]);
    assert!(matches!(
        results[0],
        Err(aeon_core::ArchiveError::UnknownObject(_))
    ));
    assert_eq!(results[1].as_ref().unwrap(), b"present");
}

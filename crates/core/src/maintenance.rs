//! Maintenance campaigns: proactive refresh, re-encode, emergency
//! re-wrap.
//!
//! These are the operations the paper prices in §3.2 — the work an
//! archive must keep doing for a century. Each follows the same shape:
//! fetch via a [`crate::plan::ReadPlan`], compute the replacement
//! bytes in the pure plan layer, write back through the
//! [`crate::executor::PlanExecutor`].

use crate::archive::{Archive, ArchiveError, ObjectId};
use crate::pipeline;
use crate::plan;
use crate::policy::PolicyKind;
use aeon_crypto::{Sha256, SuiteId};
use aeon_secretshare::proactive::ProtocolCost;
use aeon_store::clock::SimDuration;

/// Byte and virtual-time accounting from one object's re-encode, read
/// off the cluster's [`SimClock`](aeon_store::clock::SimClock) at the
/// phase boundaries (there is no parallel time accounting: the clock is
/// the only ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectReencode {
    /// Stored bytes fetched under the old encoding.
    pub bytes_read: u64,
    /// Stored bytes written under the new encoding.
    pub bytes_written: u64,
    /// Virtual time the read phase took (fetch + injected stalls +
    /// retry backoff; zero on clusters whose nodes charge nothing).
    pub read_time: SimDuration,
    /// Virtual time the write phase took (delete + write-back).
    pub write_time: SimDuration,
}

impl Archive {
    /// Runs one proactive-refresh epoch on a Shamir-encoded object:
    /// reads every share, applies a Herzberg refresh round, writes the
    /// re-randomized shares back. Returns the protocol communication
    /// cost.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnsupportedOperation`] for non-Shamir
    /// policies and cluster/share errors otherwise.
    pub fn refresh_object(&mut self, id: &ObjectId) -> Result<ProtocolCost, ArchiveError> {
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        if manifest.blocks.is_some() {
            return self.refresh_dedup_object(id, &manifest);
        }
        let PolicyKind::Shamir { threshold, .. } = manifest.policy else {
            return Err(ArchiveError::UnsupportedOperation(
                "proactive refresh requires the Shamir policy",
            ));
        };
        // The Herzberg round needs every shareholder's current share;
        // a corrupt share would poison the whole next epoch, so the
        // digest filter treats it as absent.
        let snap = self.fetch_shards(&manifest, "refresh");
        let mut stored: Vec<Vec<u8>> = Vec::with_capacity(snap.shards.len());
        for s in &snap.shards {
            let Some(bytes) = s else {
                return Err(ArchiveError::UnsupportedOperation(
                    "refresh requires all shareholders online",
                ));
            };
            stored.push(bytes.clone());
        }
        let (blobs, cost) = plan::plan_refresh(threshold, &manifest.meta, &mut self.rng, stored)?;
        let digests: Vec<[u8; 32]> = blobs.iter().map(|b| Sha256::digest(b.as_slice())).collect();
        let mut put_rng = self.op_rng("refresh", id.as_str());
        let outcome =
            self.executor()
                .write_shards(id.as_str(), &manifest.placement, &blobs, &mut put_rng);
        // Record the new epoch's digests unconditionally: any share
        // that failed to land is stale (previous epoch) and must be
        // filtered on read — `threshold` fresh shares still
        // reconstruct, so the object survives a degraded write.
        self.manifests
            .update(id, |entry| {
                entry.shard_digests = digests;
                entry.refresh_epochs += 1;
            })
            .expect("manifest exists");
        if outcome.written < threshold {
            return Err(ArchiveError::DegradedBeyondBudget {
                id: id.clone(),
                available: outcome.written,
                required: threshold,
                corrupt: 0,
            });
        }
        Ok(cost)
    }

    /// Re-encodes an object under a new policy (the unit of a
    /// re-encryption campaign). Returns bytes read + written.
    ///
    /// # Errors
    ///
    /// Propagates retrieval and ingest errors.
    pub fn reencode_object(
        &mut self,
        id: &ObjectId,
        new_policy: PolicyKind,
    ) -> Result<(u64, u64), ArchiveError> {
        self.reencode_object_timed(id, new_policy)
            .map(|o| (o.bytes_read, o.bytes_written))
    }

    /// [`Archive::reencode_object`] with the source fetch coalesced
    /// (one framed batch request per node). Returns bytes read +
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates retrieval and ingest errors.
    pub fn reencode_object_batched(
        &mut self,
        id: &ObjectId,
        new_policy: PolicyKind,
    ) -> Result<(u64, u64), ArchiveError> {
        self.reencode_object_timed_batched(id, new_policy)
            .map(|o| (o.bytes_read, o.bytes_written))
    }

    /// [`Archive::reencode_object`] with per-phase virtual-time
    /// accounting: the cluster clock is snapshotted at the read/write
    /// phase boundary, so throughput-charged clusters measure exactly
    /// the §3.2 read and write-back costs. The object's shards are
    /// fetched **once** — the same digest-filtered fetch is both the
    /// decode's data source and the campaign's bytes-read figure, so
    /// no accounting read double-charges the clock.
    ///
    /// # Errors
    ///
    /// Propagates retrieval and ingest errors.
    pub fn reencode_object_timed(
        &mut self,
        id: &ObjectId,
        new_policy: PolicyKind,
    ) -> Result<ObjectReencode, ArchiveError> {
        self.reencode_object_timed_with(id, new_policy, false)
    }

    /// [`Archive::reencode_object_timed`] with the source fetch
    /// coalesced: the campaign drivers' single-object step uses this so
    /// a bandwidth-metered re-encode pays one positioning delay per
    /// node instead of one per shard. Same rng derivation as the
    /// sequential fetch, so decoded bytes and typed failures are
    /// identical under deterministic fault injection; only the
    /// measured `read_time` differs. (Dedup objects re-encode through
    /// their own block-level path either way.)
    ///
    /// # Errors
    ///
    /// Propagates retrieval and ingest errors.
    pub fn reencode_object_timed_batched(
        &mut self,
        id: &ObjectId,
        new_policy: PolicyKind,
    ) -> Result<ObjectReencode, ArchiveError> {
        self.reencode_object_timed_with(id, new_policy, true)
    }

    fn reencode_object_timed_with(
        &mut self,
        id: &ObjectId,
        new_policy: PolicyKind,
        batched: bool,
    ) -> Result<ObjectReencode, ArchiveError> {
        new_policy.validate()?;
        if self
            .manifests
            .with(id, |m| m.blocks.is_some())
            .unwrap_or(false)
        {
            return self.reencode_dedup_object(id, new_policy);
        }
        let clock = self.cluster().clock().clone();
        let read_start = clock.now();
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        let snap = if batched {
            self.fetch_shards_batched(&manifest, "retrieve")
        } else {
            self.fetch_shards(&manifest, "retrieve")
        };
        let required = manifest.policy.read_threshold();
        if snap.valid < required {
            if snap.corrupt > 0 {
                return Err(ArchiveError::IntegrityViolation(id.clone()));
            }
            return Err(ArchiveError::DegradedBeyondBudget {
                id: id.clone(),
                available: snap.valid,
                required,
                corrupt: snap.corrupt,
            });
        }
        let payload = pipeline::decode_object(
            &manifest.policy,
            &self.keys,
            id.as_str(),
            &snap.shards,
            &manifest.meta,
            self.config.pipeline.workers,
        )?;
        if Sha256::digest(&payload) != manifest.digest {
            return Err(ArchiveError::IntegrityViolation(id.clone()));
        }
        let bytes_read: u64 = snap.shards.iter().flatten().map(|s| s.len() as u64).sum();
        let write_start = clock.now();
        // Encode fresh under the new policy (through the chunked
        // pipeline, so campaigns inherit its parallelism).
        let write = plan::plan_write(
            &new_policy,
            &self.keys,
            &mut self.rng,
            id,
            &payload,
            &self.config.pipeline,
        )?;
        let bytes_written: u64 = write.shards.iter().map(|s| s.len() as u64).sum();
        let placement = self.executor().place(id.as_str(), write.shards.len())?;
        self.executor().delete(id.as_str(), &manifest.placement);
        let mut put_rng = self.op_rng("reencode", id.as_str());
        let outcome =
            self.executor()
                .write_shards(id.as_str(), &placement, &write.shards, &mut put_rng);
        self.manifests
            .update(id, |entry| {
                entry.policy = write.policy.clone();
                entry.meta = write.meta.clone();
                entry.placement = placement.clone();
                entry.shard_digests = write.shard_digests.clone();
            })
            .expect("manifest exists");
        if outcome.written < write.required {
            return Err(ArchiveError::DegradedBeyondBudget {
                id: id.clone(),
                available: outcome.written,
                required: write.required,
                corrupt: 0,
            });
        }
        Ok(ObjectReencode {
            bytes_read,
            bytes_written,
            read_time: write_start - read_start,
            write_time: clock.now() - write_start,
        })
    }

    /// Re-encodes every object under `new_policy`, returning total
    /// objects migrated and bytes (read, written) — the campaign the
    /// paper prices in §3.2.
    ///
    /// # Errors
    ///
    /// Propagates the first per-object failure.
    pub fn reencode_all(
        &mut self,
        new_policy: PolicyKind,
    ) -> Result<(usize, u64, u64), ArchiveError> {
        let ids: Vec<ObjectId> = self.manifests.ids();
        let mut read = 0u64;
        let mut written = 0u64;
        for id in &ids {
            let (r, w) = self.reencode_object(id, new_policy.clone())?;
            read += r;
            written += w;
        }
        Ok((ids.len(), read, written))
    }

    /// Adds an outer cascade layer to a Cascade-encoded object *without
    /// decrypting the inner layers* — ArchiveSafeLT's emergency re-wrap.
    /// The shards are read, the layered ciphertext is rebuilt from the
    /// erasure code, one more AEAD layer is applied, and the result is
    /// re-dispersed. Unlike [`Archive::reencode_object`], no plaintext and
    /// no inner-layer keys are touched.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnsupportedOperation`] for non-Cascade
    /// objects, and shard/crypto errors otherwise.
    pub fn add_cascade_layer(
        &mut self,
        id: &ObjectId,
        new_suite: SuiteId,
    ) -> Result<(), ArchiveError> {
        let manifest = self
            .manifests
            .get(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        // A dedup object's layers live per-block and blocks are shared:
        // wrapping one object's blocks would silently re-wrap every
        // object referencing them. Campaigns handle this case.
        if manifest.blocks.is_some() {
            return Err(ArchiveError::UnsupportedOperation(
                "re-wrap of dedup objects is not supported; run a re-encode campaign instead",
            ));
        }
        // Reject non-layered policies before touching any node.
        if manifest
            .policy
            .codec()
            .rewrapped_policy(new_suite)
            .is_none()
        {
            return Err(ArchiveError::UnsupportedOperation(
                "re-wrap requires the Cascade policy",
            ));
        }
        let snap = self.fetch_shards(&manifest, "rewrap");
        let (new_shards, new_policy) =
            plan::plan_rewrap(&manifest, &self.keys, &snap.shards, new_suite)?;
        let shard_digests: Vec<[u8; 32]> = new_shards
            .iter()
            .map(|s| Sha256::digest(s.as_slice()))
            .collect();
        let required = new_policy.read_threshold();
        let mut put_rng = self.op_rng("rewrap", id.as_str());
        let outcome = self.executor().write_shards(
            id.as_str(),
            &manifest.placement,
            &new_shards,
            &mut put_rng,
        );
        self.manifests
            .update(id, |entry| {
                entry.policy = new_policy;
                // Shards that missed the rewrap hold the old layering;
                // the new digests make reads treat them as stale until
                // repaired.
                entry.shard_digests = shard_digests;
            })
            .expect("manifest exists");
        if outcome.written < required {
            return Err(ArchiveError::DegradedBeyondBudget {
                id: id.clone(),
                available: outcome.written,
                required,
                corrupt: 0,
            });
        }
        Ok(())
    }
}

//! Pure plans: I/O-free descriptions of archive operations.
//!
//! Planning and doing are separate layers. Functions here consume
//! manifests, payloads, and fetched shard snapshots and produce plan
//! *values* — [`WritePlan`], [`ReadPlan`], [`RepairPlan`] — that state
//! exactly which bytes belong at which shard slots. They are
//! deterministic in their inputs (including the rng state passed in)
//! and perform no node I/O; applying a plan against a cluster is the
//! [`crate::executor::PlanExecutor`]'s job, and nobody else's. The
//! split is the paper's §3.2 agility argument made structural: a codec
//! change swaps the plan contents, a storage change swaps the executor,
//! and neither can reach around the seam.

use crate::archive::{ArchiveError, Manifest, ObjectId};
use crate::codec::{CodecRepair, RepairMethod};
use crate::keys::KeyStore;
use crate::pipeline::{self, PipelineConfig};
use crate::policy::{EncodingMeta, PolicyError, PolicyKind};
use aeon_crypto::{CryptoRng, Sha256, SuiteId};
use aeon_secretshare::proactive::{self, ProtocolCost};
use aeon_secretshare::shamir::Share;
use aeon_store::node::NodeId;

/// A fully determined object write: every shard byte and its digest,
/// computed before any node is touched.
#[derive(Debug, Clone)]
pub struct WritePlan {
    /// The object being written.
    pub object: ObjectId,
    /// The policy the shards are encoded under.
    pub policy: PolicyKind,
    /// One blob per placement slot.
    pub shards: Vec<Vec<u8>>,
    /// SHA-256 of each blob, indexed like `shards`.
    pub shard_digests: Vec<[u8; 32]>,
    /// Encode-time metadata for the manifest.
    pub meta: EncodingMeta,
    /// Minimum shards that must land durably for the object to remain
    /// readable (the policy's read threshold).
    pub required: usize,
}

/// A fully determined object read: where the shards live and what
/// their bytes must hash to.
#[derive(Debug, Clone)]
pub struct ReadPlan {
    /// The object being read.
    pub object: ObjectId,
    /// Node placement, one entry per shard.
    pub placement: Vec<NodeId>,
    /// Expected SHA-256 of each stored blob; mismatching shards are
    /// discarded as bit-rot rather than fed to the decoder.
    pub shard_digests: Vec<[u8; 32]>,
}

impl ReadPlan {
    /// The read plan recorded in a manifest.
    pub fn for_manifest(manifest: &Manifest) -> Self {
        ReadPlan {
            object: manifest.id.clone(),
            placement: manifest.placement.clone(),
            shard_digests: manifest.shard_digests.clone(),
        }
    }
}

/// A fully determined partial repair: the exact bytes to put back at
/// each missing shard slot.
#[derive(Debug, Clone)]
pub struct RepairPlan {
    /// The object being repaired.
    pub object: ObjectId,
    /// `(shard index, rebuilt bytes)` for each slot to rewrite, in
    /// ascending index order.
    pub writes: Vec<(usize, Vec<u8>)>,
    /// The strategy the codec used.
    pub method: RepairMethod,
}

/// What [`plan_repair`] decided.
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// A partial repair is possible; apply the plan.
    Apply(RepairPlan),
    /// The policy has no partial-repair structure: the caller must
    /// decode the object and re-ingest it (a full re-encode).
    Reencode,
}

/// Plans an object write: encodes the payload through the chunked
/// pipeline and digests every shard. Pure but rng-consuming — the
/// caller's DRBG advances exactly as the encode demands.
///
/// # Errors
///
/// Returns [`PolicyError`] on invalid policies or encode failures.
pub fn plan_write<R: CryptoRng + ?Sized>(
    policy: &PolicyKind,
    keys: &KeyStore,
    rng: &mut R,
    id: &ObjectId,
    payload: &[u8],
    cfg: &PipelineConfig,
) -> Result<WritePlan, PolicyError> {
    let encoded = pipeline::encode_object(policy, keys, rng, id.as_str(), payload, cfg)?;
    let shard_digests: Vec<[u8; 32]> = encoded
        .shards
        .iter()
        .map(|s| Sha256::digest(s.as_slice()))
        .collect();
    Ok(WritePlan {
        object: id.clone(),
        policy: policy.clone(),
        required: policy.read_threshold(),
        shard_digests,
        shards: encoded.shards,
        meta: encoded.meta,
    })
}

/// Plans the repair of an object's missing shard slots from the
/// digest-filtered snapshot `shards` (`None` = missing). Chunked
/// objects are repaired chunk by chunk — the length-prefix framing is
/// not code material — and the frames are reassembled afterwards. For
/// Shamir this is byte-identical to interpolating the framed blobs
/// whole: every share carries the same framing constants, and Lagrange
/// coefficients sum to 1, so equal constants interpolate to themselves.
///
/// # Errors
///
/// Returns decode errors when too few survivors remain.
pub fn plan_repair(
    manifest: &Manifest,
    shards: &[Option<Vec<u8>>],
    missing: &[usize],
) -> Result<RepairOutcome, ArchiveError> {
    let codec = manifest.policy.codec();
    let (all, method) = if let Some(chunked) = manifest.meta.chunked.clone() {
        let chunk_count = chunked.chunk_count();
        let columns: Vec<Option<Vec<Vec<u8>>>> = shards
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|b| pipeline::split_shard_segments(b, chunk_count))
                    .transpose()
            })
            .collect::<Result<_, _>>()
            .map_err(ArchiveError::Policy)?;
        let mut rebuilt: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(chunk_count); shards.len()];
        let mut method = RepairMethod::NotNeeded;
        for j in 0..chunk_count {
            let chunk_shards: Vec<Option<Vec<u8>>> = columns
                .iter()
                .map(|col| col.as_ref().map(|segments| segments[j].clone()))
                .collect();
            match codec.repair_chunk(&chunk_shards)? {
                CodecRepair::Rebuilt {
                    shards: chunk_all,
                    method: m,
                } => {
                    method = m;
                    for (column, segment) in rebuilt.iter_mut().zip(chunk_all) {
                        column.push(segment);
                    }
                }
                CodecRepair::FullReencode => return Ok(RepairOutcome::Reencode),
            }
        }
        (
            rebuilt
                .iter()
                .map(|segments| pipeline::join_shard_segments(segments))
                .collect::<Vec<Vec<u8>>>(),
            method,
        )
    } else {
        match codec.repair_chunk(shards)? {
            CodecRepair::Rebuilt { shards, method } => (shards, method),
            CodecRepair::FullReencode => return Ok(RepairOutcome::Reencode),
        }
    };
    let writes = missing.iter().map(|&m| (m, all[m].clone())).collect();
    Ok(RepairOutcome::Apply(RepairPlan {
        object: manifest.id.clone(),
        writes,
        method,
    }))
}

/// Plans one Herzberg proactive-refresh epoch over a Shamir object's
/// complete share set, returning the re-randomized blobs and the
/// protocol's communication cost. Chunked objects refresh each chunk's
/// share set independently: the zero-sharing delta must land on share
/// payloads only, never on the segment framing.
///
/// # Errors
///
/// Returns framing or secret-sharing protocol errors.
pub fn plan_refresh<R: CryptoRng + ?Sized>(
    threshold: usize,
    meta: &EncodingMeta,
    rng: &mut R,
    stored: Vec<Vec<u8>>,
) -> Result<(Vec<Vec<u8>>, ProtocolCost), ArchiveError> {
    if let Some(chunked) = meta.chunked.clone() {
        let chunk_count = chunked.chunk_count();
        let mut columns: Vec<Vec<Vec<u8>>> = stored
            .iter()
            .map(|b| pipeline::split_shard_segments(b, chunk_count))
            .collect::<Result<_, _>>()
            .map_err(ArchiveError::Policy)?;
        let mut total = ProtocolCost {
            messages: 0,
            bytes: 0,
        };
        for j in 0..chunk_count {
            let mut shares: Vec<Share> = columns
                .iter()
                .enumerate()
                .map(|(i, segments)| Share {
                    index: (i + 1) as u8,
                    data: segments[j].clone(),
                })
                .collect();
            let cost = proactive::refresh(rng, &mut shares, threshold)?;
            total.messages += cost.messages;
            total.bytes += cost.bytes;
            for (column, share) in columns.iter_mut().zip(shares) {
                column[j] = share.data;
            }
        }
        let blobs = columns
            .iter()
            .map(|segments| pipeline::join_shard_segments(segments))
            .collect();
        Ok((blobs, total))
    } else {
        let mut shares: Vec<Share> = stored
            .into_iter()
            .enumerate()
            .map(|(i, data)| Share {
                index: (i + 1) as u8,
                data,
            })
            .collect();
        let cost = proactive::refresh(rng, &mut shares, threshold)?;
        Ok((shares.into_iter().map(|s| s.data).collect(), cost))
    }
}

/// Plans an emergency outer re-wrap of a layered object from its
/// fetched shards: rebuilds each chunk's ciphertext from the erasure
/// code, has the codec apply one more AEAD layer, and re-encodes —
/// no plaintext, no inner-layer keys. Returns the new shard set and
/// the policy value describing the deepened stack.
///
/// # Errors
///
/// Returns [`ArchiveError::UnsupportedOperation`] for policies without
/// a layered structure, and shard/crypto errors otherwise.
pub fn plan_rewrap(
    manifest: &Manifest,
    keys: &KeyStore,
    shards: &[Option<Vec<u8>>],
    new_suite: SuiteId,
) -> Result<(Vec<Vec<u8>>, PolicyKind), ArchiveError> {
    let codec = manifest.policy.codec();
    let Some(new_policy) = codec.rewrapped_policy(new_suite) else {
        return Err(ArchiveError::UnsupportedOperation(
            "re-wrap requires the Cascade policy",
        ));
    };
    let id = manifest.id.as_str();
    let new_shards: Vec<Vec<u8>> = if let Some(chunked) = manifest.meta.chunked.clone() {
        // Chunked objects are re-wrapped chunk by chunk: each chunk was
        // sealed under its own derived context (and possibly key
        // version), and the segment framing must survive untouched.
        let chunk_count = chunked.chunk_count();
        let columns: Vec<Option<Vec<Vec<u8>>>> = shards
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|b| pipeline::split_shard_segments(b, chunk_count))
                    .transpose()
            })
            .collect::<Result<_, _>>()
            .map_err(ArchiveError::Policy)?;
        let mut rebuilt: Vec<Vec<Vec<u8>>> = vec![Vec::with_capacity(chunk_count); shards.len()];
        for j in 0..chunk_count {
            let chunk_shards: Vec<Option<Vec<u8>>> = columns
                .iter()
                .map(|col| col.as_ref().map(|segments| segments[j].clone()))
                .collect();
            let chunk_id = pipeline::chunk_object_id(id, j);
            let segments = codec
                .rewrap_chunk(
                    keys,
                    &chunk_id,
                    chunked.chunk_metas[j].key_version,
                    &chunk_shards,
                    new_suite,
                )
                .map_err(ArchiveError::Policy)?;
            for (column, segment) in rebuilt.iter_mut().zip(segments) {
                column.push(segment);
            }
        }
        rebuilt
            .iter()
            .map(|segments| pipeline::join_shard_segments(segments))
            .collect()
    } else {
        codec
            .rewrap_chunk(keys, id, manifest.meta.key_version, shards, new_suite)
            .map_err(ArchiveError::Policy)?
    };
    Ok((new_shards, new_policy))
}

//! Distributed master-key custody (HasDPSS-style DPSS key management).
//!
//! The paper's §4 points at key-management systems — HasDPSS in
//! particular — as the architectural template for secret-shared archives:
//! the *master key* itself is held as verifiable secret shares among a
//! board of trustees, refreshed proactively, with the public commitments
//! anchored on a ledger. The key is never materialized except
//! transiently, inside a quorum operation.
//!
//! [`TrusteeKeyring`] implements that lifecycle over the
//! [`aeon_secretshare::vss`] and
//! [`aeon_secretshare::vss_proactive`] protocols:
//!
//! * `establish` — deal the master key Pedersen-VSS among `n` trustees
//!   and publish the commitments to a ledger.
//! * `refresh` — a verifiable zero-delta round; corrupt deltas are
//!   rejected and attributed.
//! * `reshare` — move to a new board `(t', n')` (retirements, onboarding)
//!   without reconstructing.
//! * `with_master_key` — quorum reconstruction for the duration of one
//!   closure call.

use aeon_crypto::{CryptoRng, Sha256};
use aeon_integrity::ledger::Ledger;
use aeon_num::pedersen::Committer;
use aeon_num::{ModpGroup, U2048};
use aeon_secretshare::vss::{self, ScalarField, VssKind, VssShare};
use aeon_secretshare::vss_proactive::{self, RefreshDelta};
use aeon_secretshare::ShareError;

/// Errors from trustee-keyring operations.
#[derive(Debug)]
pub enum TrusteeError {
    /// Underlying secret-sharing failure.
    Share(ShareError),
    /// Fewer trustees responded than the threshold.
    QuorumUnavailable {
        /// Trustees that responded.
        responded: usize,
        /// Threshold needed.
        needed: usize,
    },
    /// A trustee's share failed commitment verification.
    BadTrusteeShare {
        /// The trustee's index.
        index: u64,
    },
}

impl core::fmt::Display for TrusteeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrusteeError::Share(e) => write!(f, "sharing: {e}"),
            TrusteeError::QuorumUnavailable { responded, needed } => {
                write!(f, "quorum unavailable: {responded} of {needed}")
            }
            TrusteeError::BadTrusteeShare { index } => {
                write!(f, "trustee {index} presented an invalid share")
            }
        }
    }
}

impl std::error::Error for TrusteeError {}

impl From<ShareError> for TrusteeError {
    fn from(e: ShareError) -> Self {
        TrusteeError::Share(e)
    }
}

/// A board of trustees jointly holding a master key as Pedersen-VSS
/// shares.
///
/// # Examples
///
/// ```
/// use aeon_core::trustees::TrusteeKeyring;
/// use aeon_crypto::ChaChaDrbg;
///
/// let mut rng = ChaChaDrbg::from_u64_seed(1);
/// let mut keyring = TrusteeKeyring::establish(&mut rng, b"master entropy", 2, 3)?;
/// keyring.refresh(&mut rng)?;
/// let digest = keyring.with_master_key(|key| key[0])?;
/// let _ = digest;
/// # Ok::<(), aeon_core::trustees::TrusteeError>(())
/// ```
#[derive(Debug)]
pub struct TrusteeKeyring {
    committer: Committer,
    threshold: usize,
    shares: Vec<VssShare>,
    commitments: Vec<aeon_num::pedersen::Commitment>,
    ledger: Ledger,
    epoch: u64,
}

impl TrusteeKeyring {
    /// Establishes the keyring: derives a master scalar from `entropy`,
    /// deals it `t`-of-`n` under Pedersen VSS, and anchors the
    /// commitments on the keyring's ledger.
    ///
    /// # Errors
    ///
    /// Propagates dealing parameter validation.
    pub fn establish<R: CryptoRng + ?Sized>(
        rng: &mut R,
        entropy: &[u8],
        threshold: usize,
        trustees: usize,
    ) -> Result<Self, TrusteeError> {
        let committer = Committer::new(ModpGroup::rfc3526_2048());
        let secret = committer.group().scalar_from_bytes(entropy);
        let dealing = vss::deal(
            rng,
            &committer,
            VssKind::Pedersen,
            &secret,
            threshold,
            trustees,
        )?;
        let mut ledger = Ledger::new(1);
        for c in &dealing.commitments {
            ledger.append(0, c.to_be_bytes());
        }
        Ok(TrusteeKeyring {
            committer,
            threshold,
            shares: dealing.shares,
            commitments: dealing.commitments,
            ledger,
            epoch: 0,
        })
    }

    /// Number of trustees.
    pub fn trustees(&self) -> usize {
        self.shares.len()
    }

    /// Reconstruction threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Completed refresh/reshare epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The commitment ledger (publicly verifiable).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Each trustee verifies its own share against the published
    /// commitments; returns the indices of trustees holding bad shares.
    pub fn audit(&self) -> Vec<u64> {
        self.shares
            .iter()
            .filter(|s| {
                !vss::verify_share(&self.committer, VssKind::Pedersen, &self.commitments, s)
            })
            .map(|s| s.index)
            .collect()
    }

    /// Runs one verifiable refresh epoch. Returns the dealers whose
    /// deltas were rejected.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures.
    pub fn refresh<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<Vec<(u64, &'static str)>, TrusteeError> {
        let mut deltas = Vec::with_capacity(self.shares.len());
        for s in &self.shares {
            deltas.push(vss_proactive::deal_zero_delta(
                rng,
                &self.committer,
                VssKind::Pedersen,
                s.index,
                self.threshold,
                self.shares.len(),
            )?);
        }
        self.apply_refresh(&deltas)
    }

    /// Applies caller-supplied refresh deltas (used by adversary
    /// simulations to inject corrupt dealers).
    ///
    /// # Errors
    ///
    /// Propagates protocol failures.
    pub fn apply_refresh(
        &mut self,
        deltas: &[RefreshDelta],
    ) -> Result<Vec<(u64, &'static str)>, TrusteeError> {
        let refreshed =
            vss_proactive::apply_verified_refresh(&self.committer, &self.shares, deltas)?;
        // Homomorphically update the published commitments with each
        // accepted delta's commitments.
        let rejected_dealers: Vec<u64> = refreshed.rejected.iter().map(|(d, _)| *d).collect();
        for delta in deltas {
            if rejected_dealers.contains(&delta.dealer) {
                continue;
            }
            for (ours, theirs) in self.commitments.iter_mut().zip(&delta.dealing.commitments) {
                *ours = self.committer.add(ours, theirs);
            }
        }
        self.shares = refreshed.shares;
        self.epoch += 1;
        for c in &self.commitments {
            self.ledger.append(self.epoch as u32, c.to_be_bytes());
        }
        Ok(refreshed.rejected)
    }

    /// Reshares to a new board `(t', n')` without reconstructing the key:
    /// each current trustee sub-shares its share; the new board combines
    /// with Lagrange weights.
    ///
    /// # Errors
    ///
    /// Returns [`TrusteeError::QuorumUnavailable`] if fewer than `t`
    /// trustees participate.
    pub fn reshare<R: CryptoRng + ?Sized>(
        &mut self,
        rng: &mut R,
        new_threshold: usize,
        new_trustees: usize,
    ) -> Result<(), TrusteeError> {
        if self.shares.len() < self.threshold {
            return Err(TrusteeError::QuorumUnavailable {
                responded: self.shares.len(),
                needed: self.threshold,
            });
        }
        let field = ScalarField::new(self.committer.group());
        let contributors = &self.shares[..self.threshold];

        // λ_i for the old structure at 0.
        let lambdas: Vec<U2048> = contributors
            .iter()
            .enumerate()
            .map(|(i, si)| {
                let xi = U2048::from_u64(si.index);
                let mut num = U2048::one();
                let mut den = U2048::one();
                for (j, sj) in contributors.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let xj = U2048::from_u64(sj.index);
                    num = field.mul(&num, &xj);
                    den = field.mul(&den, &field.sub(&xj, &xi));
                }
                field.mul(&num, &field.invert(&den))
            })
            .collect();

        // Each contributor deals its share value to the new board; new
        // share j = Σ_i λ_i · subshare_i(j). Blinding shares combine the
        // same way (Pedersen linearity); commitments are re-derived by a
        // fresh dealing of the combined polynomial — here we track shares
        // and re-publish combined commitments homomorphically.
        let mut new_shares: Vec<VssShare> = (1..=new_trustees as u64)
            .map(|i| VssShare {
                index: i,
                value: U2048::ZERO,
                blind: U2048::ZERO,
            })
            .collect();
        let mut combined_commitments: Option<Vec<aeon_num::pedersen::Commitment>> = None;
        for (contrib, lambda) in contributors.iter().zip(&lambdas) {
            let sub = vss::deal(
                rng,
                &self.committer,
                VssKind::Pedersen,
                &contrib.value,
                new_threshold,
                new_trustees,
            )?;
            for (ns, ss) in new_shares.iter_mut().zip(&sub.shares) {
                ns.value = field.add(&ns.value, &field.mul(lambda, &ss.value));
                ns.blind = field.add(&ns.blind, &field.mul(lambda, &ss.blind));
            }
            // Commitments scale as C^λ and multiply together.
            let scaled: Vec<aeon_num::pedersen::Commitment> = sub
                .commitments
                .iter()
                .map(|c| {
                    aeon_num::pedersen::Commitment(
                        self.committer.group().exp(&c.0, &lambda.to_be_bytes()),
                    )
                })
                .collect();
            combined_commitments = Some(match combined_commitments {
                None => scaled,
                Some(acc) => acc
                    .iter()
                    .zip(&scaled)
                    .map(|(a, b)| self.committer.add(a, b))
                    .collect(),
            });
        }
        self.shares = new_shares;
        self.commitments = combined_commitments.expect("at least one contributor");
        self.threshold = new_threshold;
        self.epoch += 1;
        for c in &self.commitments {
            self.ledger.append(self.epoch as u32, c.to_be_bytes());
        }
        Ok(())
    }

    /// Reconstructs the master key inside `f` only; the scalar is reduced
    /// to a 32-byte key by hashing. Trustee shares are verified against
    /// the published commitments first — a trustee presenting a bad share
    /// is identified, not silently folded in.
    ///
    /// # Errors
    ///
    /// Returns [`TrusteeError::BadTrusteeShare`] naming the first corrupt
    /// trustee, or quorum/reconstruction failures.
    pub fn with_master_key<T>(&self, f: impl FnOnce(&[u8; 32]) -> T) -> Result<T, TrusteeError> {
        if self.shares.len() < self.threshold {
            return Err(TrusteeError::QuorumUnavailable {
                responded: self.shares.len(),
                needed: self.threshold,
            });
        }
        for s in &self.shares[..self.threshold] {
            if !vss::verify_share(&self.committer, VssKind::Pedersen, &self.commitments, s) {
                return Err(TrusteeError::BadTrusteeShare { index: s.index });
            }
        }
        let scalar = vss::reconstruct(self.committer.group(), &self.shares, self.threshold)?;
        let key = Sha256::digest(&scalar.to_be_bytes());
        Ok(f(&key))
    }

    /// Adversary hook: corrupts trustee `index`'s share in place.
    pub fn corrupt_trustee_for_simulation(&mut self, index: u64) {
        if let Some(s) = self.shares.iter_mut().find(|s| s.index == index) {
            s.value = s.value.wrapping_add(&U2048::one());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_crypto::ChaChaDrbg;

    fn rng() -> ChaChaDrbg {
        ChaChaDrbg::from_u64_seed(99)
    }

    #[test]
    fn establish_and_use() {
        let mut r = rng();
        let keyring = TrusteeKeyring::establish(&mut r, b"genesis entropy", 2, 3).unwrap();
        assert_eq!(keyring.trustees(), 3);
        assert!(keyring.audit().is_empty());
        let k1 = keyring.with_master_key(|k| *k).unwrap();
        let k2 = keyring.with_master_key(|k| *k).unwrap();
        assert_eq!(k1, k2, "reconstruction is deterministic");
    }

    #[test]
    fn refresh_preserves_key_and_updates_commitments() {
        let mut r = rng();
        let mut keyring = TrusteeKeyring::establish(&mut r, b"seed", 2, 3).unwrap();
        let before = keyring.with_master_key(|k| *k).unwrap();
        let old_share = keyring.shares[0].clone();
        let rejected = keyring.refresh(&mut r).unwrap();
        assert!(rejected.is_empty());
        assert_ne!(keyring.shares[0], old_share, "shares must change");
        assert!(keyring.audit().is_empty(), "commitments must track shares");
        let after = keyring.with_master_key(|k| *k).unwrap();
        assert_eq!(before, after);
        assert_eq!(keyring.epoch(), 1);
    }

    #[test]
    fn corrupt_refresh_dealer_rejected() {
        let mut r = rng();
        let mut keyring = TrusteeKeyring::establish(&mut r, b"seed", 2, 3).unwrap();
        let before = keyring.with_master_key(|k| *k).unwrap();
        let committer = Committer::new(ModpGroup::rfc3526_2048());
        let good =
            vss_proactive::deal_zero_delta(&mut r, &committer, VssKind::Pedersen, 1, 2, 3).unwrap();
        let bad = vss_proactive::corrupt_delta_for_simulation(
            &mut r,
            &committer,
            VssKind::Pedersen,
            2,
            999,
            2,
            3,
        );
        let rejected = keyring.apply_refresh(&[good, bad]).unwrap();
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, 2);
        assert_eq!(keyring.with_master_key(|k| *k).unwrap(), before);
    }

    #[test]
    fn reshare_to_new_board() {
        let mut r = rng();
        let mut keyring = TrusteeKeyring::establish(&mut r, b"seed", 2, 3).unwrap();
        let before = keyring.with_master_key(|k| *k).unwrap();
        keyring.reshare(&mut r, 3, 5).unwrap();
        assert_eq!(keyring.trustees(), 5);
        assert_eq!(keyring.threshold(), 3);
        assert!(
            keyring.audit().is_empty(),
            "new commitments track new shares"
        );
        assert_eq!(keyring.with_master_key(|k| *k).unwrap(), before);
    }

    #[test]
    fn corrupt_trustee_detected_at_use() {
        let mut r = rng();
        let mut keyring = TrusteeKeyring::establish(&mut r, b"seed", 2, 3).unwrap();
        keyring.corrupt_trustee_for_simulation(1);
        assert_eq!(keyring.audit(), vec![1]);
        match keyring.with_master_key(|k| *k) {
            Err(TrusteeError::BadTrusteeShare { index: 1 }) => {}
            other => panic!("expected BadTrusteeShare(1), got {other:?}"),
        }
    }

    #[test]
    fn ledger_grows_with_epochs() {
        let mut r = rng();
        let mut keyring = TrusteeKeyring::establish(&mut r, b"seed", 2, 3).unwrap();
        let initial = keyring.ledger().len();
        keyring.refresh(&mut r).unwrap();
        keyring.refresh(&mut r).unwrap();
        assert_eq!(keyring.ledger().len(), initial + 2 * 2); // t commitments per epoch
        assert!(keyring.ledger().verify().is_ok());
    }
}

//! Measured maintenance campaigns: §3.2 on the real data path.
//!
//! The closed-form [`ReencryptionModel`](aeon_store::campaign::ReencryptionModel)
//! prices a re-encryption campaign as `capacity / bandwidth`, doubled
//! for write-back and doubled again for reserved foreground capacity.
//! This module runs the same campaign **live**: every object moves
//! through the unchanged Codec→Plan→Executor path against a
//! throughput-charged cluster
//! ([`ThroughputNode`](aeon_store::throughput::ThroughputNode)), and the
//! duration is read off the shared [`SimClock`] instead of computed. The
//! [`BandwidthScheduler`] implements the paper's reserved-capacity
//! factor by interleaving foreground time between background objects,
//! and [`MeasuredCampaign::extrapolate`] scales the measured run to a
//! real site's capacity — which is what `exp_reencrypt --measured`
//! cross-checks against the closed form.

use crate::archive::{Archive, ArchiveError, ObjectId};
use crate::maintenance::ObjectReencode;
use crate::policy::PolicyKind;
use crate::repair::FleetRepairOutcome;
use aeon_store::campaign::ReencryptionEstimate;
use aeon_store::clock::{SimClock, SimDuration, SimTime};
use std::collections::VecDeque;

/// Upper bound on a usable `reserved_fraction`.
///
/// The foreground charge per background interval `Δ` is
/// `Δ · r / (1 − r)`; as `r → 1` the factor diverges and `1 − r` loses
/// precision — at `r = 0.999999` a single f64 ulp of the divisor moves
/// the charge by minutes per background second, so "identical seed,
/// identical timeline" quietly stops holding. At `r = 0.99` the
/// amplification is capped at 99× and the factor is still exact to
/// ~1e-14 relative, which keeps campaign arithmetic reproducible.
/// Schedulers reject anything above this bound.
pub const MAX_RESERVED_FRACTION: f64 = 0.99;

/// Validates a reserved fraction against the documented bound; shared
/// by every campaign scheduler/driver.
///
/// # Panics
///
/// Panics unless `0 <= r <= MAX_RESERVED_FRACTION`.
pub(crate) fn check_reserved_fraction(r: f64) {
    assert!(
        (0.0..=MAX_RESERVED_FRACTION).contains(&r),
        "reserved fraction must be in [0, {MAX_RESERVED_FRACTION}]: \
         Δ·r/(1−r) amplifies f64 rounding without bound as r → 1 (got {r})"
    );
}

/// Foreground/background bandwidth arbitration on the virtual clock.
///
/// An archive never gives a maintenance campaign the whole machine: a
/// `reserved_fraction` of capacity stays pledged to foreground work
/// (ingest and reads). On a time-charged cluster that means every
/// interval of background time `Δ` implies `Δ · r / (1 − r)` of
/// foreground time threaded through it; the scheduler charges exactly
/// that to the clock after each background slice, which stretches the
/// campaign by `1 / (1 − r)` — the paper's reserved-capacity ×2 at
/// `r = 0.5`.
#[derive(Debug)]
pub struct BandwidthScheduler {
    clock: SimClock,
    reserved_fraction: f64,
    /// `r / (1 − r)`, computed once at construction so every interval
    /// is scaled by the exact same factor (recomputing per call would
    /// be identical in f64, but the invariant is clearer held once).
    fg_factor: f64,
    last: SimTime,
    foreground: SimDuration,
}

impl BandwidthScheduler {
    /// A scheduler reserving `reserved_fraction ∈ [0, MAX_RESERVED_FRACTION]`
    /// of capacity for foreground work, measuring background time on
    /// `clock` from now on.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= reserved_fraction <= `[`MAX_RESERVED_FRACTION`]
    /// — at 1 the campaign would never run, and arbitrarily close to 1
    /// the `Δ·r/(1−r)` charge amplifies f64 rounding into huge
    /// foreground figures (see the bound's documentation).
    pub fn new(clock: SimClock, reserved_fraction: f64) -> Self {
        check_reserved_fraction(reserved_fraction);
        let last = clock.now();
        BandwidthScheduler {
            clock,
            reserved_fraction,
            fg_factor: reserved_fraction / (1.0 - reserved_fraction),
            last,
            foreground: SimDuration::ZERO,
        }
    }

    /// Charges the foreground time implied by the background time that
    /// elapsed since the previous call (or construction), and returns
    /// it. Call after each background unit of work (an object migrated,
    /// a shard set repaired).
    pub fn reserve_foreground(&mut self) -> SimDuration {
        let now = self.clock.now();
        let background = now - self.last;
        let fg = background.mul_f64(self.fg_factor);
        self.clock.charge(fg);
        self.last = self.clock.now();
        self.foreground += fg;
        fg
    }

    /// Total foreground time charged so far.
    pub fn foreground_total(&self) -> SimDuration {
        self.foreground
    }

    /// The reserved fraction in effect.
    pub fn reserved_fraction(&self) -> f64 {
        self.reserved_fraction
    }
}

/// Progress snapshot from a [`ReencodeCampaignDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignProgress {
    /// Objects migrated so far.
    pub objects_done: usize,
    /// Objects the campaign set out to migrate.
    pub objects_total: usize,
    /// Stored bytes read so far (old encodings).
    pub bytes_read: u64,
    /// Stored bytes written back so far (new encodings).
    pub bytes_written: u64,
    /// Virtual time the campaign's own steps have occupied the device.
    pub background_time: SimDuration,
}

/// A §3.2 re-encryption campaign broken into single-object steps, for
/// interleaving with live foreground traffic.
///
/// [`Archive::reencode_all_measured`] models reserved foreground
/// capacity by *charging* `Δ·r/(1−r)` of synthetic foreground time
/// after each object — correct for an otherwise idle cluster, but it
/// asserts the reservation rather than observing it. This driver is the
/// hook a request engine (the `aeon-serve` crate) uses to measure the
/// same factor as a latency distribution: each [`step`](Self::step)
/// migrates exactly one object (occupying the shared device for some
/// background interval `Δ` on the cluster clock), then the driver marks
/// itself ineligible until `now + Δ·r/(1−r)` — the reserved window in
/// which *real* foreground requests run instead of a synthetic charge.
/// The engine consults [`next_eligible`](Self::next_eligible) to decide
/// whether the campaign or the foreground queue gets the device next.
#[derive(Debug)]
pub struct ReencodeCampaignDriver {
    ids: VecDeque<ObjectId>,
    new_policy: PolicyKind,
    reserved_fraction: f64,
    fg_factor: f64,
    next_eligible: SimTime,
    objects_total: usize,
    objects_done: usize,
    bytes_read: u64,
    bytes_written: u64,
    background_time: SimDuration,
}

impl ReencodeCampaignDriver {
    /// Plans a campaign over every object currently in `archive`,
    /// migrating to `new_policy`, throttled so that each background
    /// step is followed by a `Δ·r/(1−r)` window reserved for foreground
    /// work. The driver is eligible immediately.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= reserved_fraction <= `[`MAX_RESERVED_FRACTION`]
    /// (same contract as [`BandwidthScheduler::new`]).
    pub fn new(archive: &Archive, new_policy: PolicyKind, reserved_fraction: f64) -> Self {
        check_reserved_fraction(reserved_fraction);
        let ids: VecDeque<ObjectId> = archive.catalog().ids().into();
        ReencodeCampaignDriver {
            objects_total: ids.len(),
            ids,
            new_policy,
            reserved_fraction,
            fg_factor: reserved_fraction / (1.0 - reserved_fraction),
            next_eligible: SimTime::ZERO,
            objects_done: 0,
            bytes_read: 0,
            bytes_written: 0,
            background_time: SimDuration::ZERO,
        }
    }

    /// Whether every planned object has been migrated.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.ids.is_empty()
    }

    /// The earliest instant the next background step may start — the
    /// end of the reserved-foreground window opened by the previous
    /// step. A scheduler must not call [`step`](Self::step) before the
    /// cluster clock reaches this instant.
    #[must_use]
    pub fn next_eligible(&self) -> SimTime {
        self.next_eligible
    }

    /// The reserved fraction in effect.
    #[must_use]
    pub fn reserved_fraction(&self) -> f64 {
        self.reserved_fraction
    }

    /// Migrates the next object through the real plan/executor path,
    /// occupying the device for the step's duration, and opens the
    /// following reserved-foreground window. Returns `None` when the
    /// campaign is complete.
    ///
    /// # Errors
    ///
    /// Propagates the per-object failure; the object is consumed (a
    /// fleet campaign does not retry a failed migration in place).
    pub fn step(&mut self, archive: &mut Archive) -> Result<Option<ObjectReencode>, ArchiveError> {
        let Some(id) = self.ids.pop_front() else {
            return Ok(None);
        };
        let clock = archive.cluster().clock().clone();
        let start = clock.now();
        // The driver's per-object fetch rides the batched read seam:
        // one framed request per source node, so a bandwidth-metered
        // campaign pays one positioning delay per node per object.
        let outcome = archive.reencode_object_timed_batched(&id, self.new_policy.clone())?;
        let end = clock.now();
        let background = end - start;
        self.next_eligible = end + background.mul_f64(self.fg_factor);
        self.objects_done += 1;
        self.bytes_read += outcome.bytes_read;
        self.bytes_written += outcome.bytes_written;
        self.background_time += background;
        Ok(Some(outcome))
    }

    /// Where the campaign stands.
    #[must_use]
    pub fn progress(&self) -> CampaignProgress {
        CampaignProgress {
            objects_done: self.objects_done,
            objects_total: self.objects_total,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            background_time: self.background_time,
        }
    }
}

/// What a measured campaign did and how long it took in virtual time.
/// All times are clock-snapshot differences; bytes are stored bytes on
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredCampaign {
    /// Objects migrated.
    pub objects: usize,
    /// Stored bytes read (the old encoding).
    pub bytes_read: u64,
    /// Stored bytes written back (the new encoding).
    pub bytes_written: u64,
    /// Virtual time spent in read phases.
    pub read_time: SimDuration,
    /// Virtual time spent in write-back phases.
    pub write_time: SimDuration,
    /// Foreground time the [`BandwidthScheduler`] threaded through.
    pub foreground_time: SimDuration,
    /// Wall-to-wall virtual duration of the campaign (read + write +
    /// foreground, plus any fault stalls and retry backoff).
    pub elapsed: SimDuration,
}

impl MeasuredCampaign {
    /// Scales this measured run to an archive holding `target_bytes` of
    /// stored data, reproducing the closed-form estimate's three
    /// figures from measurement: read-phase time scaled is the
    /// read-only bound, read+write scaled is the with-write figure, and
    /// the full elapsed time scaled (foreground included) is the
    /// realistic figure. Throughput charges are linear in bytes, so the
    /// scale factor is just `target_bytes / bytes_read`.
    pub fn extrapolate(&self, target_bytes: f64) -> ReencryptionEstimate {
        let scale = if self.bytes_read == 0 {
            0.0
        } else {
            target_bytes / self.bytes_read as f64
        };
        ReencryptionEstimate {
            read_only_months: self.read_time.as_months_f64() * scale,
            with_write_months: (self.read_time + self.write_time).as_months_f64() * scale,
            realistic_months: self.elapsed.as_months_f64() * scale,
        }
    }
}

/// Virtual-time accounting for refresh/repair fleet sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignClockStats {
    /// Objects the sweep touched.
    pub objects: usize,
    /// Wall-to-wall virtual duration.
    pub elapsed: SimDuration,
    /// Foreground time threaded through by the scheduler.
    pub foreground_time: SimDuration,
}

impl Archive {
    /// Runs a full re-encryption campaign — every object re-encoded
    /// under `new_policy` through the real plan/executor path — under a
    /// [`BandwidthScheduler`] reserving `reserved_fraction` of capacity
    /// for foreground work. On a throughput-charged cluster the
    /// returned [`MeasuredCampaign`] *is* the §3.2 measurement.
    ///
    /// # Errors
    ///
    /// Propagates the first per-object failure.
    pub fn reencode_all_measured(
        &mut self,
        new_policy: PolicyKind,
        reserved_fraction: f64,
    ) -> Result<MeasuredCampaign, ArchiveError> {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut scheduler = BandwidthScheduler::new(clock.clone(), reserved_fraction);
        let ids: Vec<ObjectId> = self.manifests.ids();
        let mut campaign = MeasuredCampaign {
            objects: 0,
            bytes_read: 0,
            bytes_written: 0,
            read_time: SimDuration::ZERO,
            write_time: SimDuration::ZERO,
            foreground_time: SimDuration::ZERO,
            elapsed: SimDuration::ZERO,
        };
        for id in &ids {
            let o: ObjectReencode = self.reencode_object_timed(id, new_policy.clone())?;
            campaign.objects += 1;
            campaign.bytes_read += o.bytes_read;
            campaign.bytes_written += o.bytes_written;
            campaign.read_time += o.read_time;
            campaign.write_time += o.write_time;
            scheduler.reserve_foreground();
        }
        campaign.foreground_time = scheduler.foreground_total();
        campaign.elapsed = clock.now() - start;
        Ok(campaign)
    }

    /// Runs one proactive-refresh epoch over every Shamir-encoded
    /// object under a [`BandwidthScheduler`]; non-Shamir objects are
    /// skipped (refresh is undefined for them).
    ///
    /// # Errors
    ///
    /// Propagates the first per-object failure.
    pub fn refresh_all_measured(
        &mut self,
        reserved_fraction: f64,
    ) -> Result<CampaignClockStats, ArchiveError> {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut scheduler = BandwidthScheduler::new(clock.clone(), reserved_fraction);
        let ids: Vec<ObjectId> = self
            .manifests
            .snapshot()
            .into_iter()
            .filter(|m| matches!(m.policy, PolicyKind::Shamir { .. }))
            .map(|m| m.id)
            .collect();
        for id in &ids {
            self.refresh_object(id)?;
            scheduler.reserve_foreground();
        }
        Ok(CampaignClockStats {
            objects: ids.len(),
            elapsed: clock.now() - start,
            foreground_time: scheduler.foreground_total(),
        })
    }

    /// Runs a fleet repair sweep (every object, continuing past
    /// per-object failures exactly like [`Archive::repair_all`]) under
    /// a [`BandwidthScheduler`], returning the per-object outcomes plus
    /// the campaign's virtual-time accounting.
    pub fn repair_all_measured(
        &mut self,
        reserved_fraction: f64,
    ) -> (FleetRepairOutcome, CampaignClockStats) {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut scheduler = BandwidthScheduler::new(clock.clone(), reserved_fraction);
        let ids: Vec<ObjectId> = self.manifests.ids();
        let mut outcome = FleetRepairOutcome {
            repaired: Vec::new(),
            failed: Vec::new(),
            healthy: 0,
        };
        for id in ids.iter() {
            match self.repair_object(id) {
                Ok(report) if report.method == crate::repair::RepairMethod::NotNeeded => {
                    outcome.healthy += 1
                }
                Ok(report) => outcome.repaired.push((id.clone(), report)),
                Err(e) => outcome.failed.push((id.clone(), e)),
            }
            scheduler.reserve_foreground();
        }
        let stats = CampaignClockStats {
            objects: ids.len(),
            elapsed: clock.now() - start,
            foreground_time: scheduler.foreground_total(),
        };
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_interleaves_reserved_capacity() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), 0.5);
        clock.charge(SimDuration::from_secs(10)); // background work
        let fg = s.reserve_foreground();
        // r = 0.5: foreground equals background, elapsed doubles.
        assert_eq!(fg, SimDuration::from_secs(10));
        assert_eq!(clock.now(), SimTime::ZERO + SimDuration::from_secs(20));
        assert_eq!(s.foreground_total(), SimDuration::from_secs(10));
    }

    #[test]
    fn zero_reservation_charges_nothing() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), 0.0);
        clock.charge(SimDuration::from_secs(7));
        assert_eq!(s.reserve_foreground(), SimDuration::ZERO);
        assert_eq!(clock.now().as_secs_f64(), 7.0);
    }

    #[test]
    fn quarter_reservation_stretches_by_a_third() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), 0.25);
        clock.charge(SimDuration::from_secs(9));
        // 9 s background ⇒ 3 s foreground: 12 s total = 9 / (1 − 0.25).
        assert_eq!(s.reserve_foreground(), SimDuration::from_secs(3));
        assert_eq!(clock.now().as_secs_f64(), 12.0);
    }

    #[test]
    #[should_panic(expected = "reserved fraction")]
    fn full_reservation_is_rejected() {
        let _ = BandwidthScheduler::new(SimClock::new(), 1.0);
    }

    #[test]
    #[should_panic(expected = "reserved fraction")]
    fn near_unity_reservation_is_rejected() {
        // r = 0.999999 passed the old `[0, 1)` check but amplifies
        // every background interval by ~1e6× through Δ·r/(1−r), where
        // a single f64 ulp of (1−r) is already minutes of foreground
        // charge per background second.
        let _ = BandwidthScheduler::new(SimClock::new(), 0.999999);
    }

    #[test]
    fn bound_is_inclusive_at_the_documented_maximum() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), MAX_RESERVED_FRACTION);
        clock.charge(SimDuration::from_secs(1));
        // 1 s background ⇒ 99 s foreground at the cap.
        let fg = s.reserve_foreground();
        assert!((fg.as_secs_f64() - 99.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "reserved fraction")]
    fn driver_rejects_near_unity_reservation() {
        use crate::archive::ArchiveConfig;
        let archive =
            Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication { copies: 2 })).unwrap();
        let _ =
            ReencodeCampaignDriver::new(&archive, PolicyKind::Replication { copies: 3 }, 0.999999);
    }

    #[test]
    fn driver_steps_objects_and_opens_reserved_windows() {
        use crate::archive::ArchiveConfig;
        use aeon_store::throughput::{throughput_in_memory_cluster, ThroughputProfile};
        let profile = ThroughputProfile::new(SimDuration::from_millis(1), 1e6, 1e6);
        let (cluster, clock) = throughput_in_memory_cluster(&["a", "b", "c"], 1, &profile);
        let config = ArchiveConfig::new(PolicyKind::Replication { copies: 3 });
        let mut archive = Archive::with_cluster(config, cluster).unwrap();
        for i in 0..3 {
            archive.ingest(&[7u8; 2048], &format!("o{i}")).unwrap();
        }
        let mut driver =
            ReencodeCampaignDriver::new(&archive, PolicyKind::Replication { copies: 2 }, 0.5);
        assert_eq!(driver.next_eligible(), SimTime::ZERO);
        let campaign_start = clock.now();
        let mut steps = 0;
        while let Some(outcome) = driver.step(&mut archive).unwrap() {
            steps += 1;
            assert!(outcome.bytes_read > 0);
            // r = 0.5: the reserved window equals the background step,
            // so eligibility lands strictly after the step's end.
            assert!(driver.next_eligible() > clock.now());
        }
        assert_eq!(steps, 3);
        assert!(driver.is_done());
        let p = driver.progress();
        assert_eq!((p.objects_done, p.objects_total), (3, 3));
        assert!(p.background_time > SimDuration::ZERO);
        // Unlike BandwidthScheduler, the driver charges no synthetic
        // foreground time: all clock movement during the campaign is
        // the steps' own device occupancy. The reserved windows are
        // left open for a real request engine to fill.
        assert_eq!(clock.now() - campaign_start, p.background_time);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let m = MeasuredCampaign {
            objects: 4,
            bytes_read: 1_000,
            bytes_written: 1_000,
            read_time: SimDuration::from_days(1),
            write_time: SimDuration::from_days(1),
            foreground_time: SimDuration::from_days(2),
            elapsed: SimDuration::from_days(4),
        };
        let e = m.extrapolate(10_000.0);
        assert!((e.read_only_months - 10.0 / 30.44).abs() < 1e-9);
        assert!((e.with_write_months - 2.0 * e.read_only_months).abs() < 1e-9);
        assert!((e.realistic_months - 4.0 * e.read_only_months).abs() < 1e-9);
    }
}

//! Measured maintenance campaigns: §3.2 on the real data path.
//!
//! The closed-form [`ReencryptionModel`](aeon_store::campaign::ReencryptionModel)
//! prices a re-encryption campaign as `capacity / bandwidth`, doubled
//! for write-back and doubled again for reserved foreground capacity.
//! This module runs the same campaign **live**: every object moves
//! through the unchanged Codec→Plan→Executor path against a
//! throughput-charged cluster
//! ([`ThroughputNode`](aeon_store::throughput::ThroughputNode)), and the
//! duration is read off the shared [`SimClock`] instead of computed. The
//! [`BandwidthScheduler`] implements the paper's reserved-capacity
//! factor by interleaving foreground time between background objects,
//! and [`MeasuredCampaign::extrapolate`] scales the measured run to a
//! real site's capacity — which is what `exp_reencrypt --measured`
//! cross-checks against the closed form.

use crate::archive::{Archive, ArchiveError, ObjectId};
use crate::maintenance::ObjectReencode;
use crate::policy::PolicyKind;
use crate::repair::FleetRepairOutcome;
use aeon_store::campaign::ReencryptionEstimate;
use aeon_store::clock::{SimClock, SimDuration, SimTime};

/// Foreground/background bandwidth arbitration on the virtual clock.
///
/// An archive never gives a maintenance campaign the whole machine: a
/// `reserved_fraction` of capacity stays pledged to foreground work
/// (ingest and reads). On a time-charged cluster that means every
/// interval of background time `Δ` implies `Δ · r / (1 − r)` of
/// foreground time threaded through it; the scheduler charges exactly
/// that to the clock after each background slice, which stretches the
/// campaign by `1 / (1 − r)` — the paper's reserved-capacity ×2 at
/// `r = 0.5`.
#[derive(Debug)]
pub struct BandwidthScheduler {
    clock: SimClock,
    reserved_fraction: f64,
    last: SimTime,
    foreground: SimDuration,
}

impl BandwidthScheduler {
    /// A scheduler reserving `reserved_fraction ∈ [0, 1)` of capacity
    /// for foreground work, measuring background time on `clock` from
    /// now on.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= reserved_fraction < 1` (at 1 the campaign
    /// would never run).
    pub fn new(clock: SimClock, reserved_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&reserved_fraction),
            "reserved fraction must be in [0, 1)"
        );
        let last = clock.now();
        BandwidthScheduler {
            clock,
            reserved_fraction,
            last,
            foreground: SimDuration::ZERO,
        }
    }

    /// Charges the foreground time implied by the background time that
    /// elapsed since the previous call (or construction), and returns
    /// it. Call after each background unit of work (an object migrated,
    /// a shard set repaired).
    pub fn reserve_foreground(&mut self) -> SimDuration {
        let now = self.clock.now();
        let background = now - self.last;
        let fg = background.mul_f64(self.reserved_fraction / (1.0 - self.reserved_fraction));
        self.clock.charge(fg);
        self.last = self.clock.now();
        self.foreground += fg;
        fg
    }

    /// Total foreground time charged so far.
    pub fn foreground_total(&self) -> SimDuration {
        self.foreground
    }

    /// The reserved fraction in effect.
    pub fn reserved_fraction(&self) -> f64 {
        self.reserved_fraction
    }
}

/// What a measured campaign did and how long it took in virtual time.
/// All times are clock-snapshot differences; bytes are stored bytes on
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredCampaign {
    /// Objects migrated.
    pub objects: usize,
    /// Stored bytes read (the old encoding).
    pub bytes_read: u64,
    /// Stored bytes written back (the new encoding).
    pub bytes_written: u64,
    /// Virtual time spent in read phases.
    pub read_time: SimDuration,
    /// Virtual time spent in write-back phases.
    pub write_time: SimDuration,
    /// Foreground time the [`BandwidthScheduler`] threaded through.
    pub foreground_time: SimDuration,
    /// Wall-to-wall virtual duration of the campaign (read + write +
    /// foreground, plus any fault stalls and retry backoff).
    pub elapsed: SimDuration,
}

impl MeasuredCampaign {
    /// Scales this measured run to an archive holding `target_bytes` of
    /// stored data, reproducing the closed-form estimate's three
    /// figures from measurement: read-phase time scaled is the
    /// read-only bound, read+write scaled is the with-write figure, and
    /// the full elapsed time scaled (foreground included) is the
    /// realistic figure. Throughput charges are linear in bytes, so the
    /// scale factor is just `target_bytes / bytes_read`.
    pub fn extrapolate(&self, target_bytes: f64) -> ReencryptionEstimate {
        let scale = if self.bytes_read == 0 {
            0.0
        } else {
            target_bytes / self.bytes_read as f64
        };
        ReencryptionEstimate {
            read_only_months: self.read_time.as_months_f64() * scale,
            with_write_months: (self.read_time + self.write_time).as_months_f64() * scale,
            realistic_months: self.elapsed.as_months_f64() * scale,
        }
    }
}

/// Virtual-time accounting for refresh/repair fleet sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignClockStats {
    /// Objects the sweep touched.
    pub objects: usize,
    /// Wall-to-wall virtual duration.
    pub elapsed: SimDuration,
    /// Foreground time threaded through by the scheduler.
    pub foreground_time: SimDuration,
}

impl Archive {
    /// Runs a full re-encryption campaign — every object re-encoded
    /// under `new_policy` through the real plan/executor path — under a
    /// [`BandwidthScheduler`] reserving `reserved_fraction` of capacity
    /// for foreground work. On a throughput-charged cluster the
    /// returned [`MeasuredCampaign`] *is* the §3.2 measurement.
    ///
    /// # Errors
    ///
    /// Propagates the first per-object failure.
    pub fn reencode_all_measured(
        &mut self,
        new_policy: PolicyKind,
        reserved_fraction: f64,
    ) -> Result<MeasuredCampaign, ArchiveError> {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut scheduler = BandwidthScheduler::new(clock.clone(), reserved_fraction);
        let ids: Vec<ObjectId> = self.manifests().map(|m| m.id.clone()).collect();
        let mut campaign = MeasuredCampaign {
            objects: 0,
            bytes_read: 0,
            bytes_written: 0,
            read_time: SimDuration::ZERO,
            write_time: SimDuration::ZERO,
            foreground_time: SimDuration::ZERO,
            elapsed: SimDuration::ZERO,
        };
        for id in &ids {
            let o: ObjectReencode = self.reencode_object_timed(id, new_policy.clone())?;
            campaign.objects += 1;
            campaign.bytes_read += o.bytes_read;
            campaign.bytes_written += o.bytes_written;
            campaign.read_time += o.read_time;
            campaign.write_time += o.write_time;
            scheduler.reserve_foreground();
        }
        campaign.foreground_time = scheduler.foreground_total();
        campaign.elapsed = clock.now() - start;
        Ok(campaign)
    }

    /// Runs one proactive-refresh epoch over every Shamir-encoded
    /// object under a [`BandwidthScheduler`]; non-Shamir objects are
    /// skipped (refresh is undefined for them).
    ///
    /// # Errors
    ///
    /// Propagates the first per-object failure.
    pub fn refresh_all_measured(
        &mut self,
        reserved_fraction: f64,
    ) -> Result<CampaignClockStats, ArchiveError> {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut scheduler = BandwidthScheduler::new(clock.clone(), reserved_fraction);
        let ids: Vec<ObjectId> = self
            .manifests()
            .filter(|m| matches!(m.policy, PolicyKind::Shamir { .. }))
            .map(|m| m.id.clone())
            .collect();
        for id in &ids {
            self.refresh_object(id)?;
            scheduler.reserve_foreground();
        }
        Ok(CampaignClockStats {
            objects: ids.len(),
            elapsed: clock.now() - start,
            foreground_time: scheduler.foreground_total(),
        })
    }

    /// Runs a fleet repair sweep (every object, continuing past
    /// per-object failures exactly like [`Archive::repair_all`]) under
    /// a [`BandwidthScheduler`], returning the per-object outcomes plus
    /// the campaign's virtual-time accounting.
    pub fn repair_all_measured(
        &mut self,
        reserved_fraction: f64,
    ) -> (FleetRepairOutcome, CampaignClockStats) {
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        let mut scheduler = BandwidthScheduler::new(clock.clone(), reserved_fraction);
        let ids: Vec<ObjectId> = self.manifests().map(|m| m.id.clone()).collect();
        let mut outcome = FleetRepairOutcome {
            repaired: Vec::new(),
            failed: Vec::new(),
            healthy: 0,
        };
        for id in ids.iter() {
            match self.repair_object(id) {
                Ok(report) if report.method == crate::repair::RepairMethod::NotNeeded => {
                    outcome.healthy += 1
                }
                Ok(report) => outcome.repaired.push((id.clone(), report)),
                Err(e) => outcome.failed.push((id.clone(), e)),
            }
            scheduler.reserve_foreground();
        }
        let stats = CampaignClockStats {
            objects: ids.len(),
            elapsed: clock.now() - start,
            foreground_time: scheduler.foreground_total(),
        };
        (outcome, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_interleaves_reserved_capacity() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), 0.5);
        clock.charge(SimDuration::from_secs(10)); // background work
        let fg = s.reserve_foreground();
        // r = 0.5: foreground equals background, elapsed doubles.
        assert_eq!(fg, SimDuration::from_secs(10));
        assert_eq!(clock.now(), SimTime::ZERO + SimDuration::from_secs(20));
        assert_eq!(s.foreground_total(), SimDuration::from_secs(10));
    }

    #[test]
    fn zero_reservation_charges_nothing() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), 0.0);
        clock.charge(SimDuration::from_secs(7));
        assert_eq!(s.reserve_foreground(), SimDuration::ZERO);
        assert_eq!(clock.now().as_secs_f64(), 7.0);
    }

    #[test]
    fn quarter_reservation_stretches_by_a_third() {
        let clock = SimClock::new();
        let mut s = BandwidthScheduler::new(clock.clone(), 0.25);
        clock.charge(SimDuration::from_secs(9));
        // 9 s background ⇒ 3 s foreground: 12 s total = 9 / (1 − 0.25).
        assert_eq!(s.reserve_foreground(), SimDuration::from_secs(3));
        assert_eq!(clock.now().as_secs_f64(), 12.0);
    }

    #[test]
    #[should_panic(expected = "reserved fraction")]
    fn full_reservation_is_rejected() {
        let _ = BandwidthScheduler::new(SimClock::new(), 1.0);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let m = MeasuredCampaign {
            objects: 4,
            bytes_read: 1_000,
            bytes_written: 1_000,
            read_time: SimDuration::from_days(1),
            write_time: SimDuration::from_days(1),
            foreground_time: SimDuration::from_days(2),
            elapsed: SimDuration::from_days(4),
        };
        let e = m.extrapolate(10_000.0);
        assert!((e.read_only_months - 10.0 / 30.44).abs() < 1e-9);
        assert!((e.with_write_months - 2.0 * e.read_only_months).abs() < 1e-9);
        assert!((e.realistic_months - 4.0 * e.read_only_months).abs() < 1e-9);
    }
}

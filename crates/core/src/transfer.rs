//! Shipping shards between sites: the in-transit leg of Table 1.
//!
//! The paper's observation: an adversary facing an information-
//! theoretically secure *datastore* attacks the *channel* instead,
//! because TLS-class transit encryption is only computational. This
//! module moves an object's shards over either channel family so the
//! whole Table 1 row — at rest *and* in transit — is executable:
//!
//! * [`ship_computational`] — ephemeral-DH + AEAD sessions (TLS-like).
//!   Taps record ciphertext that falls retroactively with the group.
//! * [`ship_its`] — QKD-fed one-time-pad channels with Wegman–Carter
//!   authentication. Taps record information-theoretic noise.
//!
//! Shards are sourced through the archive's digest-filtered fetch path
//! (and so through the `PlanExecutor`) — shipment never reads nodes
//! directly.

use crate::archive::{Archive, ArchiveError, ObjectId};
use aeon_channel::dh;
use aeon_channel::qkd::{OtpChannel, QkdLink};
use aeon_channel::transport::{End, Link, Tap};
use aeon_crypto::ChaChaDrbg;
use aeon_num::ModpGroup;

/// Statistics from a shard shipment.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// Shards shipped.
    pub shards: usize,
    /// Payload bytes shipped (pre-framing).
    pub payload_bytes: u64,
    /// Bytes that actually crossed the link (with handshake/framing).
    pub wire_bytes: u64,
    /// Simulated link-seconds consumed.
    pub link_seconds: f64,
    /// Pad bytes consumed (ITS shipments only).
    pub pad_bytes: u64,
}

/// Dedup objects have no shard set of their own — shipping one means
/// shipping its blocks, which shard transfer cannot express yet.
fn dedup_ship_guard(archive: &Archive, id: &ObjectId) -> Result<(), ArchiveError> {
    if archive.manifest(id).is_some_and(|m| m.blocks.is_some()) {
        return Err(ArchiveError::UnsupportedOperation(
            "shard transfer of dedup objects is not supported; retrieve and re-ingest instead",
        ));
    }
    Ok(())
}

/// Ships all shards of `id` over a computational (DH + AEAD) channel,
/// returning the shards as received on the far end plus transfer stats.
/// Attach a [`Tap`] to `link` beforehand to model an eavesdropper.
///
/// # Errors
///
/// Propagates archive and channel failures.
pub fn ship_computational(
    archive: &Archive,
    id: &ObjectId,
    link: &mut Link,
    rng_seed: u64,
) -> Result<(Vec<Vec<u8>>, TransferReport), ArchiveError> {
    dedup_ship_guard(archive, id)?;
    // Retrying, digest-filtered fetch: never ship a bit-rotted shard.
    let shards: Vec<Vec<u8>> = archive
        .fetch_shards_for(id, "ship-dh")
        .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?
        .shards
        .into_iter()
        .flatten()
        .collect();

    let group = ModpGroup::rfc3526_2048();
    let mut rng = ChaChaDrbg::from_u64_seed(rng_seed);
    let (mut tx, mut rx) = dh::handshake(&mut rng, &group, link)
        .map_err(|e| ArchiveError::Channel(format!("handshake: {e}")))?;

    let mut received = Vec::with_capacity(shards.len());
    let mut payload_bytes = 0u64;
    for shard in &shards {
        payload_bytes += shard.len() as u64;
        tx.send(link, shard);
        let got = rx
            .recv(link)
            .map_err(|e| ArchiveError::Channel(format!("record: {e}")))?;
        received.push(got);
    }
    let report = TransferReport {
        shards: shards.len(),
        payload_bytes,
        wire_bytes: link.transferred_bytes(),
        link_seconds: link.simulated_seconds(),
        pad_bytes: 0,
    };
    Ok((received, report))
}

/// Ships all shards of `id` over an information-theoretic channel: a
/// simulated QKD link generates the pad, then the shards move under OTP +
/// one-time MAC. Returns received shards and stats (including pad
/// consumption — the QKD key-rate bill).
///
/// # Errors
///
/// Propagates archive and channel failures.
pub fn ship_its(
    archive: &Archive,
    id: &ObjectId,
    qkd: &mut QkdLink,
    link: &mut Link,
    rng_seed: u64,
) -> Result<(Vec<Vec<u8>>, TransferReport), ArchiveError> {
    dedup_ship_guard(archive, id)?;
    // Retrying, digest-filtered fetch: never ship a bit-rotted shard.
    let shards: Vec<Vec<u8>> = archive
        .fetch_shards_for(id, "ship-its")
        .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?
        .shards
        .into_iter()
        .flatten()
        .collect();

    let payload: u64 = shards.iter().map(|s| s.len() as u64).sum();
    let pad_needed: usize = shards.iter().map(|s| s.len() + 32).sum();
    let mut rng = ChaChaDrbg::from_u64_seed(rng_seed);
    let (pad_tx, pad_rx) = qkd.generate_pad(&mut rng, pad_needed);
    let mut tx = OtpChannel::new(pad_tx);
    let mut rx = OtpChannel::new(pad_rx);

    let mut received = Vec::with_capacity(shards.len());
    for shard in &shards {
        let record = tx
            .seal(shard)
            .map_err(|e| ArchiveError::Channel(format!("otp seal: {e}")))?;
        link.send(End::A, record);
        let wire = link.recv(End::B).expect("record in flight");
        let got = rx
            .open(&wire)
            .map_err(|e| ArchiveError::Channel(format!("otp open: {e}")))?;
        received.push(got);
    }
    let report = TransferReport {
        shards: shards.len(),
        payload_bytes: payload,
        wire_bytes: link.transferred_bytes(),
        link_seconds: link.simulated_seconds() + qkd.elapsed_seconds(),
        pad_bytes: pad_needed as u64,
    };
    Ok((received, report))
}

/// Convenience: creates a tapped WAN link, returning both.
pub fn tapped_wan() -> (Link, Tap) {
    let mut link = Link::wan();
    let tap = Tap::new();
    link.attach_tap(tap.clone());
    (link, tap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchiveConfig, PolicyKind};

    fn archive_with_object() -> (Archive, ObjectId) {
        let mut archive = Archive::in_memory(ArchiveConfig::new(PolicyKind::Shamir {
            threshold: 2,
            shares: 3,
        }))
        .unwrap();
        let id = archive.ingest(b"shards in motion", "m").unwrap();
        (archive, id)
    }

    #[test]
    fn computational_shipment_delivers_shards() {
        let (archive, id) = archive_with_object();
        let mut link = Link::lan();
        let (received, report) = ship_computational(&archive, &id, &mut link, 7).unwrap();
        assert_eq!(received.len(), 3);
        assert_eq!(report.shards, 3);
        assert_eq!(report.payload_bytes, 16 * 3);
        assert!(report.wire_bytes > report.payload_bytes, "handshake + tags");
        // The delivered shards decode.
        let manifest = archive.manifest(&id).unwrap();
        let shards: Vec<Option<Vec<u8>>> = received.into_iter().map(Some).collect();
        let pt = manifest
            .policy
            .decode(archive.keys(), id.as_str(), &shards, &manifest.meta)
            .unwrap();
        assert_eq!(pt, b"shards in motion");
    }

    #[test]
    fn its_shipment_delivers_and_bills_pad() {
        let (archive, id) = archive_with_object();
        let mut qkd = QkdLink::metro_reference();
        let mut link = Link::wan();
        let (received, report) = ship_its(&archive, &id, &mut qkd, &mut link, 8).unwrap();
        assert_eq!(received.len(), 3);
        assert_eq!(report.pad_bytes, (16 + 32) * 3);
        assert!(report.link_seconds > 0.0);
        let manifest = archive.manifest(&id).unwrap();
        let shards: Vec<Option<Vec<u8>>> = received.into_iter().map(Some).collect();
        assert_eq!(
            manifest
                .policy
                .decode(archive.keys(), id.as_str(), &shards, &manifest.meta)
                .unwrap(),
            b"shards in motion"
        );
    }

    #[test]
    fn tap_sees_no_plaintext_on_either_channel() {
        let (archive, id) = archive_with_object();
        // Shamir shares are random-looking, so instead ingest under
        // replication where the shard IS the plaintext — the channel must
        // still hide it.
        let mut archive2 =
            Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication { copies: 2 })).unwrap();
        let id2 = archive2
            .ingest(b"PLAINTEXT-MARKER-0123456789", "p")
            .unwrap();

        let contains_marker = |frames: &[Vec<u8>]| {
            frames
                .iter()
                .any(|f| f.windows(27).any(|w| w == b"PLAINTEXT-MARKER-0123456789"))
        };

        let (mut link, tap) = tapped_wan();
        ship_computational(&archive2, &id2, &mut link, 9).unwrap();
        assert!(
            !contains_marker(&tap.capture()),
            "DH channel leaked plaintext"
        );

        let (mut link, tap) = tapped_wan();
        let mut qkd = QkdLink::metro_reference();
        ship_its(&archive2, &id2, &mut qkd, &mut link, 10).unwrap();
        assert!(
            !contains_marker(&tap.capture()),
            "OTP channel leaked plaintext"
        );

        let _ = (archive, id);
    }

    #[test]
    fn chunked_object_ships_and_decodes_on_far_end() {
        use crate::pipeline::{self, PipelineConfig};
        use crate::IntegrityMode;

        let mut archive = Archive::in_memory(
            ArchiveConfig::new(PolicyKind::Shamir {
                threshold: 2,
                shares: 3,
            })
            .with_integrity(IntegrityMode::DigestOnly)
            .with_pipeline(PipelineConfig::serial().with_chunk_size(256)),
        )
        .unwrap();
        let payload = vec![0x5Au8; 1500];
        let id = archive.ingest(&payload, "chunked").unwrap();
        let manifest = archive.manifest(&id).unwrap();
        assert!(manifest.meta.chunked.is_some());

        let mut link = Link::lan();
        let (received, report) = ship_computational(&archive, &id, &mut link, 11).unwrap();
        assert_eq!(report.shards, 3);
        // Shards are one framed blob per node, so shipment cost scales
        // with object size, not chunk count.
        assert!(report.payload_bytes >= payload.len() as u64);
        let shards: Vec<Option<Vec<u8>>> = received.into_iter().map(Some).collect();
        let pt = pipeline::decode_object(
            &manifest.policy,
            archive.keys(),
            id.as_str(),
            &shards,
            &manifest.meta,
            2,
        )
        .unwrap();
        assert_eq!(pt, payload);
    }

    #[test]
    fn unknown_object_rejected() {
        let (archive, _) = archive_with_object();
        let bogus = {
            let mut a2 =
                Archive::in_memory(ArchiveConfig::new(PolicyKind::Replication { copies: 1 }))
                    .unwrap();
            a2.ingest(b"x", "other").unwrap()
        };
        let mut link = Link::lan();
        assert!(matches!(
            ship_computational(&archive, &bogus, &mut link, 1),
            Err(ArchiveError::UnknownObject(_))
        ));
    }
}

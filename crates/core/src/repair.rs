//! Shard repair: rebuilding lost shards from survivors.
//!
//! Archives lose media continuously; what keeps them alive is the repair
//! loop. For MDS-coded policies a lost shard is recomputed from any `k`
//! survivors without touching the plaintext; for Shamir policies the
//! missing share is *re-derived at its evaluation point* from `t`
//! survivors (Lagrange at `x = missing index`) — the secret never leaves
//! the math. Policies without partial-repair structure (AONT packages,
//! LRSS wrappers, packed rows with per-row randomness) fall back to a
//! full re-encode, which costs a whole-object read+write and fresh
//! randomness.

use crate::archive::{Archive, ArchiveError, ObjectId};
use crate::plan::{self, RepairOutcome};
use aeon_store::clock::SimDuration;

pub use crate::codec::RepairMethod;

/// Report from a repair pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Shards that were missing before the repair.
    pub missing_before: usize,
    /// Shards missing after (0 unless nodes are offline).
    pub missing_after: usize,
    /// The strategy used.
    pub method: RepairMethod,
    /// Stored bytes fetched while diagnosing and rebuilding (survivor
    /// reads plus the post-repair verification fetch).
    pub bytes_read: u64,
    /// Rebuilt bytes written back to nodes.
    pub bytes_written: u64,
    /// Virtual-clock time the repair took (zero on clusters whose
    /// nodes charge nothing).
    pub elapsed: SimDuration,
}

impl RepairReport {
    /// Total bytes this repair moved over node I/O (read + written).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

fn snapshot_bytes(shards: &[Option<Vec<u8>>]) -> u64 {
    shards.iter().flatten().map(|s| s.len() as u64).sum()
}

impl Archive {
    /// Repairs an object's missing shards. Requires at least the policy's
    /// read threshold of shards to survive.
    ///
    /// # Errors
    ///
    /// Returns decode errors if too few shards survive, and cluster
    /// errors if the rebuilt shards cannot be written back.
    pub fn repair_object(&mut self, id: &ObjectId) -> Result<RepairReport, ArchiveError> {
        self.repair_object_with(id, false)
    }

    /// [`Archive::repair_object`] with the rebuilt shards' first write
    /// attempt coalesced per target node (one framed transfer per node
    /// on media-priced clusters). Per-key attempt schedules match the
    /// sequential path, so stored bytes and typed failures are
    /// identical under deterministic transient fault injection; only
    /// virtual-clock charges differ. The fleet repair drain uses this
    /// variant.
    ///
    /// # Errors
    ///
    /// Same contract as [`Archive::repair_object`].
    pub fn repair_object_batched(&mut self, id: &ObjectId) -> Result<RepairReport, ArchiveError> {
        self.repair_object_with(id, true)
    }

    fn repair_object_with(
        &mut self,
        id: &ObjectId,
        batched: bool,
    ) -> Result<RepairReport, ArchiveError> {
        let manifest = self
            .manifest(id)
            .ok_or_else(|| ArchiveError::UnknownObject(id.clone()))?;
        if manifest.blocks.is_some() {
            return self.repair_dedup(&manifest);
        }
        let clock = self.cluster().clock().clone();
        let start = clock.now();
        // Digest-filtered fetch: a bit-rotted shard is as lost as a
        // deleted one, and must be rebuilt rather than trusted. The
        // batched variant coalesces the survivor reads into one framed
        // request per node — repair is read-dominated, so this is where
        // the seek amortization pays.
        let shards = if batched {
            self.fetch_shards_for_batched(id, "repair")
        } else {
            self.fetch_shards_for(id, "repair")
        }
        .expect("manifest exists")
        .shards;
        let mut bytes_read = snapshot_bytes(&shards);
        let mut bytes_written = 0u64;
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(RepairReport {
                missing_before: 0,
                missing_after: 0,
                method: RepairMethod::NotNeeded,
                bytes_read,
                bytes_written: 0,
                elapsed: clock.now() - start,
            });
        }

        // The codec decides *how* (pure, per-chunk); the executor
        // decides *where* (retrying node puts). Repair is the one
        // maintenance path that rewrites individual slots rather than
        // whole shard sets, so it carries the rebuilt bytes as an
        // explicit plan.
        let method = match plan::plan_repair(&manifest, &shards, &missing)? {
            RepairOutcome::Apply(repair) => {
                bytes_written += repair
                    .writes
                    .iter()
                    .map(|(_, data)| data.len() as u64)
                    .sum::<u64>();
                let mut rng = self.op_rng("repair-put", id.as_str());
                let digests = if batched {
                    self.executor().apply_repair_batched(
                        id.as_str(),
                        &manifest.placement,
                        &repair.writes,
                        &mut rng,
                    )?
                } else {
                    self.executor().apply_repair(
                        id.as_str(),
                        &manifest.placement,
                        &repair.writes,
                        &mut rng,
                    )?
                };
                for (m, digest) in digests {
                    self.set_shard_digest(id, m, digest);
                }
                repair.method
            }
            RepairOutcome::Reencode => {
                // No per-shard repair structure: decode and re-encode.
                let policy = manifest.policy.clone();
                let (r, w) = if batched {
                    self.reencode_object_batched(id, policy)?
                } else {
                    self.reencode_object(id, policy)?
                };
                bytes_read += r;
                bytes_written += w;
                RepairMethod::FullReencode
            }
        };

        let snap = if batched {
            self.fetch_shards_for_batched(id, "repair-after")
        } else {
            self.fetch_shards_for(id, "repair-after")
        }
        .expect("manifest survives repair");
        bytes_read += snapshot_bytes(&snap.shards);
        let after = snap.shards.len() - snap.valid;
        Ok(RepairReport {
            missing_before: missing.len(),
            missing_after: after,
            method,
            bytes_read,
            bytes_written,
            elapsed: clock.now() - start,
        })
    }

    /// Repairs every object that is missing shards. One object failing
    /// (too few survivors, write errors past the retry budget) does not
    /// stop the sweep: the fleet report carries a per-object outcome
    /// for every object that needed attention.
    pub fn repair_all(&mut self) -> FleetRepairOutcome {
        let ids: Vec<ObjectId> = self.manifests.ids();
        let mut outcome = FleetRepairOutcome {
            repaired: Vec::new(),
            failed: Vec::new(),
            healthy: 0,
        };
        for id in ids {
            match self.repair_object(&id) {
                Ok(report) if report.method == RepairMethod::NotNeeded => outcome.healthy += 1,
                Ok(report) => outcome.repaired.push((id, report)),
                Err(e) => outcome.failed.push((id, e)),
            }
        }
        outcome
    }
}

/// Per-object outcome of an [`Archive::repair_all`] fleet sweep.
#[derive(Debug)]
pub struct FleetRepairOutcome {
    /// Objects that needed and received repair.
    pub repaired: Vec<(ObjectId, RepairReport)>,
    /// Objects whose repair failed, with the error — the sweep
    /// continues past them.
    pub failed: Vec<(ObjectId, ArchiveError)>,
    /// Objects that were already fully healthy.
    pub healthy: usize,
}

impl FleetRepairOutcome {
    /// `true` when no object's repair failed.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }

    /// Total bytes moved (read + written) across every repaired object.
    pub fn bytes_moved(&self) -> u64 {
        self.repaired.iter().map(|(_, r)| r.bytes_moved()).sum()
    }

    /// Total rebuilt bytes written back across every repaired object.
    pub fn bytes_written(&self) -> u64 {
        self.repaired.iter().map(|(_, r)| r.bytes_written).sum()
    }

    /// Total virtual-clock time spent inside per-object repairs.
    pub fn elapsed(&self) -> SimDuration {
        self.repaired.iter().map(|(_, r)| r.elapsed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchiveConfig, PolicyKind};
    use aeon_crypto::SuiteId;
    use aeon_store::node::{MemoryNode, ShardKey, StorageNode};
    use aeon_store::Cluster;
    use std::sync::Arc;

    fn archive_with_handles(policy: PolicyKind, n: usize) -> (Archive, Vec<MemoryNode>) {
        let handles: Vec<MemoryNode> = (0..n as u32)
            .map(|i| MemoryNode::new(i, format!("site-{i}")))
            .collect();
        let cluster = Cluster::new(
            handles
                .iter()
                .map(|h| Arc::new(h.clone()) as Arc<dyn StorageNode>)
                .collect(),
        );
        (
            Archive::with_cluster(ArchiveConfig::new(policy), cluster).unwrap(),
            handles,
        )
    }

    fn delete_shard(handles: &[MemoryNode], archive: &Archive, id: &ObjectId, shard: usize) {
        let manifest = archive.manifest(id).unwrap();
        let node_id = manifest.placement[shard];
        let node = handles.iter().find(|h| h.id() == node_id).unwrap();
        node.delete(&ShardKey::new(id.as_str(), shard as u32))
            .unwrap();
    }

    #[test]
    fn erasure_partial_repair() {
        let (mut archive, handles) =
            archive_with_handles(PolicyKind::ErasureCoded { data: 3, parity: 2 }, 5);
        let id = archive.ingest(b"repairable payload", "r").unwrap();
        delete_shard(&handles, &archive, &id, 1);
        delete_shard(&handles, &archive, &id, 4);
        let report = archive.repair_object(&id).unwrap();
        assert_eq!(report.missing_before, 2);
        assert_eq!(report.missing_after, 0);
        assert_eq!(report.method, RepairMethod::PartialErasure);
        assert_eq!(archive.retrieve(&id).unwrap(), b"repairable payload");
    }

    #[test]
    fn shamir_partial_repair_restores_same_polynomial() {
        let (mut archive, handles) = archive_with_handles(
            PolicyKind::Shamir {
                threshold: 3,
                shares: 5,
            },
            5,
        );
        let id = archive.ingest(b"derive my shares back", "r").unwrap();
        let manifest = archive.manifest(&id).unwrap();
        let before = archive
            .cluster()
            .get_shards(id.as_str(), &manifest.placement);
        delete_shard(&handles, &archive, &id, 2);
        let report = archive.repair_object(&id).unwrap();
        assert_eq!(report.method, RepairMethod::PartialShamir);
        assert_eq!(report.missing_after, 0);
        let manifest = archive.manifest(&id).unwrap();
        let after = archive
            .cluster()
            .get_shards(id.as_str(), &manifest.placement);
        // The rebuilt share equals the original (same polynomial).
        assert_eq!(before[2], after[2]);
        assert_eq!(archive.retrieve(&id).unwrap(), b"derive my shares back");
    }

    #[test]
    fn encrypted_repair_does_not_touch_plaintext_keys() {
        let (mut archive, handles) = archive_with_handles(
            PolicyKind::Encrypted {
                suite: SuiteId::ChaCha20Poly1305,
                data: 2,
                parity: 2,
            },
            4,
        );
        let id = archive.ingest(b"ciphertext-level repair", "r").unwrap();
        delete_shard(&handles, &archive, &id, 0);
        let report = archive.repair_object(&id).unwrap();
        assert_eq!(report.method, RepairMethod::PartialErasure);
        assert_eq!(archive.retrieve(&id).unwrap(), b"ciphertext-level repair");
    }

    #[test]
    fn lrss_falls_back_to_reencode() {
        let (mut archive, handles) = archive_with_handles(
            PolicyKind::LeakageResilientShamir {
                threshold: 2,
                shares: 4,
                source_len: 32,
            },
            4,
        );
        let id = archive.ingest(b"rewrap me", "r").unwrap();
        delete_shard(&handles, &archive, &id, 3);
        let report = archive.repair_object(&id).unwrap();
        assert_eq!(report.method, RepairMethod::FullReencode);
        assert_eq!(report.missing_after, 0);
        assert_eq!(archive.retrieve(&id).unwrap(), b"rewrap me");
    }

    #[test]
    fn replication_repair() {
        let (mut archive, handles) = archive_with_handles(PolicyKind::Replication { copies: 3 }, 3);
        let id = archive.ingest(b"copy repair", "r").unwrap();
        delete_shard(&handles, &archive, &id, 0);
        delete_shard(&handles, &archive, &id, 2);
        let report = archive.repair_object(&id).unwrap();
        assert_eq!(report.missing_before, 2);
        assert_eq!(report.missing_after, 0);
        assert_eq!(archive.retrieve(&id).unwrap(), b"copy repair");
    }

    #[test]
    fn repair_beyond_threshold_fails() {
        let (mut archive, handles) =
            archive_with_handles(PolicyKind::ErasureCoded { data: 3, parity: 1 }, 4);
        let id = archive.ingest(b"gone", "r").unwrap();
        delete_shard(&handles, &archive, &id, 0);
        delete_shard(&handles, &archive, &id, 1);
        assert!(archive.repair_object(&id).is_err());
    }

    #[test]
    fn repair_noop_when_healthy() {
        let (mut archive, _handles) =
            archive_with_handles(PolicyKind::Replication { copies: 2 }, 2);
        let id = archive.ingest(b"fine", "r").unwrap();
        let report = archive.repair_object(&id).unwrap();
        assert_eq!(report.method, RepairMethod::NotNeeded);
        let outcome = archive.repair_all();
        assert!(outcome.repaired.is_empty());
        assert!(outcome.all_ok());
        assert_eq!(outcome.healthy, 1);
    }

    #[test]
    fn repair_all_sweeps_fleet() {
        let (mut archive, handles) =
            archive_with_handles(PolicyKind::ErasureCoded { data: 2, parity: 2 }, 4);
        let ids: Vec<_> = (0..3)
            .map(|i| archive.ingest(b"sweep", &format!("o{i}")).unwrap())
            .collect();
        delete_shard(&handles, &archive, &ids[0], 1);
        delete_shard(&handles, &archive, &ids[2], 0);
        let outcome = archive.repair_all();
        assert_eq!(outcome.repaired.len(), 2);
        assert!(outcome.all_ok());
        assert_eq!(outcome.healthy, 1);
        for id in &ids {
            assert_eq!(archive.retrieve(id).unwrap(), b"sweep");
        }
    }
}

//! Sharded manifest catalog: the fleet-scale metadata map.
//!
//! The paper's §3.2 maintenance math assumes archives of millions of
//! objects; a single flat `BTreeMap<ObjectId, Manifest>` makes every
//! metadata touch contend on one structure. [`FleetCatalog`] splits the
//! map into N shards keyed by a stable hash of the object id (the same
//! FNV-1a the cluster uses for placement), each behind its own
//! `RwLock`, so independent objects hit independent locks.
//!
//! Two invariants keep the rest of the crate simple:
//!
//! * **Shard choice is a pure function of the id** — the same id lands
//!   in the same shard for any fixed shard count, and results never
//!   depend on insertion order.
//! * **Iteration is always sorted by id** — [`FleetCatalog::snapshot`]
//!   and [`FleetCatalog::ids`] merge the shards and sort, reproducing
//!   the old single-`BTreeMap` iteration order exactly. Campaign
//!   results are therefore independent of the shard count (regression-
//!   tested in `tests/fleet_ordering.rs`).
//!
//! Lock discipline: accessors clone data out (or run a short closure
//! under the lock); no caller holds a shard lock across node I/O.

use crate::archive::{Manifest, ObjectId};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;

/// Default shard count for [`FleetCatalog`] (see
/// [`crate::ArchiveConfig::catalog_shards`]).
pub const DEFAULT_CATALOG_SHARDS: usize = 16;

/// FNV-1a — the same stable hash [`aeon_store::Cluster`] uses for
/// placement, so catalog sharding is stable across runs and platforms.
fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sharded `ObjectId → Manifest` map with per-shard locks.
pub struct FleetCatalog {
    shards: Vec<RwLock<BTreeMap<ObjectId, Manifest>>>,
}

impl fmt::Debug for FleetCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetCatalog")
            .field("shards", &self.shards.len())
            .field("objects", &self.len())
            .finish()
    }
}

impl FleetCatalog {
    /// Creates an empty catalog with `shard_count` shards (clamped to at
    /// least 1).
    pub fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1);
        FleetCatalog {
            shards: (0..n).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    /// Number of shards the id space is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &ObjectId) -> &RwLock<BTreeMap<ObjectId, Manifest>> {
        let idx = (stable_hash(id.as_str()) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Inserts (or replaces) a manifest, returning the previous entry.
    pub fn insert(&self, id: ObjectId, manifest: Manifest) -> Option<Manifest> {
        self.shard_of(&id).write().insert(id, manifest)
    }

    /// Removes a manifest, returning it if present.
    pub fn remove(&self, id: &ObjectId) -> Option<Manifest> {
        self.shard_of(id).write().remove(id)
    }

    /// Clones out the manifest for `id`.
    pub fn get(&self, id: &ObjectId) -> Option<Manifest> {
        self.shard_of(id).read().get(id).cloned()
    }

    /// Whether `id` is catalogued.
    pub fn contains(&self, id: &ObjectId) -> bool {
        self.shard_of(id).read().contains_key(id)
    }

    /// Runs `f` against the manifest under the shard's read lock —
    /// cheaper than [`FleetCatalog::get`] when only a field is needed.
    /// `f` must not perform node I/O.
    pub fn with<R>(&self, id: &ObjectId, f: impl FnOnce(&Manifest) -> R) -> Option<R> {
        self.shard_of(id).read().get(id).map(f)
    }

    /// Runs `f` against the manifest under the shard's write lock.
    /// `f` must not perform node I/O.
    pub fn update<R>(&self, id: &ObjectId, f: impl FnOnce(&mut Manifest) -> R) -> Option<R> {
        self.shard_of(id).write().get_mut(id).map(f)
    }

    /// Total number of catalogued objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Clones every manifest out, sorted by id — the exact iteration
    /// order the old single `BTreeMap` produced, for any shard count.
    pub fn snapshot(&self) -> Vec<Manifest> {
        let mut out: Vec<Manifest> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.read().values().cloned());
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// All object ids, sorted.
    pub fn ids(&self) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EncodingMeta, PolicyKind};

    fn manifest(raw: &str) -> Manifest {
        Manifest {
            id: ObjectId::from_raw(raw.to_string()),
            name: raw.to_string(),
            policy: PolicyKind::Replication { copies: 1 },
            meta: EncodingMeta {
                key_version: 0,
                packed: None,
                entropic_nonce: None,
                chunked: None,
            },
            placement: Vec::new(),
            logical_len: 0,
            digest: [0; 32],
            shard_digests: Vec::new(),
            created_year: 2026,
            refresh_epochs: 0,
            blocks: None,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let cat = FleetCatalog::new(4);
        let id = ObjectId::from_raw("abc".into());
        assert!(cat.get(&id).is_none());
        assert!(cat.insert(id.clone(), manifest("abc")).is_none());
        assert_eq!(cat.get(&id).unwrap().name, "abc");
        assert_eq!(cat.len(), 1);
        assert!(cat.contains(&id));
        assert_eq!(cat.remove(&id).unwrap().name, "abc");
        assert!(cat.is_empty());
    }

    #[test]
    fn snapshot_sorted_regardless_of_shard_count_and_order() {
        let raws = ["zeta", "alpha", "mmm", "0001", "ffff", "beta"];
        let mut sorted: Vec<&str> = raws.to_vec();
        sorted.sort_unstable();
        for shards in [1, 2, 7, 64] {
            let cat = FleetCatalog::new(shards);
            for raw in raws.iter().rev() {
                cat.insert(ObjectId::from_raw((*raw).into()), manifest(raw));
            }
            let ids: Vec<String> = cat
                .snapshot()
                .iter()
                .map(|m| m.id.as_str().to_string())
                .collect();
            assert_eq!(ids, sorted, "shards={shards}");
            assert_eq!(
                cat.ids(),
                sorted
                    .iter()
                    .map(|r| ObjectId::from_raw((*r).to_string()))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn update_mutates_in_place() {
        let cat = FleetCatalog::new(3);
        let id = ObjectId::from_raw("x".into());
        cat.insert(id.clone(), manifest("x"));
        assert_eq!(cat.update(&id, |m| m.refresh_epochs += 1), Some(()));
        assert_eq!(cat.with(&id, |m| m.refresh_epochs), Some(1));
        let missing = ObjectId::from_raw("missing".into());
        assert_eq!(cat.update(&missing, |_| ()), None);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cat = FleetCatalog::new(0);
        assert_eq!(cat.shard_count(), 1);
    }
}
